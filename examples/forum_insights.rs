//! Forum-post insights with a *custom plugin* — the paper's extension
//! mechanism: "the framework is extensible with self-defined plugins for
//! more complex analyses."
//!
//! Registers a `resolution_rate` plugin computing the share of positive
//! acknowledgement posts per software, then lets generated code call it.
//!
//! ```sh
//! cargo run --release --example forum_insights
//! ```

use allhands::agent::{AgentConfig, QaAgent};
use allhands::dataframe::{Column, DataFrame, Value};
use allhands::datasets::{dataset_frame, generate_n, DatasetKind};
use allhands::llm::SimLlm;
use allhands::query::{QueryError, RtValue};

fn main() {
    let records = generate_n(DatasetKind::ForumPost, 1_500, 11);
    let frame = dataset_frame(DatasetKind::ForumPost, &records);
    let mut agent = QaAgent::new(SimLlm::gpt4(), frame, AgentConfig::default());

    // --- custom plugin: acknowledgement share per software -----------------
    agent.register_plugin(
        "resolution_rate",
        Box::new(|args| {
            let frame = match args.into_iter().next() {
                Some(RtValue::Frame(f)) => f,
                _ => return Err(QueryError::runtime("resolution_rate(frame) expects a frame")),
            };
            let software = frame.column("software")?;
            let label = frame.column("label")?;
            let mut names: Vec<String> = Vec::new();
            let mut resolved: Vec<f64> = Vec::new();
            for s in ["VLC", "Firefox"] {
                let total = (0..frame.n_rows())
                    .filter(|&i| software.get(i).loose_eq(&Value::str(s)))
                    .count();
                let acked = (0..frame.n_rows())
                    .filter(|&i| {
                        software.get(i).loose_eq(&Value::str(s))
                            && label.get(i).loose_eq(&Value::str("acknowledgement"))
                    })
                    .count();
                names.push(s.to_string());
                resolved.push(if total == 0 { 0.0 } else { acked as f64 / total as f64 * 100.0 });
            }
            Ok(RtValue::Frame(DataFrame::new(vec![
                Column::from_strings("software", names),
                Column::from_f64s("resolution_rate_pct", &resolved),
            ])?))
        }),
    );

    // Generated-code path can now call the plugin directly.
    let result = agent
        .session_mut()
        .execute("show(resolution_rate(feedback))");
    println!("Custom plugin output:");
    for v in &result.shown {
        println!("{}", v.render());
    }

    // Natural-language questions over the same session.
    for question in [
        "Which user level is most active in submitting posts?",
        "Which topics appeared frequently in posts with 'apparent bug' label?",
        "Based on the posts labeled as 'requesting more information', provide some suggestions on how to provide clear information to users.",
    ] {
        println!("\nQ: {question}");
        println!("{}", agent.ask(question).render());
    }
}
