//! Quickstart: build AllHands over a handful of feedback strings and ask
//! questions in natural language.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use allhands::dataframe::{CivilDateTime, Column};
use allhands::prelude::*;

fn main() {
    // A tiny, already-structured feedback table. In a real deployment the
    // pipeline produces this from raw text — see the app_store_triage
    // example for the full flow.
    let base = CivilDateTime::date(2023, 4, 3).to_epoch();
    let frame = DataFrame::new(vec![
        Column::from_strs("text", &[
            "the app crashes every time I open it",
            "love the new dark mode, great update",
            "please add an export to CSV option",
            "app is so slow since the last update",
            "crashes on startup after updating",
        ]),
        Column::from_strs("label", &[
            "informative", "informative", "informative", "informative", "informative",
        ]),
        Column::from_f64s("sentiment", &[-0.9, 0.9, 0.2, -0.6, -0.8]),
        Column::from_str_lists("topics", vec![
            vec!["crash".into()],
            vec!["praise".into(), "feature request".into()],
            vec!["feature request".into()],
            vec!["performance issue".into()],
            vec!["crash".into(), "update problem".into()],
        ]),
        Column::from_datetimes(
            "timestamp",
            &(0..5).map(|i| base + i * 86_400).collect::<Vec<_>>(),
        ),
        Column::from_i64s("text_len", &[37, 38, 35, 37, 34]),
    ])
    .expect("valid frame");

    let mut allhands = AllHands::builder(ModelTier::Gpt4).from_frame(frame);

    for question in [
        "How many feedback entries are there?",
        "What is the average sentiment score across all feedback?",
        "Which topic appears most frequently?",
        "Based on the data, what can be improved to improve the users' satisfaction?",
    ] {
        println!("\nQ: {question}");
        let response = allhands.ask(question).expect("ask failed");
        println!("{}", response.render());
    }
}
