//! Multilingual search-feedback analysis (the MSearch scenario): language
//! detection, cross-lingual classification, and QA over a mixed-language
//! corpus.
//!
//! ```sh
//! cargo run --release --example multilingual_search
//! ```

use allhands::agent::{AgentConfig, QaAgent};
use allhands::classify::LabeledExample;
use allhands::core::{IclClassifier, IclConfig};
use allhands::datasets::{dataset_frame, generate_n, DatasetKind};
use allhands::llm::SimLlm;
use allhands::text::detect_language;

fn main() {
    let records = generate_n(DatasetKind::MSearch, 1_200, 3);

    // Language mix of the corpus.
    let mut by_lang: std::collections::BTreeMap<&str, usize> = Default::default();
    for r in &records {
        *by_lang.entry(r.language.as_str()).or_insert(0) += 1;
    }
    println!("Language mix: {by_lang:?}");

    // Detection sanity on a few samples.
    for r in records.iter().filter(|r| r.language != "en").take(3) {
        println!(
            "  detected {} for: {}",
            detect_language(&r.text),
            r.text.chars().take(60).collect::<String>()
        );
    }

    // Cross-lingual ICL classification: train pool and query can be in
    // different languages.
    let llm = SimLlm::gpt4();
    let pool: Vec<LabeledExample> = records
        .iter()
        .take(600)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let labels = vec!["actionable".to_string(), "non-actionable".to_string()];
    let clf = IclClassifier::fit(&llm, &pool, &labels, IclConfig { shots: 30, ..Default::default() });
    for text in [
        "los resultados con irrelevant results son malos y no me sirven",
        "die suche ist schlecht wegen slow",
        "love the results today, thanks",
    ] {
        println!("  {:<62} -> {}", text, clf.classify(text));
    }

    // QA over the structured frame.
    let frame = dataset_frame(DatasetKind::MSearch, &records);
    let mut agent = QaAgent::new(SimLlm::gpt4(), frame, AgentConfig::default());
    for question in [
        "How many feedback are without query text?",
        "Which top three countries submitted the most number of feedback?",
        "How many feedback entries submitted in German, and what percentage of these discuss 'slow performance' topic?",
    ] {
        println!("\nQ: {question}");
        println!("{}", agent.ask(question).render());
    }
}
