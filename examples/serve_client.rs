//! Client walk-through for `allhands-serve`: brings a server up in-process
//! (leader + 2 followers on a tmp Unix socket), then drives it the way an
//! external client would — ingest through the admission queue, questions
//! and similarity search fanned across the replicas, and a status check
//! that the replicas converged on the leader's journal chain.
//!
//! To talk to a standalone server instead, run `allhands-serve` in another
//! terminal and point `ServeClient::connect` at its socket.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```

use allhands::serve::{Corpus, ServeClient, ServeOptions, Server};
use std::time::Duration;

fn main() {
    let pid = std::process::id();
    let socket = std::env::temp_dir().join(format!("allhands-serve-example-{pid}.sock"));
    let data_dir = std::env::temp_dir().join(format!("allhands-serve-example-{pid}"));
    std::fs::remove_dir_all(&data_dir).ok();

    // Server side: analyze a synthetic corpus on the leader, bootstrap two
    // follower replicas from it, start serving.
    let corpus = Corpus::synthetic(48, 17);
    let opts = ServeOptions { followers: 2, ..ServeOptions::default() };
    let server = Server::start(&socket, &data_dir, &corpus, opts).expect("server start failed");
    println!("server up on {}", server.socket().display());

    // Client side: everything below goes over the socket.
    let mut client = ServeClient::connect(&socket).expect("connect failed");

    let batch: Vec<String> = [
        "battery drains overnight even when idle",
        "phone gets hot and battery dies fast since update",
        "standby battery drain is terrible now",
    ]
    .map(String::from)
    .to_vec();
    let ingest = client.ingest(&batch).expect("ingest failed");
    println!(
        "ingested batch {} ({} rows); leader journal head is now seq {}",
        ingest.batch, ingest.new_rows, ingest.seq
    );

    client.wait_replicated(Duration::from_secs(30)).expect("replication stalled");

    for question in [
        "How many feedback entries are there?",
        "Which topic appears most frequently?",
    ] {
        let reply = client.ask(question).expect("ask failed");
        println!(
            "\nQ: {question}\n(replica {} answered, {} entries behind the leader)\n{}",
            reply.replica, reply.lag, reply.answer
        );
    }

    let hits = client.search("battery drain", 3).expect("search failed");
    println!("\nnearest to \"battery drain\": {hits:?}");

    let status = client.status().expect("status failed");
    println!("\nstatus: {status}");

    client.shutdown().expect("shutdown failed");
    server.run_until_shutdown();
    std::fs::remove_dir_all(&data_dir).ok();
    println!("server shut down cleanly");
}
