//! App-store review triage: the paper's end-to-end flow on raw text.
//!
//! Raw review strings go through the full AllHands pipeline — ICL
//! classification against a small labeled sample, abstractive topic
//! modeling with HITLR, sentiment estimation — and the resulting
//! structured table is interrogated through the natural-language agent.
//!
//! ```sh
//! cargo run --release --example app_store_triage
//! ```

use allhands::datasets::{generate_n, DatasetKind};
use allhands::prelude::*;

fn main() {
    // Pull 800 synthetic app reviews (stand-ins for a real export).
    let records = generate_n(DatasetKind::GoogleStoreApp, 800, 7);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();

    // A small labeled sample powers the ICL classifier — no fine-tuning.
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(200)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();

    let predefined = ["bug", "crash", "feature request", "performance issue", "praise"]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>();

    println!("Running the AllHands pipeline on {} reviews…", texts.len());
    let (mut allhands, frame) = AllHands::builder(ModelTier::Gpt4)
        .recorder(RecorderMode::Enabled)
        .analyze(&texts, &labeled, &predefined)
        .expect("pipeline failed");
    println!(
        "Structured table: {} rows × {} columns ({:?})",
        frame.n_rows(),
        frame.n_cols(),
        frame.column_names()
    );

    for question in [
        "What percentage of the feedback is labeled as informative?",
        "Which topic appears most frequently?",
        "What topic has the most negative sentiment score on average?",
        "Based on the feedback, what action can be done to improve the product?",
    ] {
        println!("\nQ: {question}");
        println!("{}", allhands.ask(question).expect("ask failed").render());
    }

    // What the run did, by the numbers: spans, counters, histograms.
    println!("\n{}", allhands.run_report().to_text());
}
