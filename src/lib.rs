//! AllHands — "Ask Me Anything" analytics on large-scale verbatim feedback.
//!
//! This umbrella crate re-exports every component of the workspace under
//! one roof, so downstream users can depend on a single crate:
//!
//! - [`core`] — the AllHands pipeline (classification → abstractive topic
//!   modeling → QA) and its facade type.
//! - [`agent`] — the planner / code-generator / executor QA agent.
//! - [`query`] — AQL, the analysis language the agent generates.
//! - [`dataframe`] — the columnar engine the executor runs on.
//! - [`llm`] — the simulated tiered language models.
//! - [`classify`], [`topics`] — the baseline models of the paper's
//!   evaluation.
//! - [`embed`], [`vectordb`], [`text`] — the retrieval substrates.
//! - [`datasets`] — synthetic corpora matching the paper's Table 1 and the
//!   90-question benchmark of Tables 5–7.
//! - [`eval`] — difficulty model and answer-quality judges.
//! - [`resilience`] — seeded fault injection, retry/backoff, circuit
//!   breakers, and the unified error taxonomy.
//! - [`par`] — deterministic data-parallel execution (index-ordered merge,
//!   `ALLHANDS_THREADS`) with per-item panic isolation.
//! - [`journal`] — the crash-safe write-ahead journal behind
//!   checkpoint/resume and the dead-letter quarantine record, plus the
//!   checkpoint store, compaction, and point-in-time recovery.
//! - [`obs`] — deterministic tracing and metrics: hierarchical spans,
//!   counters/histograms, and the schema-stable [`RunReport`](obs::RunReport).
//! - [`serve`] — the leader/follower session server: write admission
//!   queue, journal-tail replication to read replicas, and the
//!   length-prefixed JSON wire protocol.
//!
//! For application code, `use allhands::prelude::*;` pulls in the dozen
//! types a typical run touches.

pub use allhands_agent as agent;
pub use allhands_classify as classify;
pub use allhands_core as core;
pub use allhands_dataframe as dataframe;
pub use allhands_datasets as datasets;
pub use allhands_embed as embed;
pub use allhands_eval as eval;
pub use allhands_journal as journal;
pub use allhands_llm as llm;
pub use allhands_obs as obs;
pub use allhands_par as par;
pub use allhands_query as query;
pub use allhands_resilience as resilience;
pub use allhands_serve as serve;
pub use allhands_text as text;
pub use allhands_topics as topics;
pub use allhands_vectordb as vectordb;

/// The types a typical AllHands run touches, in one import:
///
/// ```
/// use allhands::prelude::*;
/// ```
pub mod prelude {
    pub use allhands_classify::LabeledExample;
    pub use allhands_core::{
        AllHands, AllHandsBuilder, AllHandsConfig, AllHandsError, AnalyzeOptions,
        BootstrapBundle, CheckpointPolicy, FaultVfs, IngestConfig, IngestReport,
        IoFaultKind, IoFaultPlan, JournalMode, QuarantineReport, RecorderMode,
        RecoverPoint, Response, TailEntry, TailReport, Vfs,
    };
    pub use allhands_dataframe::DataFrame;
    pub use allhands_llm::ModelTier;
    pub use allhands_obs::{Recorder, RunReport};
    pub use allhands_resilience::{ResilienceConfig, ResilienceCtx};
}
