#!/usr/bin/env bash
# Pipeline benchmark driver: builds the bench binary, runs the serial-vs-
# parallel wall-clock measurement (classify / HAC / search / end-to-end),
# writes BENCH_pipeline.json at the repo root, and schema-validates it.
#
# Usage:
#   scripts/bench.sh            full sizes (minutes on a laptop)
#   scripts/bench.sh --smoke    small sizes (CI / single-core smoke)
#
# Speedup is recorded, never asserted: on a 1-core host the honest number
# is ~1.0 and the JSON says so. Methodology: BENCHMARKS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"

echo "==> cargo build --release -p allhands-bench --bin pipeline_bench"
cargo build --release -p allhands-bench --bin pipeline_bench

if [[ "$MODE" == "--smoke" ]]; then
  echo "==> pipeline_bench (smoke)"
  BENCH_SMOKE=1 ./target/release/pipeline_bench
else
  echo "==> pipeline_bench (full)"
  ./target/release/pipeline_bench
fi

echo "==> validate BENCH_pipeline.json"
./target/release/pipeline_bench --validate BENCH_pipeline.json

echo "bench: OK"
