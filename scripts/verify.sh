#!/usr/bin/env bash
# Tier-1 verify gate: release build, root test suite, and a warning-free
# clippy pass across the workspace. The resilience and agent crates
# additionally deny clippy::unwrap_used via crate-level attributes, so
# this single clippy invocation enforces that too.
#
# Optional: pass --bench-smoke to also smoke-run the pipeline benchmark and
# schema-validate BENCH_pipeline.json. The measured speedup is recorded in
# the JSON, not asserted against a threshold (CI hosts may have 1 core).
#
# Optional: pass --crash-smoke to additionally run the crash-chaos suite on
# its own (kill at every journal crash point, resume, compare transcripts
# byte-for-byte). It also runs as part of `cargo test`; the flag exists for
# a focused signal after touching the journal or resilience layers.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

if [[ "${1:-}" == "--bench-smoke" ]]; then
  echo "==> bench smoke (speedup recorded, not asserted)"
  scripts/bench.sh --smoke
fi

if [[ "${1:-}" == "--crash-smoke" ]]; then
  echo "==> crash smoke (journal resume byte-identity + poison quarantine)"
  cargo test -q --test crash_chaos
fi

echo "verify: OK"
