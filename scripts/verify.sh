#!/usr/bin/env bash
# Tier-1 verify gate: release build, root test suite, and a warning-free
# clippy pass across the workspace. The resilience and agent crates
# additionally deny clippy::unwrap_used via crate-level attributes, so
# this single clippy invocation enforces that too.
#
# Optional: pass --bench-smoke to also smoke-run the pipeline benchmark and
# schema-validate BENCH_pipeline.json. The measured speedup is recorded in
# the JSON, not asserted against a threshold (CI hosts may have 1 core).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

if [[ "${1:-}" == "--bench-smoke" ]]; then
  echo "==> bench smoke (speedup recorded, not asserted)"
  scripts/bench.sh --smoke
fi

echo "verify: OK"
