#!/usr/bin/env bash
# Tier-1 verify gate: release build, root test suite, and a warning-free
# clippy pass across the workspace — all targets, so tests/benches/examples
# are linted too and any use of the deprecated `AllHands::analyze*` /
# `resume` facade inside the workspace fails the gate (deprecation warnings
# are denied like every other warning). The resilience and agent crates
# additionally deny clippy::unwrap_used via crate-level attributes, so the
# single clippy invocation enforces that too.
#
# Optional flags (combinable, order-free):
#   --bench-smoke   smoke-run the pipeline benchmark and schema-validate
#                   BENCH_pipeline.json. The measured speedup is recorded in
#                   the JSON, not asserted against a threshold (CI hosts may
#                   have 1 core).
#   --crash-smoke   run the crash-chaos suite on its own (kill at every
#                   journal crash point, resume, compare transcripts
#                   byte-for-byte). Also runs as part of `cargo test`; the
#                   flag exists for a focused signal after touching the
#                   journal or resilience layers.
#   --obs-smoke     run the observability suite on its own, then smoke-run
#                   the pipeline bench and schema-validate the emitted
#                   BENCH_pipeline_obs.json run report.
#   --ingest-smoke  run the incremental-ingestion suite on its own (batch
#                   byte-identity across thread counts and chaos, crash at
#                   every ingest seam + resume, span/counter shape, the
#                   search/retract facade).
#   --checkpoint-smoke
#                   run the checkpoint/compaction/recovery suite on its own
#                   (checkpoint -> compact -> kill -> recover cycle at every
#                   seam, point-in-time recover_at, corruption fuzz, journal
#                   locking) plus the torn-tail truncation property test.
#   --scaling-smoke run the scaling + search stages of the pipeline bench on
#                   a reduced matrix (threads sweep, smoke corpus sizes) and
#                   schema-validate the emitted JSON. Curves are recorded,
#                   never asserted monotone (1-core hosts give ~1.0).
#   --iofault-smoke run the storage-fault suite (every IoFaultKind at every
#                   Vfs op index, sustained-ENOSPC read-only trip, proptest
#                   fault fuzz) and the follower-bootstrap suite at threads
#                   {1,8}.
#   --query-smoke   run the engine-differential suite (90 reference
#                   programs, join keys straddling 2^53 and ±0.0, proptest
#                   random chains — both engines byte-identical), then the
#                   query stage of the pipeline bench (row-wise vs
#                   vectorized; warm plan-cache hit rate asserted 100%,
#                   speedup recorded, not asserted).
#   --serve-smoke   run the serving/replication suite (kill-at-every-entry
#                   reconnect sweep, lag reporting, replica write refusal),
#                   then the allhands-serve end-to-end smoke — leader + 2
#                   followers on a Unix socket, reads served during an
#                   ingest, chains and fingerprints asserted converged —
#                   and the serve stage of the pipeline bench (qps at 1 vs
#                   3 replicas; recorded, not asserted).
set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch dirs created by smoke stages, removed on exit.
tmp_dirs=()
cleanup() {
  for d in ${tmp_dirs[@]+"${tmp_dirs[@]}"}; do
    rm -rf "$d"
  done
}
trap cleanup EXIT

bench_smoke=0
crash_smoke=0
obs_smoke=0
ingest_smoke=0
checkpoint_smoke=0
scaling_smoke=0
iofault_smoke=0
query_smoke=0
serve_smoke=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    --crash-smoke) crash_smoke=1 ;;
    --obs-smoke) obs_smoke=1 ;;
    --ingest-smoke) ingest_smoke=1 ;;
    --checkpoint-smoke) checkpoint_smoke=1 ;;
    --scaling-smoke) scaling_smoke=1 ;;
    --iofault-smoke) iofault_smoke=1 ;;
    --query-smoke) query_smoke=1 ;;
    --serve-smoke) serve_smoke=1 ;;
    *)
      echo "verify: unknown flag $arg" >&2
      exit 2
      ;;
  esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$bench_smoke" == 1 ]]; then
  echo "==> bench smoke (speedup recorded, not asserted)"
  scripts/bench.sh --smoke
fi

if [[ "$crash_smoke" == 1 ]]; then
  echo "==> crash smoke (journal resume byte-identity + poison quarantine)"
  cargo test -q --test crash_chaos
fi

if [[ "$obs_smoke" == 1 ]]; then
  echo "==> obs smoke (metric determinism, span shape, report schema)"
  cargo test -q --test observability
  out_dir="$(mktemp -d)"
  tmp_dirs+=("$out_dir")
  cargo run --release -p allhands-bench --bin pipeline_bench -- \
    --smoke --out "$out_dir/BENCH_pipeline.json"
  cargo run --release -p allhands-bench --bin pipeline_bench -- \
    --validate "$out_dir/BENCH_pipeline.json"
  for f in BENCH_pipeline.json BENCH_pipeline_obs.json; do
    [[ -s "$out_dir/$f" ]] || { echo "verify: $f missing" >&2; exit 1; }
  done
fi

if [[ "$ingest_smoke" == 1 ]]; then
  echo "==> ingest smoke (batch determinism, crash resume, index maintenance)"
  cargo test -q --test ingest_determinism
fi

if [[ "$checkpoint_smoke" == 1 ]]; then
  echo "==> checkpoint smoke (checkpoint/compact/kill/recover, corruption fuzz)"
  cargo test -q --test checkpoint_recovery --test journal_truncation
fi

if [[ "$scaling_smoke" == 1 ]]; then
  echo "==> scaling smoke (threads sweep on reduced corpus; curves recorded)"
  scaling_dir="$(mktemp -d)"
  tmp_dirs+=("$scaling_dir")
  cargo run --release -p allhands-bench --bin pipeline_bench -- \
    --smoke --only scaling,search --out "$scaling_dir/BENCH_scaling.json"
  cargo run --release -p allhands-bench --bin pipeline_bench -- \
    --validate "$scaling_dir/BENCH_scaling.json"
fi

if [[ "$iofault_smoke" == 1 ]]; then
  echo "==> iofault smoke (fault-at-every-seam, read-only trip, bootstrap)"
  # The suites pin thread counts internally via par::with_threads; running
  # them under both ambient settings also covers the pool-spawn paths.
  for threads in 1 8; do
    echo "==> iofault smoke: ALLHANDS_THREADS=$threads"
    ALLHANDS_THREADS=$threads cargo test -q --test storage_faults --test bootstrap_follower
  done
fi

if [[ "$query_smoke" == 1 ]]; then
  echo "==> query smoke (engine differential + plan-cache hit rate)"
  cargo test -q --test query_differential
  query_dir="$(mktemp -d)"
  tmp_dirs+=("$query_dir")
  cargo run --release -p allhands-bench --bin pipeline_bench -- \
    --smoke --only query --out "$query_dir/BENCH_query.json"
  cargo run --release -p allhands-bench --bin pipeline_bench -- \
    --validate "$query_dir/BENCH_query.json"
fi

if [[ "$serve_smoke" == 1 ]]; then
  echo "==> serve smoke (replication sweep, then leader + 2 followers end-to-end)"
  cargo test -q --test serve_replication
  cargo run --release -p allhands-serve --bin allhands-serve -- --smoke --followers 2
  serve_dir="$(mktemp -d)"
  tmp_dirs+=("$serve_dir")
  cargo run --release -p allhands-bench --bin pipeline_bench -- \
    --smoke --only serve --out "$serve_dir/BENCH_serve.json"
  cargo run --release -p allhands-bench --bin pipeline_bench -- \
    --validate "$serve_dir/BENCH_serve.json"
fi

echo "verify: OK"
