#!/usr/bin/env bash
# Tier-1 verify gate: release build, root test suite, and a warning-free
# clippy pass across the workspace. The resilience and agent crates
# additionally deny clippy::unwrap_used via crate-level attributes, so
# this single clippy invocation enforces that too.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "verify: OK"
