//! Offline shim for `serde_json`: the subset this workspace uses.
//!
//! Provides [`Value`], [`Map`], a recursive-descent JSON parser, compact and
//! pretty printers, `to_string`/`to_string_pretty`/`from_str`/`from_value`,
//! and a [`json!`] macro. Serialization is bridged through the in-repo serde
//! shim's `Content` data model using serde's standard JSON conventions
//! (structs as objects, enums externally tagged, newtypes transparent).

use serde::{Content, DeError, Deserialize, Serialize};

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// An insertion-ordered string-keyed map of JSON values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Insert, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Remove and return the entry with this key, preserving the order of
    /// the remaining entries.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }
}

/// JSON error (parse or conversion failure).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

// ---- Value conversions -----------------------------------------------------

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<&&str> for Value {
    fn from(v: &&str) -> Self {
        Value::String((*v).to_string())
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&write_compact(self))
    }
}

/// Direct text → [`Value`] parse (`"...".parse::<Value>()`), mirroring
/// `serde_json`'s `FromStr` impl. Unlike `from_str::<Value>`, this skips
/// the `Content` bridge entirely — the parse tree IS the result — so it is
/// the cheap path for callers that inspect the document dynamically.
impl std::str::FromStr for Value {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self, Error> {
        parse(s)
    }
}

// ---- Content bridge --------------------------------------------------------

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::I64(v) => Content::I64(*v),
            Value::U64(v) => Content::U64(*v),
            Value::F64(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(m) => Content::Map(
                m.iter().map(|(k, v)| (k.clone(), v.to_content())).collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(content_to_value(c))
    }
}

/// Move-based `Value` → `Content` conversion: strings, arrays, and maps are
/// transferred, not cloned. This is the hot half of `from_str` — checkpoint
/// restore parses multi-megabyte documents, and the borrowing `to_content`
/// bridge used to deep-copy the entire tree a second time before the typed
/// deserializer even started.
fn value_into_content(v: Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(b),
        Value::I64(n) => Content::I64(n),
        Value::U64(n) => Content::U64(n),
        Value::F64(n) => Content::F64(n),
        Value::String(s) => Content::Str(s),
        Value::Array(items) => {
            Content::Seq(items.into_iter().map(value_into_content).collect())
        }
        Value::Object(m) => Content::Map(
            m.entries.into_iter().map(|(k, v)| (k, value_into_content(v))).collect(),
        ),
    }
}

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::I64(v) => Value::I64(*v),
        Content::U64(v) => Value::U64(*v),
        Content::F64(v) => Value::F64(*v),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => {
            let mut m = Map::new();
            for (k, v) in entries {
                m.insert(k.clone(), content_to_value(v));
            }
            Value::Object(m)
        }
        Content::UnitVariant(v) => Value::String((*v).to_string()),
        Content::NewtypeVariant(v, inner) => {
            let mut m = Map::new();
            m.insert((*v).to_string(), content_to_value(inner));
            Value::Object(m)
        }
    }
}

// ---- top-level API ---------------------------------------------------------

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_compact(&content_to_value(&value.to_content())))
}

/// Serialize to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&content_to_value(&value.to_content()), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_content(&value_into_content(value))?)
}

/// Convert an already-parsed [`Value`] into any `Deserialize` type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_content(&value_into_content(value))?)
}

// ---- printer ---------------------------------------------------------------

fn write_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => out.push_str(&format_f64(*n)),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn format_f64(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    // Match serde_json's convention of keeping a decimal point on whole
    // floats so the value parses back as a float.
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{n:.1}")
    } else {
        format!("{n}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".to_string())),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                        // Surrogate pairs are not produced by this shim's
                        // printer; map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error("bad escape".to_string())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run up to the next quote or escape in one
                // slice. Both delimiters are ASCII, so they can never split a
                // multi-byte UTF-8 sequence; validating the run as a unit keeps
                // parsing linear in the document size.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| Error("invalid utf-8".to_string()))?;
                out.push_str(run);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error("invalid number".to_string()))?;
    if text.is_empty() {
        return Err(Error(format!("expected value at byte {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::I64(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::U64(u));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error(format!("invalid number '{text}'")))
}

// ---- json! macro -----------------------------------------------------------

/// Build a [`Value`] from a JSON-like literal. Supports nested objects and
/// arrays, `null`, and arbitrary Rust expressions (converted via
/// `Value::from`) in value position. Object keys must be string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => { $crate::json_object!([] $($body)*) };
    ([ $($body:tt)* ]) => { $crate::json_array!([] $($body)*) };
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Finished (with or without trailing comma).
    ([$(($k:expr, $v:expr)),*]) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert(($k).to_string(), $v); )*
        $crate::Value::Object(__m)
    }};
    ([$(($k:expr, $v:expr)),*] ,) => { $crate::json_object!([$(($k, $v)),*]) };
    // Separator between entries.
    ([$(($k:expr, $v:expr)),*] , $($rest:tt)+) => {
        $crate::json_object!([$(($k, $v)),*] $($rest)+)
    };
    // Structural values recurse into json!.
    ([$(($k:expr, $v:expr)),*] $key:literal : { $($obj:tt)* } $($rest:tt)*) => {
        $crate::json_object!([$(($k, $v),)* ($key, $crate::json!({ $($obj)* }))] $($rest)*)
    };
    ([$(($k:expr, $v:expr)),*] $key:literal : [ $($arr:tt)* ] $($rest:tt)*) => {
        $crate::json_object!([$(($k, $v),)* ($key, $crate::json!([ $($arr)* ]))] $($rest)*)
    };
    ([$(($k:expr, $v:expr)),*] $key:literal : null $($rest:tt)*) => {
        $crate::json_object!([$(($k, $v),)* ($key, $crate::Value::Null)] $($rest)*)
    };
    // Expression value: munch tokens until a top-level comma.
    ([$(($k:expr, $v:expr)),*] $key:literal : $($rest:tt)+) => {
        $crate::json_object_expr!([$(($k, $v)),*] $key () $($rest)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_expr {
    ([$(($k:expr, $v:expr)),*] $key:literal ($($buf:tt)+) , $($rest:tt)*) => {
        $crate::json_object!([$(($k, $v),)* ($key, $crate::Value::from($($buf)+))] $($rest)*)
    };
    ([$(($k:expr, $v:expr)),*] $key:literal ($($buf:tt)+)) => {
        $crate::json_object!([$(($k, $v),)* ($key, $crate::Value::from($($buf)+))])
    };
    ([$(($k:expr, $v:expr)),*] $key:literal ($($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object_expr!([$(($k, $v)),*] $key ($($buf)* $next) $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ([$($elem:expr),*]) => { $crate::Value::Array(vec![$($elem),*]) };
    ([$($elem:expr),*] ,) => { $crate::json_array!([$($elem),*]) };
    ([$($elem:expr),*] , $($rest:tt)+) => {
        $crate::json_array!([$($elem),*] $($rest)+)
    };
    ([$($elem:expr),*] { $($obj:tt)* } $($rest:tt)*) => {
        $crate::json_array!([$($elem,)* $crate::json!({ $($obj)* })] $($rest)*)
    };
    ([$($elem:expr),*] [ $($arr:tt)* ] $($rest:tt)*) => {
        $crate::json_array!([$($elem,)* $crate::json!([ $($arr)* ])] $($rest)*)
    };
    ([$($elem:expr),*] null $($rest:tt)*) => {
        $crate::json_array!([$($elem,)* $crate::Value::Null] $($rest)*)
    };
    ([$($elem:expr),*] $($rest:tt)+) => {
        $crate::json_array_expr!([$($elem),*] () $($rest)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_expr {
    ([$($elem:expr),*] ($($buf:tt)+) , $($rest:tt)*) => {
        $crate::json_array!([$($elem,)* $crate::Value::from($($buf)+)] $($rest)*)
    };
    ([$($elem:expr),*] ($($buf:tt)+)) => {
        $crate::json_array!([$($elem,)* $crate::Value::from($($buf)+)])
    };
    ([$($elem:expr),*] ($($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array_expr!([$($elem),*] ($($buf)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let v = parse(r#"{"a": [1, 2.5, "x\ny", true, null], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v["a"][0], Value::I64(1));
        assert_eq!(v["a"][1], Value::F64(2.5));
        assert_eq!(v["a"][2], "x\ny");
        assert_eq!(v["b"]["c"], Value::I64(-3));
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_formatting_keeps_decimal() {
        assert_eq!(Value::F64(-2.0).to_string(), "-2.0");
        assert_eq!(Value::F64(1.5).to_string(), "1.5");
    }

    #[test]
    fn json_macro_shapes() {
        let n = 3usize;
        let v = json!({
            "plain": n,
            "expr": n as f64 / 2.0,
            "nested": {"deep": [1, 2, {"k": "v"}]},
            "list": vec!["a", "b"],
        });
        assert_eq!(v["plain"], Value::U64(3));
        assert_eq!(v["expr"], Value::F64(1.5));
        assert_eq!(v["nested"]["deep"][2]["k"], "v");
        assert_eq!(v["list"][1], "b");
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(1.25), Value::F64(1.25));
    }

    #[test]
    fn from_str_impl_and_map_remove() {
        let v: Value = r#"{"a": 1, "b": [true], "c": "x"}"#.parse().unwrap();
        assert_eq!(v, parse(r#"{"a": 1, "b": [true], "c": "x"}"#).unwrap());
        let Value::Object(mut m) = v else { panic!("expected object") };
        assert_eq!(m.remove("b"), Some(Value::Array(vec![Value::Bool(true)])));
        assert_eq!(m.remove("b"), None);
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "c"], "remove must preserve remaining order");
    }

    #[test]
    fn missing_index_is_null() {
        let v = json!({"a": 1});
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["a"][4], Value::Null);
    }

    #[test]
    fn pretty_output_indents() {
        let s = to_string_pretty(&json!({"a": [1]})).unwrap();
        assert!(s.contains("\n  \"a\": [\n    1\n  ]\n"));
    }
}
