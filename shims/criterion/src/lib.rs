//! Offline shim for `criterion`: a minimal wall-clock benchmark harness with
//! the API surface the workspace's benches use. It runs each benchmark for a
//! small fixed number of samples and prints per-iteration timings — adequate
//! for relative comparisons, without the statistical machinery of upstream
//! criterion.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_nanos: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration, then timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_nanos = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(name, sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { samples, last_nanos: 0.0 };
    f(&mut bencher);
    let per_iter = bencher.last_nanos;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (per_iter / 1e9))
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / (per_iter / 1e9))
        }
        _ => String::new(),
    };
    println!("{label:<50} {:>12.2} ns/iter{rate}", per_iter);
}

/// Collect benchmark functions into a single runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, n| {
            b.iter(|| {
                count += n;
                count
            })
        });
        group.finish();
        assert!(count >= 5, "routine never ran");
    }
}
