//! Offline shim for `rand_chacha`: a ChaCha8 keystream generator implementing
//! the in-repo `rand` shim's `RngCore`/`SeedableRng` traits. The block
//! function is the standard ChaCha construction (djb variant: 64-bit block
//! counter in words 12–13, zero nonce) run for 8 rounds, so the stream is
//! a high-quality deterministic function of the 256-bit seed.

pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words from the seed (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 means exhausted.
    word_pos: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut initial = [0u32; 16];
        initial[..4].copy_from_slice(&CHACHA_CONSTANTS);
        initial[4..12].copy_from_slice(&self.key);
        initial[12] = self.counter as u32;
        initial[13] = (self.counter >> 32) as u32;
        // words 14..16: zero nonce
        let mut state = initial;
        for _ in 0..4 {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial) {
            *out = out.wrapping_add(init);
        }
        self.block = state;
        self.word_pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng { key, counter: 0, block: [0; 16], word_pos: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_is_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 60, "keystream words repeat suspiciously often");
        let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
        // ~50% of 2048 bits set, generous tolerance
        assert!((700..1350).contains(&ones), "bit bias: {ones} ones of 2048");
    }
}
