//! Offline shim for `proptest`: a deterministic property-testing harness
//! exposing the macro and `Strategy` surface this workspace's tests use.
//!
//! Differences from upstream proptest, by design:
//! - cases are generated from a ChaCha8 stream seeded by the test name and
//!   case index, so every run explores the same inputs (no persistence files
//!   and no shrinking — a failing case prints its seed inputs via the assert
//!   message instead);
//! - the regex string strategy supports the subset used here: character
//!   classes with ranges, `\PC` (any non-control char), and `{n}`/`{m,n}`
//!   repetition counts.

use rand::Rng as _;
use rand::SeedableRng as _;

pub type TestRng = rand_chacha::ChaCha8Rng;

/// Derive the per-case generator from the test name and case index.
pub fn new_rng(test_name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

// ---- numeric range strategies ----------------------------------------------

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
range_strategies!(usize, u64, u32, i64, i32, f64, f32);

// ---- tuple strategies ------------------------------------------------------

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

// ---- regex string strategy -------------------------------------------------

enum CharSet {
    /// Explicit characters (expanded from a `[...]` class).
    Explicit(Vec<char>),
    /// `\PC`: any non-control character (sampled from a representative pool
    /// that deliberately includes multi-byte UTF-8).
    NonControl,
}

const NON_CONTROL_POOL: &[char] = &[
    ' ', '!', '"', '#', '$', '%', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0', '5', '9',
    ':', ';', '<', '=', '>', '?', '@', 'A', 'M', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'e',
    'k', 'q', 'z', '{', '|', '}', '~', 'à', 'é', 'î', 'õ', 'ü', 'ß', 'Ω', 'ж', '中', '日',
    'क', '🙂', '🚀',
];

struct RegexElement {
    set: CharSet,
    min: usize,
    max: usize,
}

fn parse_regex(pattern: &str) -> Vec<RegexElement> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elements = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                i += 1;
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                members.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        members.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated [ in pattern {pattern}");
                i += 1; // skip ']'
                CharSet::Explicit(members)
            }
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern}"
                );
                i += 3;
                CharSet::NonControl
            }
            c => {
                i += 1;
                CharSet::Explicit(vec![c])
            }
        };
        let (mut min, mut max) = (1, 1);
        if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated { in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            if let Some((lo, hi)) = body.split_once(',') {
                min = lo.trim().parse().expect("bad repeat count");
                max = hi.trim().parse().expect("bad repeat count");
            } else {
                min = body.trim().parse().expect("bad repeat count");
                max = min;
            }
            i = close + 1;
        }
        elements.push(RegexElement { set, min, max });
    }
    elements
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for elem in parse_regex(self) {
            let n = rng.gen_range(elem.min..=elem.max);
            for _ in 0..n {
                match &elem.set {
                    CharSet::Explicit(members) => {
                        assert!(!members.is_empty(), "empty char class in {self}");
                        out.push(members[rng.gen_range(0..members.len())]);
                    }
                    CharSet::NonControl => {
                        out.push(NON_CONTROL_POOL[rng.gen_range(0..NON_CONTROL_POOL.len())]);
                    }
                }
            }
        }
        out
    }
}

// ---- collections and sampling ----------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Inclusive-lower, exclusive-upper element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly pick one of the given options per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

// ---- macros ----------------------------------------------------------------

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::new_rng(stringify!($name), __case as u64);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn regex_strategy_respects_classes_and_counts() {
        let mut rng = new_rng("regex", 0);
        for _ in 0..100 {
            let s = "[a-d]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
            let t = "\\PC{0,20}".generate(&mut rng);
            assert!(t.chars().count() <= 20);
            assert!(t.chars().all(|c| !c.is_control()));
            let one = "[a-c]".generate(&mut rng);
            assert_eq!(one.chars().count(), 1);
        }
    }

    #[test]
    fn same_name_and_case_reproduces_inputs() {
        let a = "[ -~]{0,30}".generate(&mut new_rng("x", 5));
        let b = "[ -~]{0,30}".generate(&mut new_rng("x", 5));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_end_to_end(
            n in 1usize..10,
            xs in prop::collection::vec(-5i64..5, 0..4),
            word in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() < 4);
            prop_assert!(word == "a" || word == "b");
        }
    }
}
