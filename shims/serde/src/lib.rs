//! Offline shim for `serde`: the subset this workspace uses, reimplemented
//! over an explicit JSON-shaped [`Content`] data model.
//!
//! The build environment has no access to crates.io, so the real serde
//! cannot be fetched. This shim keeps the workspace's source unchanged
//! (`use serde::{Serialize, Deserialize}` + `#[derive(...)]` still work) by
//! pairing two one-method traits with the hand-rolled derive macros in the
//! sibling `serde_derive` shim. `serde_json` (also shimmed) converts
//! [`Content`] to and from JSON text using serde's standard conventions:
//! structs as objects, newtype structs transparent, enums externally
//! tagged.

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of a value — serde's data model collapsed to what
/// JSON can carry, plus explicit enum-variant nodes so `serde_json` can
/// apply the externally-tagged convention.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered key/value map (struct fields, JSON objects).
    Map(Vec<(String, Content)>),
    /// A unit enum variant, e.g. `DType::Int` -> `"Int"`.
    UnitVariant(&'static str),
    /// A newtype enum variant, e.g. `Value::Int(3)` -> `{"Int": 3}`.
    NewtypeVariant(&'static str, Box<Content>),
}

impl Content {
    /// Look up a struct field in a `Map`; used by derived `Deserialize`.
    pub fn field(&self, name: &str) -> Result<&Content, DeError> {
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
            other => Err(DeError::custom(format!(
                "expected map with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Interpret this content as an externally-tagged enum variant.
    pub fn variant(&self) -> Result<(&str, Option<&Content>), DeError> {
        match self {
            Content::UnitVariant(v) => Ok((v, None)),
            Content::Str(s) => Ok((s.as_str(), None)),
            Content::NewtypeVariant(v, inner) => Ok((v, Some(inner))),
            Content::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(DeError::custom(format!(
                "expected enum variant, got {}",
                other.kind()
            ))),
        }
    }

    /// Short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
            Content::UnitVariant(_) => "unit variant",
            Content::NewtypeVariant(_, _) => "newtype variant",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for DeError {}

/// Serialize into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserialize from the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) if *v <= i64::MAX as u64 => *v as i64,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => return Err(DeError::custom(format!(
                        "expected integer, got {}", other.kind()))),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        Content::U64(*self)
    }
}
impl Deserialize for u64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::U64(v) => Ok(*v),
            Content::I64(v) if *v >= 0 => Ok(*v as u64),
            Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as u64),
            other => Err(DeError::custom(format!("expected u64, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(DeError::custom(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
        assert_eq!(Option::<i64>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Vec::<f64>::from_content(&vec![1.0, 2.5].to_content()).unwrap(),
            vec![1.0, 2.5]
        );
    }

    #[test]
    fn field_lookup_and_variant() {
        let m = Content::Map(vec![("a".into(), Content::I64(1))]);
        assert_eq!(m.field("a").unwrap(), &Content::I64(1));
        assert!(m.field("b").is_err());
        let v = Content::NewtypeVariant("Int", Box::new(Content::I64(3)));
        let (name, inner) = v.variant().unwrap();
        assert_eq!(name, "Int");
        assert_eq!(inner.unwrap(), &Content::I64(3));
    }
}
