//! Offline shim for `serde_derive`: hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` targeting the in-repo `serde` shim's data model.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields           -> JSON-style map
//! - newtype (one-field tuple) structs   -> transparent inner value
//! - enums of unit / newtype variants    -> externally tagged
//! - container attr `#[serde(try_from = "Type")]` on `Deserialize`
//!
//! Anything else produces a compile error naming the unsupported shape, so
//! growth past the supported subset fails loudly instead of silently
//! misserializing. Built on `proc_macro` token trees only — no syn/quote,
//! because the build environment has no network access to fetch them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// What the type looks like after parsing.
enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields (only N == 1 is supported downstream).
    Tuple(usize),
    /// Enum: (variant name, number of unnamed fields; 0 = unit).
    Enum(Vec<(String, usize)>),
}

struct Parsed {
    name: String,
    shape: Shape,
    /// `#[serde(try_from = "T")]` payload, if present.
    try_from: Option<String>,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok(p) => generate(&p, mode).parse().expect("shim derive emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let mut iter = input.into_iter().peekable();
    let mut try_from = None;

    // Leading attributes + visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    if let Some(t) = extract_try_from(g.stream()) {
                        try_from = Some(t);
                    }
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                iter.next();
                // Possible `pub(crate)` / `pub(in ...)` restriction group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("shim serde derive does not support generic type `{name}`"));
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) => g,
        // `struct Name;` unit struct has no body group.
        other => return Err(format!("unsupported item body for `{name}`: {other:?}")),
    };

    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Struct(parse_named_fields(body.stream())?),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::Enum(parse_variants(body.stream())?),
        _ => return Err(format!("unsupported shape for `{name}`")),
    };
    Ok(Parsed { name, shape, try_from })
}

/// Pull `Type` out of a `serde(try_from = "Type")` attribute body.
fn extract_try_from(attr: TokenStream) -> Option<String> {
    let mut iter = attr.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let mut it = inner.into_iter();
    while let Some(tt) = it.next() {
        if matches!(&tt, TokenTree::Ident(i) if i.to_string() == "try_from") {
            it.next(); // '='
            if let Some(TokenTree::Literal(lit)) = it.next() {
                return Some(lit.to_string().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Field identifiers of a named-field struct body, skipping attributes,
/// visibility, and type tokens (commas inside `<...>` don't split fields).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(field) = tt else {
            return Err(format!("expected field name, got {tt:?}"));
        };
        fields.push(field.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, got {other:?}")),
        }
        // Consume the type: stop at a comma outside angle brackets.
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body (top-level comma count + 1).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in body {
        any = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => commas += 1,
            _ => {}
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

/// Enum variants: name + unnamed-field count (0 for unit variants).
fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip variant attributes (doc comments expand to #[doc = ...]).
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(name) = tt else {
            return Err(format!("expected variant name, got {tt:?}"));
        };
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = iter.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_tuple_fields(g.stream());
                    iter.next();
                }
                Delimiter::Brace => {
                    return Err(format!(
                        "shim serde derive does not support struct variant `{name}`"
                    ));
                }
                _ => {}
            }
        }
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        variants.push((name.to_string(), arity));
    }
    Ok(variants)
}

fn generate(p: &Parsed, mode: Mode) -> String {
    let name = &p.name;
    match mode {
        Mode::Serialize => {
            let body = match &p.shape {
                Shape::Struct(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "({f:?}.to_string(), ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
                }
                Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    return format!(
                        "compile_error!(\"shim serde derive: unsupported {n}-field tuple struct {name}\");"
                    )
                }
                Shape::Enum(variants) => {
                    let arms: Vec<String> = variants
                        .iter()
                        .map(|(v, arity)| match arity {
                            0 => format!("{name}::{v} => ::serde::Content::UnitVariant({v:?}),"),
                            1 => format!(
                                "{name}::{v}(__x) => ::serde::Content::NewtypeVariant({v:?}, \
                                 Box::new(::serde::Serialize::to_content(__x))),"
                            ),
                            n => format!(
                                "{name}::{v}(..) => panic!(\"shim serde: unsupported {n}-field variant\"),"
                            ),
                        })
                        .collect();
                    format!("match self {{ {} }}", arms.join(" "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Mode::Deserialize => {
            if let Some(raw) = &p.try_from {
                return format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             let __raw: {raw} = ::serde::Deserialize::from_content(__c)?;\n\
                             ::std::convert::TryFrom::try_from(__raw)\n\
                                 .map_err(|e| ::serde::DeError::custom(format!(\"{{e}}\")))\n\
                         }}\n\
                     }}"
                );
            }
            let body = match &p.shape {
                Shape::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_content(__c.field({f:?})?)?")
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
                Shape::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
                }
                Shape::Tuple(n) => {
                    return format!(
                        "compile_error!(\"shim serde derive: unsupported {n}-field tuple struct {name}\");"
                    )
                }
                Shape::Enum(variants) => {
                    let arms: Vec<String> = variants
                        .iter()
                        .map(|(v, arity)| match arity {
                            0 => format!("{v:?} => Ok({name}::{v}),"),
                            1 => format!(
                                "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_content(\
                                 __inner.ok_or_else(|| ::serde::DeError::custom(\
                                 \"missing newtype variant payload\"))?)?)),"
                            ),
                            n => format!(
                                "{v:?} => Err(::serde::DeError::custom(\
                                 \"shim serde: unsupported {n}-field variant\")),"
                            ),
                        })
                        .collect();
                    format!(
                        "let (__v, __inner) = __c.variant()?;\n\
                         match __v {{ {} _ => Err(::serde::DeError::custom(format!(\
                         \"unknown variant {{__v:?}} for {name}\"))) }}",
                        arms.join(" ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
