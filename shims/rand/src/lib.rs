//! Offline shim for `rand` 0.8: the trait surface and samplers this
//! workspace uses. All sampling is fully deterministic given the underlying
//! generator's stream — the workspace relies on seeded reproducibility, not
//! on matching upstream rand's exact bit streams.

/// Core generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Uniform `[0, 1)` doubles from the top 53 bits.
fn unit_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `[0, 1)` floats from the top 24 bits.
fn unit_f32(rng: &mut (impl RngCore + ?Sized)) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Unbiased integer in `[0, bound)` by rejection sampling.
fn below_u64(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Values the `gen()` method can produce (mirrors the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self {
        unit_f64(rng)
    }
}
impl Standard for f32 {
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self {
        unit_f32(rng)
    }
}
impl Standard for u32 {
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types `gen_range` can sample uniformly (mirrors `SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut (impl RngCore + ?Sized)) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut (impl RngCore + ?Sized)) -> Self;
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut (impl RngCore + ?Sized)) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut (impl RngCore + ?Sized)) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
int_uniform_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut (impl RngCore + ?Sized)) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + unit_f64(rng) * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut (impl RngCore + ?Sized)) -> Self {
        assert!(lo <= hi, "empty range in gen_range");
        lo + unit_f64(rng) * (hi - lo)
    }
}
impl SampleUniform for f32 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut (impl RngCore + ?Sized)) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + unit_f32(rng) * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut (impl RngCore + ?Sized)) -> Self {
        assert!(lo <= hi, "empty range in gen_range");
        lo + unit_f32(rng) * (hi - lo)
    }
}

/// Ranges that can be sampled uniformly (mirrors `SampleRange`). The single
/// blanket impl per range shape is load-bearing: it lets type inference unify
/// `gen_range`'s return type with the range's element type before the element
/// type itself is resolved (e.g. `x + rng.gen_range(-0.25..0.25)`).
pub trait SampleRange<T> {
    fn sample_range(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_range(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_range(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{below_u64, RngCore};

    /// Slice helpers (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..200 {
            let i = rng.gen_range(0..10usize);
            assert!(i < 10);
            let f = rng.gen_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Counter(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
