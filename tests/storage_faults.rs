//! Storage-fault injection: the journal under a hostile disk.
//!
//! The contracts under test:
//!
//! - Fault-at-every-seam: injecting every `IoFaultKind` at every Vfs
//!   operation index of an append + checkpoint + compact + append
//!   workload never panics and never yields a silently
//!   acknowledged-but-unsynced entry — every acked append is either
//!   present bit-exact after a clean reopen or covered by a durable
//!   checkpoint, and a second reopen changes no byte on disk.
//! - A journal that trips read-only refuses further appends with the
//!   typed `JournalError::ReadOnly`.
//! - Sustained ENOSPC mid-stream trips the session into read-only
//!   degraded mode: `ingest` returns `AllHandsError::ReadOnly`, while
//!   `ask` and `search_similar` keep serving, with the trip and the
//!   fault counts visible in the run report.
//! - The same fault schedule produces identical outcomes at 1 and 8
//!   threads (journal I/O is driver-thread-only).
//! - Proptest fuzz (satellite to `tests/journal_truncation.rs`): a
//!   random single fault anywhere in a full analyze + ingest +
//!   checkpoint + compact run yields a typed error or a degradation at
//!   worst, and a clean resume of the same directory converges on the
//!   reference final frame.

use allhands::journal::vfs::{FaultVfs, IoFaultKind, IoFaultPlan, Vfs};
use allhands::journal::{decode, Journal, JournalError};
use allhands::prelude::*;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// The thread override is process-global; serialize the tests that use it.
static GLOBAL_GUARD: Mutex<()> = Mutex::new(());

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("storage-faults-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir");
    }
    dir
}

// ---------------------------------------------------------------------------
// Journal-level exhaustive seam sweep
// ---------------------------------------------------------------------------

/// A fixed journal workload touching every kind of Vfs seam: appends,
/// a checkpoint, a compaction, then tail appends. Returns the entries
/// that were *acknowledged* (append returned `Ok`) as
/// `(seq, key, payload)`, or `None` if open itself failed (a typed
/// error, also legal under injection).
fn journal_workload(dir: &Path, vfs: Arc<dyn Vfs>) -> Option<Vec<(u64, String, String)>> {
    let mut acked = Vec::new();
    let mut j = match Journal::open_with(dir, vfs) {
        Ok(j) => j,
        Err(_) => return None,
    };
    for i in 0..4u32 {
        let key = format!("k{i}");
        let val = format!("payload-{i}-{}", "x".repeat(i as usize * 7));
        if j.append("t", &key, &val).is_ok() {
            let seq = j.entries().last().expect("acked append must be visible").seq;
            acked.push((seq, key, val));
        }
    }
    let _ = j.checkpoint(4, &"checkpoint-state".to_string());
    let _ = j.compact(1);
    for i in 4..6u32 {
        let key = format!("k{i}");
        let val = format!("tail-{i}");
        if j.append("t", &key, &val).is_ok() {
            let seq = j.entries().last().expect("acked append must be visible").seq;
            acked.push((seq, key, val));
        }
    }
    // A read-only trip must be sticky and typed.
    if j.is_read_only() {
        assert!(
            matches!(j.append("t", "refused", &"x".to_string()), Err(JournalError::ReadOnly(_))),
            "read-only journal must refuse appends with the typed error"
        );
    }
    Some(acked)
}

/// Every file in the journal dir except the (transient) LOCK, as
/// name → bytes, for bit-exact before/after comparison.
fn dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().is_some_and(|n| n != "LOCK"))
        .map(|p| {
            (p.file_name().unwrap().to_string_lossy().into_owned(), std::fs::read(&p).unwrap())
        })
        .collect();
    out.sort();
    out
}

#[test]
fn fault_at_every_seam_never_loses_an_acked_entry() {
    // Probe: count the workload's Vfs operations with a no-fault FaultVfs.
    let probe = Arc::new(FaultVfs::new(IoFaultPlan::none()));
    let probe_dir = scratch_dir("seam-probe");
    journal_workload(&probe_dir, Arc::clone(&probe) as Arc<dyn Vfs>)
        .expect("clean workload must open");
    let total_ops = probe.ops();
    assert!(total_ops > 20, "probe found implausibly few Vfs ops ({total_ops})");
    std::fs::remove_dir_all(&probe_dir).ok();

    for op in 0..total_ops {
        for kind in IoFaultKind::ALL {
            let tag = format!("seam-{op}-{}", kind.label());
            let dir = scratch_dir(&tag);
            let fault = Arc::new(FaultVfs::new(IoFaultPlan::at(op, kind)));
            // Any panic here fails the test: faults must surface as typed
            // errors, never unwinds.
            let acked = journal_workload(&dir, Arc::clone(&fault) as Arc<dyn Vfs>);

            // A clean reopen must always succeed and hold every acked
            // entry — directly, or via a durable checkpoint that covers
            // its seq (compaction's contract).
            let mut j = Journal::open(&dir)
                .unwrap_or_else(|e| panic!("clean reopen after {tag} failed: {e}"));
            let anchor = j.checkpoints().last().map_or(0, |c| c.upto_seq);
            for (seq, key, val) in acked.into_iter().flatten() {
                if seq >= anchor {
                    let got = j
                        .find("t", &key)
                        .unwrap_or_else(|| panic!("{tag}: acked {key} (seq {seq}) lost"));
                    assert_eq!(
                        decode::<String>(got).unwrap(),
                        val,
                        "{tag}: acked {key} corrupted"
                    );
                } else {
                    assert!(
                        !j.checkpoints().is_empty() && anchor > seq,
                        "{tag}: acked {key} (seq {seq}) below anchor without checkpoint cover"
                    );
                }
            }
            // The reconciled journal stays appendable...
            j.append("t", "fresh", &"after-recovery".to_string())
                .unwrap_or_else(|e| panic!("{tag}: reopened journal not appendable: {e}"));
            drop(j);
            // ...and a further reopen is a byte-for-byte no-op.
            let settled = dir_bytes(&dir);
            drop(Journal::open(&dir).unwrap());
            assert_eq!(settled, dir_bytes(&dir), "{tag}: second reopen rewrote the dir");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

// ---------------------------------------------------------------------------
// Core-level read-only degraded mode
// ---------------------------------------------------------------------------

const QUESTIONS: [&str; 2] = [
    "How many feedback entries are there?",
    "Which topic appears most frequently?",
];

fn corpus() -> (Vec<String>, Vec<LabeledExample>, Vec<String>) {
    let records = allhands::datasets::generate_n(allhands::datasets::DatasetKind::GoogleStoreApp, 16, 23);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(10)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    (texts, labeled, vec!["bug".to_string(), "crash".to_string()])
}

fn batches() -> Vec<Vec<String>> {
    let b1: Vec<String> = allhands::datasets::generate_n(
        allhands::datasets::DatasetKind::GoogleStoreApp,
        5,
        101,
    )
    .iter()
    .map(|r| r.text.clone())
    .collect();
    let b2: Vec<String> = [
        "battery drains overnight even when idle",
        "phone gets hot and battery dies fast since update",
        "battery usage doubled after the last version",
        "standby battery drain is terrible now",
    ]
    .map(String::from)
    .to_vec();
    let b3: Vec<String> = [
        "dark mode please my eyes hurt at night",
        "would love a dark mode option",
        "please add dark mode theme",
    ]
    .map(String::from)
    .to_vec();
    vec![b1, b2, b3]
}

/// Ops consumed by analyze + first batch under a clean schedule — the
/// deterministic prefix every faulted run repeats exactly.
fn probe_prefix_ops(config: &AllHandsConfig) -> u64 {
    let dir = scratch_dir("enospc-probe");
    let probe = Arc::new(FaultVfs::new(IoFaultPlan::none()));
    let (texts, labeled, predefined) = corpus();
    let (mut ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config.clone())
        .journal(JournalMode::Continue(dir.clone()))
        .vfs(Arc::clone(&probe) as Arc<dyn Vfs>)
        .analyze(&texts, &labeled, &predefined)
        .expect("clean probe run failed");
    ah.ingest(&batches()[0]).expect("clean probe ingest failed");
    drop(ah);
    std::fs::remove_dir_all(&dir).ok();
    // Subtract the ops the journal Drop path may add after the prefix we
    // care about: none — Drop only releases the LOCK via std::fs. The
    // count read after drop is exactly the prefix.
    probe.ops()
}

/// Run analyze + the full batch stream against a sustained-ENOSPC disk
/// that fills up right after batch 0. Returns the rendered observable
/// outcome for cross-thread-count comparison.
fn sustained_enospc_outcome(config: &AllHandsConfig, prefix_ops: u64, tag: &str) -> String {
    let dir = scratch_dir(tag);
    let fault =
        Arc::new(FaultVfs::new(IoFaultPlan::from_op(prefix_ops, IoFaultKind::Enospc)));
    let (texts, labeled, predefined) = corpus();
    let (mut ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config.clone())
        .journal(JournalMode::Continue(dir.clone()))
        .recorder(RecorderMode::Enabled)
        .vfs(Arc::clone(&fault) as Arc<dyn Vfs>)
        .analyze(&texts, &labeled, &predefined)
        .expect("analyze happens before the disk fills");
    let all = batches();
    let rep0 = ah.ingest(&all[0]).expect("batch 0 lands before the disk fills");
    let mut out = rep0.frame.to_table_string(100);

    // Batch 1 hits ENOSPC on append; compact-then-retry also hits ENOSPC,
    // so the session trips read-only and returns the typed error.
    let e1 = ah.ingest(&all[1]).expect_err("full disk must refuse the batch");
    assert!(
        matches!(e1, AllHandsError::ReadOnly(_)),
        "expected AllHandsError::ReadOnly, got: {e1:?}"
    );
    assert!(!e1.retryable(), "read-only is not retryable in place");
    // ...and stays read-only for the next batch, refusing it up front.
    let e2 = ah.ingest(&all[2]).expect_err("read-only session must refuse batches");
    assert!(matches!(e2, AllHandsError::ReadOnly(_)), "second batch: {e2:?}");

    // Queries keep serving the in-memory state.
    for q in QUESTIONS {
        let r = ah.ask(q).expect("read-only session must keep serving reads");
        assert!(r.error.is_none(), "read-only session failed {q:?}: {:?}", r.error);
        out.push_str("\n=== ");
        out.push_str(q);
        out.push('\n');
        out.push_str(&r.render());
    }
    let hits = ah.search_similar("battery drain", 3).expect("search must keep serving");
    out.push_str(&format!("search: {hits:?}\n"));

    // The trip is observable: typed degradation notes + obs counters.
    let notes = ah.resilience().degradations();
    assert!(
        notes.iter().any(|d| d.note.contains("read-only")),
        "no read-only degradation note in {notes:?}"
    );
    let report = ah.run_report();
    assert_eq!(report.counter("journal.readonly_trips"), 1, "exactly one trip");
    assert!(report.counter("journal.io_faults.enospc") >= 1, "enospc faults uncounted");
    assert!(report.counter("journal.enospc_compactions") >= 1, "rescue compaction uncounted");
    for d in notes {
        out.push_str(&format!("[{}] {}\n", d.stage, d.note));
    }
    drop(ah);
    std::fs::remove_dir_all(&dir).ok();
    // The degradation notes embed the journal path; normalize it so the
    // t1/t8 outcomes are comparable byte-for-byte.
    out.replace(&dir.display().to_string(), "<journal-dir>")
}

#[test]
fn sustained_enospc_trips_read_only_but_queries_keep_serving() {
    let _guard = GLOBAL_GUARD.lock().unwrap();
    let config = AllHandsConfig::default();
    let prefix = probe_prefix_ops(&config);
    assert!(prefix > 10, "implausibly few prefix ops ({prefix})");
    let outcome_1 = allhands::par::with_threads(1, || {
        sustained_enospc_outcome(&config, prefix, "enospc-t1")
    });
    let outcome_8 = allhands::par::with_threads(8, || {
        sustained_enospc_outcome(&config, prefix, "enospc-t8")
    });
    assert_eq!(outcome_1, outcome_8, "fault outcome must not depend on thread count");
}

// ---------------------------------------------------------------------------
// Core-level proptest fault-schedule fuzz
// ---------------------------------------------------------------------------

fn fuzz_config() -> AllHandsConfig {
    let mut config = AllHandsConfig::default();
    config.ingest.pending_threshold = 6;
    config.ingest.ivf_partition_docs = 8;
    config.checkpoint = CheckpointPolicy { every_n_batches: 1, keep_last_k: 1 };
    config
}

/// Full journaled session: analyze, every batch, both questions.
/// Returns the final frame rendering.
fn full_run(dir: &Path, vfs: Option<Arc<dyn Vfs>>) -> Result<String, AllHandsError> {
    let (texts, labeled, predefined) = corpus();
    let mut builder = AllHands::builder(ModelTier::Gpt4)
        .config(fuzz_config())
        .journal(JournalMode::Continue(dir.to_path_buf()));
    if let Some(vfs) = vfs {
        builder = builder.vfs(vfs);
    }
    let (mut ah, mut frame) = builder.analyze(&texts, &labeled, &predefined)?;
    for batch in batches() {
        match ah.ingest(&batch) {
            Ok(rep) => frame = rep.frame,
            // A read-only trip ends the stream; the state so far stands.
            Err(AllHandsError::ReadOnly(_)) => break,
            Err(e) => return Err(e),
        }
    }
    for q in QUESTIONS {
        match ah.ask(q) {
            Ok(r) => assert!(r.error.is_none(), "ask failed under faults: {:?}", r.error),
            // A mid-ask read-only trip keeps the in-memory answer; the
            // session stays serviceable for the remaining questions.
            Err(AllHandsError::ReadOnly(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(frame.to_table_string(100))
}

/// Vfs op count of the clean full run, probed once.
fn fuzz_total_ops() -> u64 {
    static OPS: OnceLock<u64> = OnceLock::new();
    *OPS.get_or_init(|| {
        let dir = scratch_dir("fuzz-probe");
        let probe = Arc::new(FaultVfs::new(IoFaultPlan::none()));
        full_run(&dir, Some(Arc::clone(&probe) as Arc<dyn Vfs>)).expect("clean probe failed");
        std::fs::remove_dir_all(&dir).ok();
        probe.ops()
    })
}

/// Reference final frame of the clean run, computed once.
fn reference_frame() -> &'static str {
    static FRAME: OnceLock<String> = OnceLock::new();
    FRAME.get_or_init(|| {
        let dir = scratch_dir("fuzz-reference");
        let frame = full_run(&dir, None).expect("clean reference failed");
        std::fs::remove_dir_all(&dir).ok();
        frame
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn single_fault_anywhere_recovers_to_the_reference_state(
        frac in 0.0f64..1.0,
        kind_idx in 0usize..IoFaultKind::ALL.len(),
    ) {
        let _guard = GLOBAL_GUARD.lock().unwrap();
        let total = fuzz_total_ops();
        let op = ((frac * total as f64) as u64).min(total - 1);
        let kind = IoFaultKind::ALL[kind_idx];
        let dir = scratch_dir(&format!("fuzz-{op}-{}", kind.label()));

        // Faulted run: typed error or degraded completion, never a panic.
        let fault = Arc::new(FaultVfs::new(IoFaultPlan::at(op, kind)));
        let faulted = full_run(&dir, Some(Arc::clone(&fault) as Arc<dyn Vfs>));
        if let Err(e) = &faulted {
            prop_assert!(
                !matches!(e, AllHandsError::Pipeline(m) if m.contains("panic")),
                "fault surfaced as a panic-shaped error: {e}"
            );
        }

        // The directory must reopen cleanly regardless of where the fault
        // landed...
        drop(Journal::open(&dir).unwrap_or_else(|e| panic!("reopen failed: {e}")));
        // ...and a clean resume of the same directory converges on the
        // reference final frame: committed entries replay, lost ones are
        // recomputed deterministically.
        let resumed = full_run(&dir, None);
        prop_assert!(resumed.is_ok(), "clean resume failed: {:?}", resumed.err());
        prop_assert_eq!(resumed.unwrap().as_str(), reference_frame(),
            "resumed state diverged from the reference");
        std::fs::remove_dir_all(&dir).ok();
    }
}
