//! Regression tests for the defects found during code review. Each test
//! pins the fixed behavior so the bug cannot silently return.

use allhands::dataframe::{Column, ColumnData, DataFrame, JoinKind, Value};
use allhands::llm::codegen::{build_program, SchemaInfo};
use allhands::query::{Session, SessionLimits};
use allhands::vectordb::{IvfIndex, Record, VectorIndex};
use std::collections::HashMap;

fn schema() -> SchemaInfo {
    let mut s = SchemaInfo {
        columns: vec![
            ("text".into(), "Str".into()),
            ("sentiment".into(), "Float".into()),
            ("topics".into(), "StrList".into()),
            ("timestamp".into(), "DateTime".into()),
            ("product".into(), "Str".into()),
        ],
        sample_values: HashMap::new(),
    };
    s.sample_values
        .insert("topics".into(), vec!["bug".into(), "feature request".into()]);
    s.sample_values
        .insert("product".into(), vec!["WhatsApp".into(), "Windows".into()]);
    s
}

/// Contractions ("don't") must not open a quoted phrase.
#[test]
fn codegen_contractions_are_not_quotes() {
    let p = build_program(
        "How many tweets don't mention 'bug' at all?",
        &schema(),
    )
    .unwrap();
    // The real quoted entity must survive; the bogus "t mention " must not.
    assert!(!p.contains("t mention"), "{p}");
    assert!(p.contains("bug"), "{p}");
}

/// The modal verb "may" must not become a month-5 filter.
#[test]
fn codegen_modal_may_is_not_a_month() {
    let p = build_program("What topics may be related to crashes?", &schema()).unwrap();
    assert!(!p.contains("month(timestamp) == 5"), "{p}");
    // …but a real month mention still filters.
    let p = build_program("Which topic appears most frequently in May?", &schema()).unwrap();
    assert!(p.contains("month(timestamp) == 5"), "{p}");
    // "maybe" must not fire either.
    let p = build_program("Which topic maybe appears most frequently?", &schema()).unwrap();
    assert!(!p.contains("month(timestamp)"), "{p}");
}

/// "laptop 15" must not be parsed as top-15.
#[test]
fn codegen_top_is_word_anchored() {
    let p = build_program(
        "How many users mention laptop 15 issues in the dataset?",
        &schema(),
    )
    .unwrap();
    assert!(!p.contains("head(15)"), "{p}");
}

/// A single-month question containing "increase" keeps its month filter.
#[test]
fn codegen_single_month_with_increase_keeps_filter() {
    let p = build_program(
        "How many tweets in April mention an increase in crashes?",
        &schema(),
    )
    .unwrap();
    assert!(p.contains("month(timestamp) == 4"), "{p}");
}

/// concat cannot blow past the row budget exponentially.
#[test]
fn concat_respects_row_budget() {
    let mut s = Session::new(SessionLimits {
        step_budget: 1_000_000,
        max_rows: 1_000,
        ..SessionLimits::default()
    });
    s.bind_frame(
        "feedback",
        DataFrame::new(vec![Column::from_i64s("x", &(0..400).collect::<Vec<_>>())]).unwrap(),
    );
    let r = s.execute(
        "let a = feedback.concat(feedback);\nlet b = a.concat(a);\nshow(b.count())",
    );
    let err = r.error.expect("row budget must trip");
    assert!(err.contains("row budget"), "{err}");
}

/// Integer overflow spills to float instead of panicking.
#[test]
fn int_overflow_spills_to_float() {
    let mut s = Session::new(SessionLimits::default());
    let r = s.execute("show(8000000000000000 * 8000000000000000)");
    assert!(r.error.is_none(), "{:?}", r.error);
    match &r.shown[0] {
        allhands::query::RtValue::Scalar(Value::Float(f)) => {
            assert!(*f > 6.0e31 && *f < 7.0e31, "{f}")
        }
        other => panic!("expected float spill, got {other:?}"),
    }
}

/// Numeric aggregations over string columns are type errors, not zeros.
#[test]
fn sum_over_strings_is_a_type_error() {
    let mut s = Session::new(SessionLimits::default());
    s.bind_frame(
        "feedback",
        DataFrame::new(vec![Column::from_strs("product", &["a", "b"])]).unwrap(),
    );
    let r = s.execute("show(feedback.sum(\"product\"))");
    assert!(r.error.unwrap().contains("numeric column"));
}

/// Exponent literals lex as one number.
#[test]
fn lexer_supports_exponents() {
    let mut s = Session::new(SessionLimits::default());
    let r = s.execute("show(2.5e3 + 1e-1)");
    assert!(r.error.is_none(), "{:?}", r.error);
    match &r.shown[0] {
        allhands::query::RtValue::Scalar(v) => {
            assert!((v.as_f64().unwrap() - 2500.1).abs() < 1e-9)
        }
        other => panic!("{other:?}"),
    }
}

/// with_column keeps the replaced column's position (concat depends on it).
#[test]
fn with_column_preserves_order() {
    let df = DataFrame::new(vec![
        Column::from_i64s("a", &[1]),
        Column::from_i64s("b", &[2]),
        Column::from_i64s("c", &[3]),
    ])
    .unwrap();
    let replaced = df.with_column(Column::from_i64s("b", &[9])).unwrap();
    assert_eq!(replaced.column_names(), vec!["a", "b", "c"]);
    // And concat with the original still works.
    assert!(df.concat(&replaced).is_ok());
}

/// Int and Float join keys unify numerically (as documented).
#[test]
fn join_unifies_int_and_float_keys() {
    let left = DataFrame::new(vec![Column::from_i64s("k", &[1, 2])]).unwrap();
    let right = DataFrame::new(vec![
        Column::from_f64s("k", &[1.0, 3.0]),
        Column::from_strs("v", &["one", "three"]),
    ])
    .unwrap();
    let j = left.join(&right, "k", JoinKind::Inner).unwrap();
    assert_eq!(j.n_rows(), 1);
    assert_eq!(j.cell(0, "v").unwrap(), Value::str("one"));
}

/// value_counts on a column named "count" works instead of erroring.
#[test]
fn value_counts_on_count_column() {
    let df = DataFrame::new(vec![Column::from_i64s("count", &[1, 1, 2])]).unwrap();
    let vc = df.value_counts("count").unwrap();
    assert_eq!(vc.n_rows(), 2);
    assert!(vc.has_column("count_value"));
    assert_eq!(vc.cell(0, "count").unwrap(), Value::Int(2));
}

/// crosstab survives cell values that collide with the row-key name.
#[test]
fn crosstab_handles_name_collisions() {
    let df = DataFrame::new(vec![
        Column::from_strs("label", &["x", "x", "y"]),
        Column::from_strs("product", &["label", "p", "label"]),
    ])
    .unwrap();
    let ct = df.crosstab("label", "product").unwrap();
    assert_eq!(ct.n_rows(), 2);
    // The colliding column got suffixed, not rejected.
    assert!(ct.column_names().iter().filter(|n| n.starts_with("label")).count() >= 2);
}

/// IVF upsert with a moved vector is findable near its new location.
#[test]
fn ivf_upsert_reassigns_partition() {
    let mut ivf = IvfIndex::new(2, 1);
    for i in 0..60u64 {
        let v = if i % 2 == 0 {
            allhands::embed::Embedding::new(vec![1.0, 0.0])
        } else {
            allhands::embed::Embedding::new(vec![-1.0, 0.0])
        };
        ivf.insert(Record::new(i, v));
    }
    ivf.train(2);
    // Move record 0 from the +x cluster to the -x cluster.
    ivf.insert(Record::new(0, allhands::embed::Embedding::new(vec![-0.99, 0.01])));
    assert_eq!(ivf.len(), 60);
    let hits = ivf.search(&allhands::embed::Embedding::new(vec![-1.0, 0.0]), 60);
    assert!(
        hits.iter().any(|h| h.id == 0),
        "moved record not findable in its new partition"
    );
}

/// Deserializing a ragged frame fails instead of producing a corrupt table.
#[test]
fn frame_deserialize_validates() {
    let ragged = serde_json::json!({
        "columns": [
            {"name": "a", "data": {"Int": [1, 2]}},
            {"name": "b", "data": {"Int": [1]}},
        ]
    });
    let parsed: Result<DataFrame, _> = serde_json::from_value(ragged);
    assert!(parsed.is_err(), "ragged frame must not deserialize");
    // A valid frame still round-trips.
    let df = DataFrame::new(vec![Column::new("a", ColumnData::Int(vec![Some(1)]))]).unwrap();
    let json = serde_json::to_string(&df).unwrap();
    let back: DataFrame = serde_json::from_str(&json).unwrap();
    assert_eq!(back, df);
}
