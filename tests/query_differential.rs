//! Differential tests between the two AQL execution engines.
//!
//! The vectorized planner (`QueryEngine::Vectorized`, the default) and the
//! row-wise tree walker (`QueryEngine::RowWise`, the
//! `ALLHANDS_QUERY_ENGINE=rowwise` escape hatch) are contractually
//! byte-identical: same shown values, same logs, same error strings. This
//! suite checks that contract three ways — on every reference program of
//! the 90-question benchmark, on randomized frames × randomized method
//! chains (with join keys straddling 2^53 and ±0.0, the historical
//! `join_key` collision cases), and on targeted plan-cache/optimizer
//! behavior.

use allhands::dataframe::{Column, DataFrame};
use allhands::datasets::{dataset_frame, generate, questions_for, DatasetKind};
use allhands::query::{QueryEngine, Session, SessionLimits};
use proptest::prelude::*;

/// Execute `src` under `engine` and return a full observable transcript:
/// JSON of every shown value, the logs, and the error (if any).
fn run_engine(
    frames: &[(&str, &DataFrame)],
    src: &str,
    engine: QueryEngine,
) -> (Vec<String>, Vec<String>, Option<String>, Session) {
    let mut session = Session::new(SessionLimits::default());
    session.set_engine(engine);
    for (name, frame) in frames {
        session.bind_frame(name, (*frame).clone());
    }
    let result = session.execute(src);
    let shown = result
        .shown
        .iter()
        .map(|v| serde_json::to_string(v).expect("serialize shown value"))
        .collect();
    (shown, result.logs, result.error, session)
}

/// Assert both engines produce identical transcripts for `src`.
fn assert_identical(frames: &[(&str, &DataFrame)], src: &str) {
    let (vs, vl, ve, _) = run_engine(frames, src, QueryEngine::Vectorized);
    let (rs, rl, re, _) = run_engine(frames, src, QueryEngine::RowWise);
    assert_eq!(ve, re, "error divergence on:\n{src}");
    assert_eq!(vl, rl, "log divergence on:\n{src}");
    assert_eq!(vs, rs, "shown-value divergence on:\n{src}");
}

// ---- the 90-question benchmark ---------------------------------------------

fn diff_all(kind: DatasetKind) {
    let records = generate(kind, 42);
    let frame = dataset_frame(kind, &records);
    for q in questions_for(kind) {
        assert_identical(&[("feedback", &frame)], q.reference_aql);
    }
}

#[test]
fn google_references_identical_across_engines() {
    diff_all(DatasetKind::GoogleStoreApp);
}

#[test]
fn forum_references_identical_across_engines() {
    diff_all(DatasetKind::ForumPost);
}

#[test]
fn msearch_references_identical_across_engines() {
    diff_all(DatasetKind::MSearch);
}

// ---- targeted cases --------------------------------------------------------

/// Left frame: Int keys straddling 2^53 plus zero; Float metric with ±0.0.
fn tricky_left() -> DataFrame {
    DataFrame::new(vec![
        Column::new(
            "v",
            allhands::dataframe::ColumnData::Int(vec![
                Some(9007199254740992),
                Some(9007199254740993),
                Some(0),
                Some(-9007199254740993),
                None,
                Some(7),
            ]),
        ),
        Column::new(
            "f",
            allhands::dataframe::ColumnData::Float(vec![
                Some(0.0),
                Some(-0.0),
                Some(1.5),
                None,
                Some(-2.0),
                Some(9007199254740993.0),
            ]),
        ),
        Column::from_strs("k", &["a", "b", "a", "c", "b", "a"]),
    ])
    .unwrap()
}

/// Right frame keyed by floats that collide with the left's Int keys only
/// under correct unification (integral floats, -0.0, beyond-2^53 values).
fn tricky_right() -> DataFrame {
    DataFrame::new(vec![
        Column::new(
            "v",
            allhands::dataframe::ColumnData::Float(vec![
                Some(9007199254740992.0),
                Some(-0.0),
                Some(0.0),
                Some(7.0),
                None,
            ]),
        ),
        Column::from_strs("tag", &["big", "negzero", "zero", "seven", "none"]),
    ])
    .unwrap()
}

#[test]
fn join_keys_straddling_2_pow_53_and_signed_zero_are_identical() {
    let left = tricky_left();
    let right = tricky_right();
    let frames: &[(&str, &DataFrame)] = &[("feedback", &left), ("right", &right)];
    for src in [
        r#"show(feedback.join(right, "v", "inner"))"#,
        r#"show(feedback.join(right, "v", "left"))"#,
        r#"show(feedback.join(right, "v", "inner").filter(k == "a"))"#,
        r#"show(feedback.filter(f == 0.0))"#,
        r#"show(feedback.filter(f == -0.0))"#,
        r#"show(feedback.filter(v == 9007199254740993))"#,
        r#"show(feedback.sort("f").head(3))"#,
        r#"show(feedback.sort("f", "desc").head(4))"#,
    ] {
        assert_identical(frames, src);
    }
}

#[test]
fn fallback_cases_are_identical() {
    let left = tricky_left();
    let frames: &[(&str, &DataFrame)] = &[("feedback", &left)];
    for src in [
        // Division by zero inside a filter: vectorized attempt fails, the
        // row-wise fallback supplies the authoritative error.
        r#"show(feedback.filter(1 / f > 0))"#,
        // derive + filter whose pushdown would be illegal (and is refused).
        r#"show(feedback.derive("d", 1 / (v + 1)).filter(v != 0))"#,
        // Unknown column errors identically.
        r#"show(feedback.filter(nope > 1))"#,
        // Non-lowerable tail (plugin/scalar terminal) after a lowered run.
        r#"show(feedback.filter(v > 0).count())"#,
        // Mixed-type derive errors identically.
        r#"show(feedback.derive("d", coalesce(f, "zero")))"#,
    ] {
        assert_identical(frames, src);
    }
}

#[test]
fn step_budget_exhaustion_identical_across_engines() {
    // Near-exhaustion budgets: the vectorized bulk charge may trip at a
    // different point, but the fallback restores the snapshot and re-runs
    // row-wise, so the user-visible outcome must match the row-wise engine
    // exactly.
    let left = tricky_left();
    let src = r#"show(feedback.filter(v > 0 && f >= 0.0).sort("f").head(2))"#;
    for budget in [1, 5, 10, 50, 1_000] {
        let limits = SessionLimits { step_budget: budget, ..SessionLimits::default() };
        let mut vec_s = Session::new(limits);
        vec_s.set_engine(QueryEngine::Vectorized);
        vec_s.bind_frame("feedback", left.clone());
        let v = vec_s.execute(src);
        let mut row_s = Session::new(limits);
        row_s.set_engine(QueryEngine::RowWise);
        row_s.bind_frame("feedback", left.clone());
        let r = row_s.execute(src);
        assert_eq!(v.error, r.error, "budget {budget}");
        assert_eq!(v.shown.len(), r.shown.len(), "budget {budget}");
    }
}

#[test]
fn engine_env_value_parsing() {
    assert_eq!(QueryEngine::from_env_value("rowwise"), QueryEngine::RowWise);
    assert_eq!(QueryEngine::from_env_value("RowWise"), QueryEngine::RowWise);
    assert_eq!(QueryEngine::from_env_value("vectorized"), QueryEngine::Vectorized);
    assert_eq!(QueryEngine::from_env_value(""), QueryEngine::Vectorized);
}

#[test]
fn plan_cache_warms_on_repeated_shapes() {
    let left = tricky_left();
    let src = r#"show(feedback.filter(v > 0).group_by("k", count()).sort("count", "desc").head(2))"#;
    let mut session = Session::new(SessionLimits::default());
    session.set_engine(QueryEngine::Vectorized);
    session.bind_frame("feedback", left);
    for _ in 0..3 {
        let r = session.execute(src);
        assert!(r.error.is_none(), "{:?}", r.error);
    }
    let stats = session.plan_cache_stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.hits, 2, "{stats:?}");
    assert_eq!(stats.fallbacks, 0, "{stats:?}");
    // A different shape misses again.
    let r = session.execute(r#"show(feedback.filter(v > 1).head(1))"#);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(session.plan_cache_stats().misses, 2);
}

#[test]
fn pushdown_fires_and_prunes_rows() {
    let left = tricky_left();
    let src = r#"show(feedback.sort("f").filter(v == 7))"#;
    let (vs, _, ve, session) =
        run_engine(&[("feedback", &left)], src, QueryEngine::Vectorized);
    let (rs, _, re, _) = run_engine(&[("feedback", &left)], src, QueryEngine::RowWise);
    assert_eq!(ve, re);
    assert_eq!(vs, rs);
    let stats = session.plan_cache_stats();
    assert!(stats.rules_fired >= 1, "{stats:?}");
    assert!(stats.rows_pruned >= 1, "{stats:?}");
    assert_eq!(stats.fallbacks, 0, "{stats:?}");
}

#[test]
fn column_on_column_numeric_ops_identical() {
    // The typed batch kernels accept columns on BOTH sides; the tricky
    // frame puts Int-vs-Float pairs beyond 2^53 (where i64 compares
    // exactly but f64 casts collide), ±0.0, and nulls on every path.
    let left = tricky_left();
    let frames: &[(&str, &DataFrame)] = &[("feedback", &left)];
    for src in [
        r#"show(feedback.filter(v > f))"#,
        r#"show(feedback.filter(v == f))"#,
        r#"show(feedback.filter(v != f))"#,
        r#"show(feedback.filter(v <= f))"#,
        // Null == null is TRUE under loose_eq; null <= null is FALSE.
        r#"show(feedback.filter(v == v))"#,
        r#"show(feedback.filter(v <= v))"#,
        r#"show(feedback.derive("s", v + f))"#,
        r#"show(feedback.derive("s", v * v))"#,
        r#"show(feedback.derive("s", f - v))"#,
        r#"show(feedback.derive("s", 2.0 * f + 1))"#,
        r#"show(feedback.derive("s", v / 4))"#,
        // Int*Int overflow beyond i64 spills to f64 row-wise; the typed
        // batch must abandon and reproduce that via the generic loop.
        r#"show(feedback.derive("s", v * 9007199254740993))"#,
    ] {
        assert_identical(frames, src);
    }
}

// ---- randomized differential ----------------------------------------------

proptest! {
    #[test]
    fn random_chains_identical_across_engines(
        ints in proptest::collection::vec(
            prop::sample::select(vec![
                None,
                Some(-3i64),
                Some(0),
                Some(7),
                Some(19),
                Some(9007199254740992),
                Some(9007199254740993),
                Some(-9007199254740993),
            ]),
            6,
        ),
        floats in proptest::collection::vec(
            prop::sample::select(vec![
                None,
                Some(0.0f64),
                Some(-0.0f64),
                Some(1.5),
                Some(-2.25),
                Some(9007199254740992.0),
            ]),
            6,
        ),
        keys in proptest::collection::vec("[abc]", 6),
        steps in proptest::collection::vec(0usize..15, 1..5),
        n in 0i64..5,
    ) {
        let left = DataFrame::new(vec![
            Column::new("v", allhands::dataframe::ColumnData::Int(ints)),
            Column::new("f", allhands::dataframe::ColumnData::Float(floats)),
            Column::from_strs("k", &keys.iter().map(String::as_str).collect::<Vec<_>>()),
        ]).unwrap();
        let right = tricky_right();
        let mut chain = String::from("feedback");
        for s in &steps {
            let call = match s {
                0 => format!(".filter(v > {n})"),
                1 => ".filter(f >= 0.0)".to_string(),
                2 => ".filter(k == \"a\" || v < 2)".to_string(),
                3 => ".derive(\"d\", v * 2)".to_string(),
                4 => ".derive(\"d\", coalesce(f, 0))".to_string(),
                5 => ".group_by(\"k\", count())".to_string(),
                6 => ".group_by(\"k\", mean(\"v\"), count())".to_string(),
                7 => ".sort(\"v\", \"desc\")".to_string(),
                8 => format!(".head({n})"),
                9 => ".value_counts(\"k\")".to_string(),
                10 => ".join(right, \"v\", \"inner\")".to_string(),
                11 => ".join(right, \"v\", \"left\")".to_string(),
                // Column-on-column comparisons/arithmetic: Int vs Float
                // sides straddling 2^53, null == null (true!), null < x.
                12 => ".filter(v > f)".to_string(),
                13 => ".filter(v == f)".to_string(),
                _ => ".derive(\"s\", v + f * 2.0)".to_string(),
            };
            chain.push_str(&call);
        }
        let src = format!("show({chain})");
        let frames: &[(&str, &DataFrame)] = &[("feedback", &left), ("right", &right)];
        let (vs, vl, ve, _) = run_engine(frames, &src, QueryEngine::Vectorized);
        let (rs, rl, re, _) = run_engine(frames, &src, QueryEngine::RowWise);
        prop_assert_eq!(ve, re, "error divergence on:\n{}", src);
        prop_assert_eq!(vl, rl, "log divergence on:\n{}", src);
        prop_assert_eq!(vs, rs, "shown divergence on:\n{}", src);
    }
}
