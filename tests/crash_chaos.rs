//! Crash-chaos: the write-ahead journal must make the pipeline resumable
//! with byte-identical output. The suite kills a journaled run at EVERY
//! crash point (stage starts, stage commits, per-question seams), resumes
//! from the journal, and compares the full transcript — structured frame,
//! rendered answers, degradation notes, injected-fault count — against an
//! uninterrupted run. Clean and 30%-fault configurations, serial and
//! 8-thread execution.
//!
//! Also here: the poison-pill end-to-end (a panicking document is
//! quarantined, the batch completes, other documents are unaffected) and
//! the journal's input-fingerprint mismatch check.

use allhands::core::InjectedCrash;
use allhands::dataframe::Value;
use allhands::datasets::{generate_n, DatasetKind};
use allhands::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The thread override and the panic hook are process-global; serialize
/// the tests in this binary.
static GLOBAL_GUARD: Mutex<()> = Mutex::new(());

const QUESTIONS: [&str; 2] = [
    "How many feedback entries are there?",
    "Which topic appears most frequently?",
];

fn corpus() -> (Vec<String>, Vec<LabeledExample>, Vec<String>) {
    let records = generate_n(DatasetKind::GoogleStoreApp, 40, 23);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(20)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let predefined = vec!["bug".to_string(), "crash".to_string()];
    (texts, labeled, predefined)
}

/// Fresh scratch directory under the cargo-managed tmpdir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("crash-chaos-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir");
    }
    dir
}

fn with_crash(mut config: AllHandsConfig, point: u64) -> AllHandsConfig {
    config.resilience.fault = config.resilience.fault.with_crash_at(point);
    config
}

/// Full transcript of a pipeline + QA session, for bit-exact comparison
/// (same shape as `tests/parallel_determinism.rs`).
fn render_transcript(ah: &mut AllHands, frame: &DataFrame) -> String {
    let mut out = String::new();
    out.push_str(&frame.to_table_string(200));
    for q in QUESTIONS {
        let r = ah.ask(q).expect("ask failed");
        assert!(r.error.is_none(), "question {q:?} errored: {:?}", r.error);
        out.push_str("\n=== ");
        out.push_str(q);
        out.push('\n');
        out.push_str(&r.render());
        for note in &r.degradation {
            out.push_str(&format!("[degraded] {note}\n"));
        }
    }
    for d in ah.resilience().degradations() {
        out.push_str(&format!("[{}] {}\n", d.stage, d.note));
    }
    out.push_str(&format!("injected-faults: {}\n", ah.resilience().injected()));
    out
}

/// Unjournaled reference run.
fn transcript_plain(config: AllHandsConfig) -> String {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .analyze(&texts, &labeled, &predefined)
        .expect("pipeline must degrade, not fail");
    render_transcript(&mut ah, &frame)
}

/// Journaled run (fresh or resuming). Returns the transcript plus the
/// number of crash points passed — the enumeration bound for the chaos
/// loop.
fn transcript_journaled(config: AllHandsConfig, dir: &Path) -> (String, u64) {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .journal(JournalMode::Continue(dir.to_path_buf()))
        .analyze(&texts, &labeled, &predefined)
        .expect("journaled pipeline must degrade, not fail");
    let out = render_transcript(&mut ah, &frame);
    (out, ah.resilience().crash_points_passed())
}

/// Run a journaled pipeline configured to crash, swallow the injected
/// crash (silencing the default hook's backtrace spam), and return it.
fn run_crashing(config: AllHandsConfig, dir: &Path) -> InjectedCrash {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| transcript_journaled(config, dir)));
    std::panic::set_hook(prev);
    match result {
        Ok(_) => panic!("run configured to crash completed instead"),
        Err(payload) => match payload.downcast::<InjectedCrash>() {
            Ok(crash) => *crash,
            Err(other) => panic!(
                "expected an injected crash, got another panic: {:?}",
                other.downcast_ref::<String>()
            ),
        },
    }
}

#[test]
fn crash_at_every_point_resumes_byte_identical() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let clean = AllHandsConfig::default;
    let chaos = || AllHandsConfig {
        resilience: ResilienceConfig::chaos(7, 0.3),
        ..AllHandsConfig::default()
    };
    for (tag, config) in [("clean", clean as fn() -> AllHandsConfig), ("chaos", chaos)] {
        for threads in [1usize, 8] {
            let reference = allhands::par::with_threads(threads, || transcript_plain(config()));
            if tag == "chaos" {
                assert!(
                    !reference.contains("injected-faults: 0"),
                    "chaos config injected nothing"
                );
            }

            // Journaling an uninterrupted run must be observationally
            // invisible — and tells us how many crash points there are.
            let dir = scratch_dir(&format!("ref-{tag}-t{threads}"));
            let (journaled, points) =
                allhands::par::with_threads(threads, || transcript_journaled(config(), &dir));
            assert_eq!(reference, journaled, "journaling changed output ({tag}, t={threads})");
            std::fs::remove_dir_all(&dir).ok();
            assert!(points >= 4 + 2 * QUESTIONS.len() as u64, "missing crash points");

            for point in 0..points {
                let dir = scratch_dir(&format!("p{point}-{tag}-t{threads}"));
                let crash = allhands::par::with_threads(threads, || {
                    run_crashing(with_crash(config(), point), &dir)
                });
                assert_eq!(crash.point, point, "crashed at the wrong point");
                let (resumed, _) =
                    allhands::par::with_threads(threads, || transcript_journaled(config(), &dir));
                assert_eq!(
                    reference, resumed,
                    "resume diverged after crash at point {point} ({}), {tag}, t={threads}",
                    crash.name
                );
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

#[test]
fn resume_with_different_inputs_is_an_error() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (texts, labeled, predefined) = corpus();
    let dir = scratch_dir("mismatch");
    let (_ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Continue(dir.clone()))
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    // Release the journal lock so the second open exercises the
    // fingerprint check, not the lock.
    drop(_ah);
    let mut altered = texts.clone();
    altered[0].push_str(" (edited)");
    // A fingerprint mismatch must be reported as such, never as a held lock.
    let msg = match AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Continue(dir.clone()))
        .analyze(&altered, &labeled, &predefined)
    {
        Ok(_) => panic!("resuming against different inputs must not silently reuse the journal"),
        Err(e) => e.to_string(),
    };
    assert!(msg.contains("journal"), "unexpected error: {msg}");
    std::fs::remove_dir_all(&dir).ok();
}

const POISON: &str = "\u{2620}POISON\u{2620}";

#[test]
fn poison_pill_is_quarantined_not_fatal() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (mut texts, labeled, predefined) = corpus();
    texts.push(format!("{POISON} the app crashes on launch"));
    let pill_row = texts.len() - 1;

    let run = |poison: bool, threads: usize| {
        let mut config = AllHandsConfig::default();
        if poison {
            config.resilience.poison_marker = Some(POISON);
        }
        allhands::par::with_threads(threads, || {
            AllHands::builder(ModelTier::Gpt4)
                .config(config)
                .analyze(&texts, &labeled, &predefined)
                .expect("poisoned batch must still complete")
        })
    };

    let (ah_clean, frame_clean) = run(false, 1);
    assert!(!ah_clean.resilience().degraded());
    let clean_report = ah_clean.quarantine_report();
    assert!(clean_report.is_clean());
    assert_eq!(
        clean_report.to_string(),
        "clean run: no documents quarantined, no degradations"
    );

    let (ah, frame) = run(true, 1);
    // The batch completed with every row present.
    assert_eq!(frame.n_rows(), texts.len());
    // Both per-document stages quarantined the pill.
    let quarantined = ah.resilience().quarantined();
    for stage in ["classification", "topic-modeling"] {
        assert!(
            quarantined.iter().any(|q| q.stage == stage && q.doc_id == pill_row.to_string()),
            "stage {stage} did not quarantine doc {pill_row}: {quarantined:?}"
        );
    }
    assert!(quarantined.iter().all(|q| q.payload.contains("poison pill")));
    assert!(ah.resilience().degraded());
    let report = ah.quarantine_report();
    assert!(!report.is_clean());
    assert_eq!(report.quarantined_count(), quarantined.len());
    let rendered = report.to_string();
    assert!(
        rendered.contains("quarantined") && rendered.contains(&pill_row.to_string()),
        "{rendered}"
    );

    // Every other document's label is untouched by the pill.
    let labels = |f: &DataFrame| -> Vec<Value> {
        f.column("label").unwrap().iter().collect()
    };
    let (clean_labels, poison_labels) = (labels(&frame_clean), labels(&frame));
    for i in 0..pill_row {
        assert_eq!(
            format!("{:?}", clean_labels[i]),
            format!("{:?}", poison_labels[i]),
            "label for doc {i} changed under quarantine"
        );
    }
    // The pill itself fell back to "others" in the topic stage.
    match frame.column("topics").unwrap().get(pill_row) {
        Value::StrList(topics) => assert_eq!(topics, vec!["others".to_string()]),
        other => panic!("topics cell has wrong type: {other:?}"),
    }

    // Quarantine is deterministic across thread counts.
    let (ah8, frame8) = run(true, 8);
    assert_eq!(frame.to_table_string(200), frame8.to_table_string(200));
    assert_eq!(ah.resilience().quarantined(), ah8.resilience().quarantined());
}
