//! Checkpoint store, journal compaction, and point-in-time recovery.
//!
//! The contracts under test:
//!
//! - Checkpointing + compaction are observationally invisible: a journaled
//!   stream with an aggressive `CheckpointPolicy` produces transcripts
//!   byte-identical to an unjournaled run, at 1 and 8 threads, clean and
//!   under 30% chaos — and a compacted journal replays byte-identically.
//! - Killing the run at every checkpoint/compaction seam (mid-write,
//!   pre-rename, mid-truncate, post-truncate-pre-reanchor, …) leaves a
//!   journal that resumes to the exact reference transcript.
//! - `recover_at(batch)` / `recover_latest()` restore the nearest
//!   checkpoint at or below the target and replay surviving deltas
//!   forward, matching the uninterrupted run's frames byte-for-byte.
//! - Flipping or truncating bytes at arbitrary offsets in checkpoint
//!   files or the compacted WAL always degrades recovery to the previous
//!   durable state — it never errors and never diverges.
//! - A live journal directory is exclusive: a second session gets a typed
//!   `Locked` error instead of interleaved appends.

use allhands::core::InjectedCrash;
use allhands::datasets::{generate_n, DatasetKind};
use allhands::journal::Journal;
use allhands::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The thread override and the panic hook are process-global; serialize
/// the tests in this binary.
static GLOBAL_GUARD: Mutex<()> = Mutex::new(());

const QUESTIONS: [&str; 2] = [
    "How many feedback entries are there?",
    "Which topic appears most frequently?",
];

fn corpus() -> (Vec<String>, Vec<LabeledExample>, Vec<String>) {
    let records = generate_n(DatasetKind::GoogleStoreApp, 20, 23);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(12)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let predefined = vec!["bug".to_string(), "crash".to_string()];
    (texts, labeled, predefined)
}

/// Three ingest batches: familiar feedback, then two themed novel batches
/// that overflow the pending pool so the flush coins topics.
fn batches() -> Vec<Vec<String>> {
    let familiar: Vec<String> =
        generate_n(DatasetKind::GoogleStoreApp, 6, 101).iter().map(|r| r.text.clone()).collect();
    let battery: Vec<String> = [
        "battery drains overnight even when idle",
        "phone gets hot and battery dies fast since update",
        "battery usage doubled after the last version",
        "standby battery drain is terrible now",
        "charging takes forever and battery drains quickly",
        "battery drain while the app runs in background",
    ]
    .map(String::from)
    .to_vec();
    let dark_mode: Vec<String> = [
        "dark mode please my eyes hurt at night",
        "would love a dark mode option",
        "please add dark mode theme",
        "night theme dark mode when",
        "the white background burns please dark mode",
        "dark mode dark mode dark mode",
    ]
    .map(String::from)
    .to_vec();
    vec![familiar, battery, dark_mode]
}

/// Small pending pool so the themed batches flush; aggressive index
/// staleness so auto-retraining fires inside the stream.
fn tuned(mut config: AllHandsConfig) -> AllHandsConfig {
    config.ingest.pending_threshold = 6;
    config.ingest.ivf_partition_docs = 8;
    config.ingest.ivf_staleness = 0.2;
    config
}

fn with_policy(mut config: AllHandsConfig, every: usize, keep: usize) -> AllHandsConfig {
    config.checkpoint = CheckpointPolicy { every_n_batches: every, keep_last_k: keep };
    config
}

fn chaos_config() -> AllHandsConfig {
    tuned(AllHandsConfig { resilience: ResilienceConfig::chaos(7, 0.3), ..Default::default() })
}

fn with_crash(mut config: AllHandsConfig, point: u64) -> AllHandsConfig {
    config.resilience.fault = config.resilience.fault.with_crash_at(point);
    config
}

/// Fresh scratch directory under the cargo-managed tmpdir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("checkpoint-recovery-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir");
    }
    dir
}

/// Full transcript of an analyze + ingest-stream + QA session, for
/// bit-exact comparison (checkpoint policy must not change a byte of it).
fn render_transcript(ah: &mut AllHands, frame: &DataFrame) -> String {
    let mut out = String::new();
    out.push_str(&frame.to_table_string(100));
    for (i, batch) in batches().iter().enumerate() {
        let rep = ah.ingest(batch).expect("ingest must degrade, not fail");
        out.push_str(&format!(
            "\n=== batch {i}: new={} assigned={} routed={} flushed={} coined={:?} retrained={}\n",
            rep.new_rows, rep.assigned, rep.routed_pending, rep.flushed, rep.coined, rep.retrained
        ));
        out.push_str(&rep.frame.to_table_string(100));
    }
    out.push_str(&tail_transcript(ah, None));
    out
}

/// The session tail — optional final frame, the QA answers, degradation
/// notes, and the injected-fault count. A recovered session must
/// reproduce this byte-for-byte.
fn tail_transcript(ah: &mut AllHands, frame: Option<&DataFrame>) -> String {
    let mut out = String::new();
    if let Some(frame) = frame {
        out.push_str(&frame.to_table_string(100));
    }
    for q in QUESTIONS {
        let r = ah.ask(q).expect("ask failed");
        assert!(r.error.is_none(), "question {q:?} errored: {:?}", r.error);
        out.push_str("\n=== ");
        out.push_str(q);
        out.push('\n');
        out.push_str(&r.render());
        for note in &r.degradation {
            out.push_str(&format!("[degraded] {note}\n"));
        }
    }
    for d in ah.resilience().degradations() {
        out.push_str(&format!("[{}] {}\n", d.stage, d.note));
    }
    out.push_str(&format!("injected-faults: {}\n", ah.resilience().injected()));
    out
}

/// Unjournaled reference run.
fn transcript_plain(config: AllHandsConfig) -> String {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .analyze(&texts, &labeled, &predefined)
        .expect("pipeline must degrade, not fail");
    render_transcript(&mut ah, &frame)
}

/// Journaled run (fresh or resuming). Returns the transcript plus the
/// number of crash points passed.
fn transcript_journaled(config: AllHandsConfig, dir: &Path) -> (String, u64) {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .journal(JournalMode::Continue(dir.to_path_buf()))
        .analyze(&texts, &labeled, &predefined)
        .expect("journaled pipeline must degrade, not fail");
    let out = render_transcript(&mut ah, &frame);
    (out, ah.resilience().crash_points_passed())
}

/// Run a journaled stream configured to crash, swallow the injected crash
/// (silencing the default hook's backtrace spam), and return it.
fn run_crashing(config: AllHandsConfig, dir: &Path) -> InjectedCrash {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| transcript_journaled(config, dir)));
    std::panic::set_hook(prev);
    match result {
        Ok(_) => panic!("run configured to crash completed instead"),
        Err(payload) => match payload.downcast::<InjectedCrash>() {
            Ok(crash) => *crash,
            Err(other) => panic!(
                "expected an injected crash, got another panic: {:?}",
                other.downcast_ref::<String>()
            ),
        },
    }
}

/// Frame tables after analyze (index 0) and after each ingest batch
/// (index b+1), from an unjournaled run — the point-in-time targets
/// recovery must hit byte-for-byte.
fn prefix_frames(config: AllHandsConfig) -> Vec<String> {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    let mut frames = vec![frame.to_table_string(100)];
    for batch in batches() {
        frames.push(ah.ingest(&batch).unwrap().frame.to_table_string(100));
    }
    frames
}

/// Seed a checkpointed journal: analyze + all batches (+ questions when
/// asked for), then drop the session so the lock releases.
fn seed_journal(config: AllHandsConfig, dir: &Path, ask: bool) -> String {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .journal(JournalMode::Continue(dir.to_path_buf()))
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    let mut last = frame;
    for batch in batches() {
        last = ah.ingest(&batch).unwrap().frame;
    }
    if ask {
        for q in QUESTIONS {
            let r = ah.ask(q).expect("ask failed");
            assert!(r.error.is_none());
        }
    }
    last.to_table_string(100)
}

/// Point-in-time recovery over an existing journal; returns the session
/// and the recovered frame's table rendering.
fn recover(
    config: AllHandsConfig,
    dir: &Path,
    point: Option<usize>,
) -> Result<(AllHands, String), AllHandsError> {
    let (texts, labeled, predefined) = corpus();
    let mut b = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .journal(JournalMode::Continue(dir.to_path_buf()))
        .recorder(RecorderMode::Enabled);
    b = match point {
        Some(k) => b.recover_at(k),
        None => b.recover_latest(),
    };
    let (ah, frame) = b.analyze(&texts, &labeled, &predefined)?;
    Ok((ah, frame.to_table_string(100)))
}

#[test]
fn checkpointing_is_observationally_invisible_and_compacted_journals_replay() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let clean = || tuned(AllHandsConfig::default());
    for (tag, config) in [("clean", clean as fn() -> AllHandsConfig), ("chaos", chaos_config)] {
        for threads in [1usize, 8] {
            let reference = allhands::par::with_threads(threads, || transcript_plain(config()));
            let dir = scratch_dir(&format!("invis-{tag}-t{threads}"));
            let (journaled, _) = allhands::par::with_threads(threads, || {
                transcript_journaled(with_policy(config(), 1, 2), &dir)
            });
            assert_eq!(
                reference, journaled,
                "checkpointing changed observable output ({tag}, t={threads})"
            );
            // The journal really was checkpointed and compacted: the WAL
            // prefix up to the oldest retained checkpoint is gone.
            let j = Journal::open(&dir).unwrap();
            assert!(j.has_checkpoints(), "no checkpoint files survived ({tag})");
            assert!(
                j.len() < 4 + QUESTIONS.len(),
                "WAL holds {} entries — compaction never truncated it",
                j.len()
            );
            assert!(j.find("stage1", "labels").is_none(), "stage snapshots survived compaction");
            drop(j);
            // A fresh session over the compacted journal reproduces the
            // whole transcript byte-for-byte (dropped records recompute
            // deterministically, surviving ones replay).
            let (replayed, _) = allhands::par::with_threads(threads, || {
                transcript_journaled(with_policy(config(), 1, 2), &dir)
            });
            assert_eq!(
                reference, replayed,
                "compacted journal replay diverged ({tag}, t={threads})"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn checkpoint_observability_counters_and_spans() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (texts, labeled, predefined) = corpus();
    let dir = scratch_dir("obs");
    let (mut ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(with_policy(tuned(AllHandsConfig::default()), 1, 2))
        .journal(JournalMode::Continue(dir.clone()))
        .recorder(RecorderMode::Enabled)
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    for batch in batches() {
        ah.ingest(&batch).unwrap();
    }
    let report = ah.run_report();
    assert_eq!(report.counter("journal.checkpoint.writes"), 3);
    assert_eq!(report.counter("journal.compact.runs"), 3);
    assert!(report.counter("journal.compact.entries_dropped") >= 1);
    assert!(report.counter("journal.compact.bytes_reclaimed") >= 1);
    assert!(report.counter("journal.checkpoint.bytes") >= 1);
    assert!(
        report.span_paths().iter().any(|p| p == "ingest > batch[0] > checkpoint"),
        "checkpoint span missing: {:?}",
        report.span_paths()
    );
    drop(ah);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_at_every_checkpoint_and_compaction_seam_recovers_byte_identical() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let clean = || tuned(AllHandsConfig::default());
    for (tag, config) in [("clean", clean as fn() -> AllHandsConfig), ("chaos", chaos_config)] {
        for threads in [1usize, 8] {
            let policy = |c| with_policy(c, 2, 1);
            let reference = allhands::par::with_threads(threads, || transcript_plain(config()));
            let dir = scratch_dir(&format!("seam-ref-{tag}-t{threads}"));
            let (journaled, points) = allhands::par::with_threads(threads, || {
                transcript_journaled(policy(config()), &dir)
            });
            assert_eq!(reference, journaled, "journaling changed output ({tag}, t={threads})");
            std::fs::remove_dir_all(&dir).ok();
            // 4 stage points + 2 per batch + 2 per question + 9 seams for
            // the single every-2-batches checkpoint boundary (4 checkpoint
            // write seams + 5 compaction seams).
            let expected = 4 + 2 * batches().len() as u64 + 2 * QUESTIONS.len() as u64 + 9;
            assert_eq!(points, expected, "crash-point schedule shifted ({tag}, t={threads})");
            // The 9 seams sit immediately after `ingest:b00001:committed`:
            // points 0..=7 are the stage + batch-0/1 points.
            for crash_at in 8..17 {
                let dir = scratch_dir(&format!("seam-{tag}-t{threads}-p{crash_at}"));
                let crash = allhands::par::with_threads(threads, || {
                    run_crashing(with_crash(policy(config()), crash_at), &dir)
                });
                assert_eq!(crash.point, crash_at, "crashed at the wrong point ({tag})");
                let (resumed, _) = allhands::par::with_threads(threads, || {
                    transcript_journaled(policy(config()), &dir)
                });
                assert_eq!(
                    reference, resumed,
                    "resume after crash at seam {} ({:?}) diverged ({tag}, t={threads})",
                    crash_at, crash.name
                );
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

#[test]
fn recover_at_restores_each_batch_boundary_byte_identically() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    // The durability policy is part of the run fingerprint, so recovery
    // must re-state the policy the journal was written under.
    let config = || with_policy(tuned(AllHandsConfig::default()), 1, 8);
    let frames = prefix_frames(config());
    // every=1, keep=8: every batch boundary has its own durable checkpoint.
    let dir = scratch_dir("pit");
    seed_journal(config(), &dir, false);
    for k in 0..batches().len() {
        let (ah, frame) = recover(config(), &dir, Some(k)).expect("recover_at must succeed");
        assert_eq!(
            frame,
            frames[k + 1],
            "recover_at({k}) diverged from the uninterrupted run's frame"
        );
        assert_eq!(ah.ingested_batches(), k + 1);
        drop(ah);
    }
    let (mut ah, frame) = recover(config(), &dir, None).expect("recover_latest must succeed");
    assert_eq!(frame, frames[batches().len()], "recover_latest diverged");
    // The recovered session stays live: it answers questions and ingests.
    let r = ah.ask(QUESTIONS[0]).expect("ask failed");
    assert!(r.error.is_none());
    let rep = ah.ingest(&batches()[0]).unwrap();
    assert_eq!(rep.batch, batches().len());
    drop(ah);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_replays_forward_from_the_nearest_checkpoint() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let config = || with_policy(tuned(AllHandsConfig::default()), 2, 8);
    let frames = prefix_frames(config());
    // every=2, keep=8: one checkpoint at batch 1; batch 2 is reachable only
    // by restoring it and replaying the surviving delta forward; batch 0's
    // delta was compacted away, so that point in time is gone.
    let dir = scratch_dir("forward");
    seed_journal(config(), &dir, false);

    let (ah, frame) = recover(config(), &dir, Some(1)).expect("checkpointed batch must recover");
    assert_eq!(frame, frames[2], "direct checkpoint restore diverged");
    assert_eq!(ah.run_report().counter("recover.delta_replays"), 0);
    drop(ah);

    let (ah, frame) = recover(config(), &dir, Some(2)).expect("forward replay must recover");
    assert_eq!(frame, frames[3], "checkpoint + delta replay diverged");
    assert_eq!(ah.run_report().counter("recover.delta_replays"), 1);
    drop(ah);

    let err = match recover(config(), &dir, Some(0)) {
        Ok(_) => panic!("batch 0 was compacted away; recover_at(0) must error"),
        Err(e) => e.to_string(),
    };
    assert!(err.contains("no surviving delta"), "unexpected error: {err}");

    let err = match recover(config(), &dir, Some(7)) {
        Ok(_) => panic!("batch 7 never ran; recover_at(7) must error"),
        Err(e) => e.to_string(),
    };
    assert!(err.contains("beyond"), "unexpected error: {err}");
    std::fs::remove_dir_all(&dir).ok();

    // And recovery without a journal is a typed error, not a silent no-op.
    let (texts, labeled, predefined) = corpus();
    let err = match AllHands::builder(ModelTier::Gpt4)
        .config(config())
        .recover_latest()
        .analyze(&texts, &labeled, &predefined)
    {
        Ok(_) => panic!("recover without a journal must error"),
        Err(e) => e.to_string(),
    };
    assert!(err.contains("requires a journal"), "unexpected error: {err}");
}

#[test]
fn recovery_is_byte_identical_across_threads_and_chaos() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let clean = || tuned(AllHandsConfig::default());
    for (tag, config) in [("clean", clean as fn() -> AllHandsConfig), ("chaos", chaos_config)] {
        for threads in [1usize, 8] {
            let dir = scratch_dir(&format!("rec-{tag}-t{threads}"));
            // Seed a checkpointed session, asking the questions live, and
            // capture its tail (final frame + answers + degradations).
            let reference = allhands::par::with_threads(threads, || {
                let (texts, labeled, predefined) = corpus();
                let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
                    .config(with_policy(config(), 1, 2))
                    .journal(JournalMode::Continue(dir.clone()))
                    .analyze(&texts, &labeled, &predefined)
                    .unwrap();
                let mut last = frame;
                for batch in batches() {
                    last = ah.ingest(&batch).unwrap().frame;
                }
                tail_transcript(&mut ah, Some(&last))
            });
            // Recover the same session from its checkpoints and re-ask:
            // the tail must match byte-for-byte (answers replay from the
            // surviving QA records, state from checkpoint + deltas).
            let recovered = allhands::par::with_threads(threads, || {
                let (texts, labeled, predefined) = corpus();
                let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
                    .config(with_policy(config(), 1, 2))
                    .journal(JournalMode::Continue(dir.clone()))
                    .recover_latest()
                    .analyze(&texts, &labeled, &predefined)
                    .unwrap();
                tail_transcript(&mut ah, Some(&frame))
            });
            assert_eq!(
                reference, recovered,
                "recovered session tail diverged ({tag}, t={threads})"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Deterministic xorshift64* for the corruption fuzz offsets.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

/// Flip one byte (even rounds) or truncate (odd rounds) at a seeded
/// offset of `path`.
fn corrupt_file(path: &Path, rng: &mut u64, round: usize) {
    let mut bytes = std::fs::read(path).unwrap();
    if bytes.is_empty() {
        return;
    }
    let off = (xorshift(rng) as usize) % bytes.len();
    if round % 2 == 0 {
        bytes[off] ^= 0x20 | (1 << (xorshift(rng) % 8)) as u8;
        std::fs::write(path, &bytes).unwrap();
    } else {
        bytes.truncate(off);
        std::fs::write(path, &bytes).unwrap();
    }
}

#[test]
fn corruption_always_degrades_to_a_durable_checkpoint() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let config = || with_policy(tuned(AllHandsConfig::default()), 1, 2);
    let frames = prefix_frames(config());
    let full = &frames[batches().len()];
    // Pristine compacted journal: checkpoints at batches 2 and 3 (keep=2)
    // plus the surviving batch-3 delta in the WAL.
    let pristine = scratch_dir("fuzz-pristine");
    seed_journal(config(), &pristine, false);
    let targets: Vec<PathBuf> = {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&pristine)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        files
    };
    assert!(targets.len() >= 3, "expected WAL + 2 checkpoints, found {targets:?}");

    // Single-file corruption at arbitrary offsets: the redundant pair of
    // checkpoints plus the delta chain means recovery always reaches the
    // full state — whichever artifact is damaged, another path covers it.
    let mut rng = 0x1234_5678_9abc_def0u64;
    for round in 0..24 {
        let fuzz = scratch_dir("fuzz-work");
        copy_dir(&pristine, &fuzz);
        let victim = &targets[(xorshift(&mut rng) as usize) % targets.len()];
        let victim = fuzz.join(victim.file_name().unwrap());
        corrupt_file(&victim, &mut rng, round);
        let (ah, frame) = recover(config(), &fuzz, None).unwrap_or_else(|e| {
            panic!(
                "round {round}: corrupting {:?} made recovery error instead of degrade: {e}",
                victim.file_name()
            )
        });
        assert_eq!(
            &frame,
            full,
            "round {round}: single-file corruption of {:?} diverged",
            victim.file_name()
        );
        drop(ah);
        std::fs::remove_dir_all(&fuzz).ok();
    }

    // Newest checkpoint AND the WAL corrupted: recovery falls back to the
    // older durable checkpoint — the batch-2 state — with a degradation
    // note, never an error.
    let fuzz = scratch_dir("fuzz-double");
    copy_dir(&pristine, &fuzz);
    let mut ckpts: Vec<PathBuf> = std::fs::read_dir(&fuzz)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("ckpt-"))
        .collect();
    ckpts.sort();
    let newest = ckpts.last().unwrap().clone();
    corrupt_file(&newest, &mut rng, 0);
    corrupt_file(&fuzz.join("allhands.journal"), &mut rng, 0);
    let (ah, frame) = recover(config(), &fuzz, None)
        .expect("double corruption must degrade to the older checkpoint, not error");
    assert_eq!(frame, frames[2], "fallback did not land on the older durable checkpoint");
    assert_eq!(ah.ingested_batches(), 2, "fallback restored the wrong batch count");
    drop(ah);
    std::fs::remove_dir_all(&fuzz).ok();

    // Every artifact corrupted: recovery degrades all the way to a clean
    // deterministic re-run of the pipeline over the provided inputs.
    let fuzz = scratch_dir("fuzz-total");
    copy_dir(&pristine, &fuzz);
    for t in &targets {
        corrupt_file(&fuzz.join(t.file_name().unwrap()), &mut rng, 0);
    }
    let (_ah, frame) = recover(config(), &fuzz, None)
        .expect("total corruption must fall back to a fresh pipeline run");
    assert_eq!(frame, frames[0], "total-corruption fallback diverged from a fresh run");
    std::fs::remove_dir_all(&fuzz).ok();
    std::fs::remove_dir_all(&pristine).ok();
}

#[test]
fn live_journal_directory_is_exclusive() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (texts, labeled, predefined) = corpus();
    let dir = scratch_dir("lock");
    let (ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Continue(dir.clone()))
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    let err = match AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Continue(dir.clone()))
        .analyze(&texts, &labeled, &predefined)
    {
        Ok(_) => panic!("second session on a live journal must be refused"),
        Err(e) => e.to_string(),
    };
    assert!(err.contains("locked"), "unexpected error: {err}");
    drop(ah);
    // Once the holder is gone the directory opens (and replays) normally.
    let (_ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Continue(dir.clone()))
        .analyze(&texts, &labeled, &predefined)
        .expect("released lock must reopen");
    drop(_ah);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_recovery_is_visible_in_the_run_report() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (texts, labeled, predefined) = corpus();
    let dir = scratch_dir("torn");
    let (ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Continue(dir.clone()))
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    drop(ah);
    // Tear the final record mid-line, as a crash between write and fsync
    // would.
    let wal = dir.join("allhands.journal");
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);
    let (ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Continue(dir.clone()))
        .recorder(RecorderMode::Enabled)
        .analyze(&texts, &labeled, &predefined)
        .expect("torn tail must recover, not fail");
    let report = ah.run_report();
    assert_eq!(report.counter("journal.torn_tail_recovered"), 1);
    assert!(report.counter("journal.dropped_entries") >= 1);
    drop(ah);
    std::fs::remove_dir_all(&dir).ok();
}
