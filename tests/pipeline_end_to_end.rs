//! End-to-end pipeline integration: raw text → classification →
//! abstractive topic modeling → structured frame → natural-language QA,
//! including follow-up questions and plugin extension.

use allhands::dataframe::Value;
use allhands::datasets::{generate_n, DatasetKind};
use allhands::prelude::*;
use allhands::query::RtValue;

fn build() -> (AllHands, DataFrame) {
    let records = generate_n(DatasetKind::GoogleStoreApp, 300, 5);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(100)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let predefined = vec!["bug".to_string(), "crash".to_string(), "feature request".to_string()];
    AllHands::builder(ModelTier::Gpt4)
        .analyze(&texts, &labeled, &predefined)
        .expect("clean pipeline run must succeed")
}

#[test]
fn pipeline_produces_complete_structured_frame() {
    let (_, frame) = build();
    assert_eq!(frame.n_rows(), 300);
    for col in ["id", "text", "label", "sentiment", "topics", "text_len"] {
        assert!(frame.has_column(col), "missing column {col}");
    }
    // Every row got at least one topic and a sane sentiment.
    let topics = frame.column("topics").unwrap();
    let sentiment = frame.column("sentiment").unwrap();
    for i in 0..frame.n_rows() {
        match topics.get(i) {
            Value::StrList(l) => assert!(!l.is_empty(), "row {i} has no topics"),
            other => panic!("row {i}: unexpected {other:?}"),
        }
        let s = sentiment.get(i).as_f64().unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }
    // Labels are from the training label set.
    let labels = frame.column("label").unwrap();
    for i in 0..frame.n_rows() {
        let l = labels.get(i).to_string();
        assert!(l == "informative" || l == "non-informative", "bad label {l}");
    }
}

#[test]
fn classification_beats_majority_baseline() {
    let records = generate_n(DatasetKind::GoogleStoreApp, 400, 9);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(150)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let (_, frame) = AllHands::builder(ModelTier::Gpt4)
        .analyze(&texts, &labeled, &["bug".to_string()])
        .expect("clean pipeline run must succeed");
    let predicted = frame.column("label").unwrap();
    let agree = records
        .iter()
        .enumerate()
        .filter(|(i, r)| predicted.get(*i).to_string() == r.label)
        .count();
    let majority = records
        .iter()
        .filter(|r| r.label == "informative")
        .count()
        .max(records.len() / 2);
    assert!(
        agree > majority,
        "pipeline accuracy {agree}/400 not above majority {majority}/400"
    );
}

#[test]
fn qa_supports_followups_in_one_session() {
    let (mut allhands, _) = build();
    let r1 = allhands.ask("How many feedback entries are there?").expect("ask failed");
    assert!(r1.error.is_none(), "{:?}", r1.error);
    match r1.shown.first() {
        Some(RtValue::Scalar(v)) => assert_eq!(v.as_f64(), Some(300.0)),
        other => panic!("unexpected output {other:?}"),
    }
    let r2 = allhands.ask("Which topic appears most frequently?").expect("ask failed");
    assert!(r2.error.is_none());
    let r3 = allhands.ask("Based on the feedback, what can be improved to improve the users' satisfaction?").expect("ask failed");
    assert!(r3.error.is_none());
    assert!(r3.text_content().contains("1."), "no numbered recommendations");
    assert_eq!(allhands.agent_mut().history().len(), 3);
}

#[test]
fn custom_plugin_reachable_from_facade() {
    let (mut allhands, _) = build();
    allhands.register_plugin(
        "always_seven",
        Box::new(|_args| Ok(RtValue::Scalar(Value::Int(7)))),
    );
    let result = allhands
        .agent_mut()
        .session_mut()
        .execute("show(always_seven())");
    assert!(result.error.is_none());
    assert!(matches!(result.shown.first(), Some(RtValue::Scalar(Value::Int(7)))));
}

#[test]
fn tier_is_recorded() {
    let (allhands, _) = build();
    assert_eq!(allhands.tier(), ModelTier::Gpt4);
    assert!(allhands.config().agent.plan_merge);
}
