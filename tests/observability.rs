//! Observability contract, end to end:
//!
//! - deterministic metrics (counters, histograms, meta, span-tree shape) are
//!   byte-identical across thread counts, clean AND under 30% chaos;
//! - the span tree of a known run has a pinned shape;
//! - spelling the durability policy out via `.ingest_config()` /
//!   `.checkpoints()` is byte-identical to the defaults;
//! - a disabled recorder (the default) yields an empty report;
//! - `JournalMode::Fresh` refuses a journal that already has entries.

use allhands::datasets::{generate_n, DatasetKind};
use allhands::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The thread override is process-global; serialize the tests in this binary.
static OVERRIDE_GUARD: Mutex<()> = Mutex::new(());

const QUESTIONS: [&str; 3] = [
    "How many feedback entries are there?",
    "Which topic appears most frequently?",
    "What topic has the most negative sentiment score on average?",
];

fn corpus(n: usize) -> (Vec<String>, Vec<LabeledExample>, Vec<String>) {
    let records = generate_n(DatasetKind::GoogleStoreApp, n, 17);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(n / 2)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let predefined =
        vec!["bug".to_string(), "crash".to_string(), "feature request".to_string()];
    (texts, labeled, predefined)
}

/// Full instrumented run: pipeline + the three questions. Returns the
/// transcript and the final run report.
fn instrumented_run(config: AllHandsConfig, n: usize) -> (String, RunReport) {
    let (texts, labeled, predefined) = corpus(n);
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .recorder(RecorderMode::Enabled)
        .analyze(&texts, &labeled, &predefined)
        .expect("pipeline must degrade, not fail");
    let mut out = String::new();
    out.push_str(&frame.to_table_string(200));
    for q in QUESTIONS {
        out.push_str(&ah.ask(q).expect("ask failed").render());
    }
    let report = ah.run_report();
    (out, report)
}

fn chaos_config() -> AllHandsConfig {
    AllHandsConfig { resilience: ResilienceConfig::chaos(7, 0.3), ..AllHandsConfig::default() }
}

#[test]
fn deterministic_metrics_identical_across_thread_counts() {
    let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    for (tag, config) in [
        ("clean", AllHandsConfig::default as fn() -> AllHandsConfig),
        ("chaos", chaos_config),
    ] {
        let (serial_out, serial_report) =
            allhands::par::with_threads(1, || instrumented_run(config(), 80));
        let serial_metrics =
            serde_json::to_string_pretty(&serial_report.deterministic_json()).unwrap();
        assert!(serial_report.counter("classify.docs") >= 80, "{tag}: classify uncounted");
        assert_eq!(serial_report.counter("qa.questions"), 3, "{tag}");
        for threads in [2usize, 8] {
            let (out, report) =
                allhands::par::with_threads(threads, || instrumented_run(config(), 80));
            assert_eq!(serial_out, out, "{tag}: transcript diverged at threads={threads}");
            let metrics = serde_json::to_string_pretty(&report.deterministic_json()).unwrap();
            assert_eq!(
                serial_metrics, metrics,
                "{tag}: deterministic metrics diverged at threads={threads}"
            );
        }
    }
}

#[test]
fn span_tree_shape_is_pinned() {
    let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    // 40 docs < one 64-doc span batch, so classification is one batch[0].
    let (_, report) = allhands::par::with_threads(1, || instrumented_run(AllHandsConfig::default(), 40));
    let paths = report.span_paths();
    let expected = [
        "pipeline",
        "pipeline > classify",
        "pipeline > classify > batch[0]",
        "pipeline > topics",
        "pipeline > topics > round[0]",
        "pipeline > topics > hac",
        "pipeline > topics > merge",
        "pipeline > topics > round[1]",
        "qa",
        "qa > question[0]",
        "qa > question[0] > plan",
        "qa > question[0] > codegen[0]",
        "qa > question[0] > execute[0]",
        "qa > question[1]",
        "qa > question[1] > plan",
        "qa > question[1] > codegen[0]",
        "qa > question[1] > execute[0]",
        "qa > question[2]",
        "qa > question[2] > plan",
        "qa > question[2] > codegen[0]",
        "qa > question[2] > execute[0]",
    ];
    assert_eq!(paths, expected, "span tree shape drifted");
}

#[test]
fn explicit_policy_builder_methods_match_the_defaults() {
    let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (texts, labeled, predefined) = corpus(40);
    // Spelling the default durability policy out through the dedicated
    // builder methods must be byte-identical to relying on the defaults —
    // including the run fingerprint, which pins the policy.
    let run = |explicit: bool| -> String {
        let builder = AllHands::builder(ModelTier::Gpt4);
        let builder = if explicit {
            builder
                .ingest_config(IngestConfig::default())
                .checkpoints(CheckpointPolicy::default())
        } else {
            builder
        };
        let (mut ah, frame) =
            builder.analyze(&texts, &labeled, &predefined).expect("builder run failed");
        let mut out = frame.to_table_string(200);
        for q in QUESTIONS {
            out.push_str(&ah.ask(q).expect("ask failed").render());
        }
        out.push_str(&ah.quarantine_report().to_string());
        out
    };
    assert_eq!(run(false), run(true), "explicit-policy builder diverged from defaults");
}

#[test]
fn disabled_recorder_yields_empty_report() {
    let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (texts, labeled, predefined) = corpus(40);
    // RecorderMode::Disabled is the default.
    let (mut ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .analyze(&texts, &labeled, &predefined)
        .expect("pipeline failed");
    let _ = ah.ask(QUESTIONS[0]).expect("ask failed");
    assert!(!ah.recorder().is_enabled());
    let report = ah.run_report();
    assert!(report.is_empty(), "disabled recorder must record nothing");
    assert!(report.span_paths().is_empty());
    assert_eq!(report.counter("qa.questions"), 0);
}

/// Fresh scratch directory under the cargo-managed tmpdir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("observability-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir");
    }
    dir
}

#[test]
fn journal_fresh_mode_refuses_existing_entries() {
    let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (texts, labeled, predefined) = corpus(40);
    let dir = scratch_dir("fresh");
    // First run: the journal is brand new, Fresh is satisfied.
    let (_ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Fresh(dir.clone()))
        .analyze(&texts, &labeled, &predefined)
        .expect("fresh journal on an empty dir must work");
    // Release the journal lock so the re-opens below exercise the Fresh
    // check and replay, not the lock.
    drop(_ah);
    // Second run: the journal now holds committed stages — Fresh refuses,
    // Continue replays.
    let err = match AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Fresh(dir.clone()))
        .analyze(&texts, &labeled, &predefined)
    {
        Ok(_) => panic!("fresh journal over committed entries must error"),
        Err(e) => e.to_string(),
    };
    assert!(err.contains("Fresh"), "unexpected error: {err}");
    let (_ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .journal(JournalMode::Continue(dir.clone()))
        .analyze(&texts, &labeled, &predefined)
        .expect("continue over committed entries must replay");
    std::fs::remove_dir_all(&dir).ok();
}
