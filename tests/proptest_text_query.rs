//! Property-based tests on the text substrate and the AQL language
//! front end: total functions over arbitrary input, structural invariants.

use allhands::dataframe::{Column, DataFrame};
use allhands::query::{check_syntax, Session, SessionLimits};
use allhands::text::{
    fold_diacritics, normalize, porter_stem, sentences, tokenize, Vocabulary,
};
use proptest::prelude::*;

proptest! {
    // ---- text substrate ----------------------------------------------------

    #[test]
    fn tokenizer_never_panics_and_offsets_are_valid(s in "\\PC{0,200}") {
        let tokens = tokenize(&s);
        for t in &tokens {
            prop_assert!(t.offset <= s.len());
            // The token's text starts at its byte offset.
            prop_assert!(s[t.offset..].starts_with(&t.text), "offset mismatch for {:?}", t);
        }
        // Offsets strictly increase.
        for pair in tokens.windows(2) {
            prop_assert!(pair[0].offset < pair[1].offset);
        }
    }

    #[test]
    fn sentences_cover_only_input_content(s in "[ -~]{0,200}") {
        for span in sentences(&s) {
            prop_assert!(s.contains(span));
            prop_assert!(!span.is_empty());
        }
    }

    #[test]
    fn normalize_is_idempotent(s in "\\PC{0,40}") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once);
    }

    #[test]
    fn fold_diacritics_is_idempotent_and_ascii_preserving(s in "[a-zA-Z àéîõüß]{0,40}") {
        let once = fold_diacritics(&s);
        prop_assert_eq!(fold_diacritics(&once), once.clone());
        prop_assert!(once.chars().all(|c| c.is_ascii() || !"àéîõüß".contains(c)));
    }

    #[test]
    fn porter_stem_total_and_shrinking(s in "[a-z]{1,20}") {
        let stem = porter_stem(&s);
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.len() <= s.len() + 1, "{s} -> {stem}");
        prop_assert!(stem.is_ascii());
    }

    #[test]
    fn vocabulary_ids_are_dense_and_stable(tokens in proptest::collection::vec("[a-f]{1,3}", 0..50)) {
        let mut v = Vocabulary::new();
        let ids = v.add_document(tokens.iter().map(String::as_str));
        prop_assert_eq!(ids.len(), tokens.len());
        for (tok, id) in tokens.iter().zip(&ids) {
            prop_assert_eq!(v.id_of(tok), Some(*id));
            prop_assert_eq!(v.token_of(*id), Some(tok.as_str()));
        }
        prop_assert!(v.len() <= tokens.len().max(1));
    }

    // ---- AQL front end -----------------------------------------------------

    #[test]
    fn parser_never_panics(s in "\\PC{0,120}") {
        let _ = check_syntax(&s); // errors fine, panics not
    }

    #[test]
    fn executor_never_panics_on_fuzzed_programs(
        col in "[a-c]",
        num in -100i64..100,
        op in prop::sample::select(vec!["==", "!=", "<", ">", "<=", ">="]),
        method in prop::sample::select(vec!["count()", "head(2)", "value_counts(\"k\")", "mean(\"v\")"]),
    ) {
        let program = format!(
            "show(feedback.filter(v {op} {num}).{method});\nshow(feedback.filter(k == \"{col}\").count())"
        );
        let mut session = Session::new(SessionLimits::default());
        session.bind_frame(
            "feedback",
            DataFrame::new(vec![
                Column::from_strs("k", &["a", "b", "c", "a"]),
                Column::from_i64s("v", &[1, -5, 50, 99]),
            ])
            .unwrap(),
        );
        let result = session.execute(&program);
        // Must either succeed with outputs or fail with a message — never panic.
        if result.error.is_none() {
            prop_assert_eq!(result.shown.len(), 2);
        }
    }

    #[test]
    fn arithmetic_matches_rust_semantics(a in -1000i64..1000, b in 1i64..1000) {
        let mut session = Session::new(SessionLimits::default());
        let r = session.execute(&format!("show({a} + {b}); show({a} * {b}); show({a} / {b})"));
        prop_assert!(r.error.is_none(), "{:?}", r.error);
        let vals: Vec<f64> = r
            .shown
            .iter()
            .map(|v| match v {
                allhands::query::RtValue::Scalar(s) => s.as_f64().unwrap(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        prop_assert_eq!(vals[0], (a + b) as f64);
        prop_assert_eq!(vals[1], (a * b) as f64);
        prop_assert!((vals[2] - a as f64 / b as f64).abs() < 1e-9);
    }
}
