//! Shape regression tests for the paper's headline results, run on reduced
//! corpus sizes so they stay test-suite-friendly. The full-size numbers
//! come from the `allhands-bench` binaries; these tests pin the *orderings*
//! so refactors cannot silently break the reproduction.

use allhands::classify::{standard_baselines, temporal_split, LabeledExample, TransformerStandIn};
use allhands::core::{IclClassifier, IclConfig};
use allhands::datasets::{generate_n, DatasetKind};
use allhands::eval::run_benchmark;
use allhands::llm::{ModelTier, SimLlm};

fn split(kind: DatasetKind, n: usize) -> (Vec<LabeledExample>, Vec<LabeledExample>) {
    let records = generate_n(kind, n, 42);
    let examples: Vec<LabeledExample> = records
        .iter()
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let timestamps: Vec<i64> = records.iter().map(|r| r.timestamp).collect();
    temporal_split(&examples, &timestamps, 0.7)
}

/// Table 2 shape: GPT-4 few-shot ≥ every fine-tuned baseline, few-shot >
/// zero-shot, GPT-4 > GPT-3.5 (GoogleStoreApp, reduced size).
#[test]
fn table2_orderings_hold_on_reduced_corpus() {
    let (train, test) = split(DatasetKind::GoogleStoreApp, 2_500);
    let labels = vec!["informative".to_string(), "non-informative".to_string()];

    let mut best_baseline: f64 = 0.0;
    for config in standard_baselines() {
        let model = TransformerStandIn::train(&config, &train);
        best_baseline = best_baseline.max(model.evaluate(&test));
    }

    let eval_icl = |llm: &SimLlm, shots: usize| {
        IclClassifier::fit(llm, &train, &labels, IclConfig { shots, ..Default::default() })
            .evaluate(&test)
    };
    let gpt35 = SimLlm::gpt35();
    let gpt4 = SimLlm::gpt4();
    let g35_zero = eval_icl(&gpt35, 0);
    let g35_few = eval_icl(&gpt35, 10);
    let g4_zero = eval_icl(&gpt4, 0);
    let g4_few = eval_icl(&gpt4, 10);

    assert!(g35_few > g35_zero, "few-shot must beat zero-shot: {g35_few} vs {g35_zero}");
    assert!(g4_few > g4_zero, "few-shot must beat zero-shot: {g4_few} vs {g4_zero}");
    assert!(g4_few > g35_few, "GPT-4 must beat GPT-3.5: {g4_few} vs {g35_few}");
    assert!(g4_zero > g35_zero, "GPT-4 must beat GPT-3.5: {g4_zero} vs {g35_zero}");
    assert!(
        g4_few > best_baseline - 0.03,
        "GPT-4 few-shot ({g4_few:.3}) must be competitive with the best baseline ({best_baseline:.3})"
    );
}

/// Fig 8 shape: GPT-4 outscores GPT-3.5 on all three judge dimensions.
#[test]
fn fig8_gpt4_beats_gpt35() {
    let g35 = run_benchmark(ModelTier::Gpt35, &[DatasetKind::GoogleStoreApp], 42, Some(800)).overall();
    let g4 = run_benchmark(ModelTier::Gpt4, &[DatasetKind::GoogleStoreApp], 42, Some(800)).overall();
    assert!(g4.correctness > g35.correctness, "{g4:?} vs {g35:?}");
    assert!(g4.comprehensiveness >= g35.comprehensiveness, "{g4:?} vs {g35:?}");
    assert!(g4.readability >= g35.readability, "{g4:?} vs {g35:?}");
    // GPT-4 stays above the rubric's "high standard" threshold on average.
    assert!(g4.correctness > 3.5, "{g4:?}");
}

/// Multilingual shape: on MSearch the multilingual XLM-R stand-in beats the
/// monolingual DistilBERT stand-in.
#[test]
fn msearch_multilingual_baseline_advantage() {
    let (train, test) = split(DatasetKind::MSearch, 2_500);
    let baselines = standard_baselines();
    let distil = baselines.iter().find(|b| b.name == "DistilBERT").unwrap();
    let xlmr = baselines.iter().find(|b| b.name == "XLM-RoBERTa").unwrap();
    let distil_acc = TransformerStandIn::train(distil, &train).evaluate(&test);
    let xlmr_acc = TransformerStandIn::train(xlmr, &train).evaluate(&test);
    assert!(
        xlmr_acc > distil_acc,
        "XLM-R ({xlmr_acc:.3}) must beat DistilBERT ({distil_acc:.3}) on multilingual data"
    );
}
