//! Every reference AQL program in the 90-question benchmark must parse and
//! execute against its generated dataset, producing at least one output.
//!
//! This is the contract the judges rely on: the gold answers exist.

use allhands_datasets::{dataset_frame, generate, questions_for, DatasetKind};
use allhands_query::{RtValue, Session, SessionLimits};

fn run_all(kind: DatasetKind) {
    let records = generate(kind, 42);
    let frame = dataset_frame(kind, &records);
    for q in questions_for(kind) {
        let mut session = Session::new(SessionLimits::default());
        session.bind_frame("feedback", frame.clone());
        let result = session.execute(q.reference_aql);
        assert!(
            result.error.is_none(),
            "{kind:?} q{} failed: {}\nprogram:\n{}",
            q.id,
            result.error.unwrap(),
            q.reference_aql
        );
        assert!(
            !result.shown.is_empty(),
            "{kind:?} q{} produced no output",
            q.id
        );
        // Shown values must render without panicking and non-trivially.
        for v in &result.shown {
            let rendered = v.render();
            assert!(!rendered.trim().is_empty() || matches!(v, RtValue::Scalar(_)),
                "{kind:?} q{} rendered empty {}", q.id, v.type_name());
        }
    }
}

#[test]
fn google_references_execute() {
    run_all(DatasetKind::GoogleStoreApp);
}

#[test]
fn forum_references_execute() {
    run_all(DatasetKind::ForumPost);
}

#[test]
fn msearch_references_execute() {
    run_all(DatasetKind::MSearch);
}
