//! Reproducibility contract (paper Sec. 5.1): with temperature/top_p at 0
//! and fixed seeds, every stage of AllHands is bit-for-bit deterministic.

use allhands::agent::{AgentConfig, QaAgent};
use allhands::classify::LabeledExample;
use allhands::core::{AbstractiveTopicModeler, IclClassifier, IclConfig, TopicModelingConfig};
use allhands::datasets::{dataset_frame, generate_n, DatasetKind};
use allhands::llm::{ChatOptions, SimLlm};

#[test]
fn generation_is_deterministic() {
    let a = generate_n(DatasetKind::MSearch, 200, 99);
    let b = generate_n(DatasetKind::MSearch, 200, 99);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.text, y.text);
        assert_eq!(x.label, y.label);
        assert_eq!(x.timestamp, y.timestamp);
        assert_eq!(x.gold_topics, y.gold_topics);
    }
}

#[test]
fn classification_is_deterministic_at_temperature_zero() {
    let records = generate_n(DatasetKind::GoogleStoreApp, 300, 4);
    let pool: Vec<LabeledExample> = records
        .iter()
        .take(150)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let labels = vec!["informative".to_string(), "non-informative".to_string()];
    let llm = SimLlm::gpt4();
    let a = IclClassifier::fit(&llm, &pool, &labels, IclConfig::default());
    let b = IclClassifier::fit(&llm, &pool, &labels, IclConfig::default());
    for r in records.iter().skip(150).take(80) {
        assert_eq!(a.classify(&r.text), b.classify(&r.text), "on {:?}", r.text);
    }
}

#[test]
fn temperature_increases_slip_variability() {
    // Not a determinism test per se: temperature scales the deterministic
    // slip rate, so a hot model must disagree with the cold one somewhere.
    let records = generate_n(DatasetKind::GoogleStoreApp, 400, 4);
    let pool: Vec<LabeledExample> = records
        .iter()
        .take(100)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let labels = vec!["informative".to_string(), "non-informative".to_string()];
    let llm = SimLlm::gpt35();
    let cold = IclClassifier::fit(
        &llm,
        &pool,
        &labels,
        IclConfig { chat: ChatOptions { temperature: 0.0, top_p: 0.0 }, ..Default::default() },
    );
    let hot = IclClassifier::fit(
        &llm,
        &pool,
        &labels,
        IclConfig { chat: ChatOptions { temperature: 2.5, top_p: 1.0 }, ..Default::default() },
    );
    let disagreements = records
        .iter()
        .skip(100)
        .filter(|r| cold.classify(&r.text) != hot.classify(&r.text))
        .count();
    assert!(disagreements > 0, "temperature had no effect");
}

#[test]
fn topic_modeling_is_deterministic() {
    let records = generate_n(DatasetKind::ForumPost, 150, 6);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let llm = SimLlm::gpt4();
    let seeds = vec!["crash".to_string(), "feature request".to_string()];
    let run = || {
        AbstractiveTopicModeler::new(&llm, TopicModelingConfig::default()).run(&texts, &seeds)
    };
    let a = run();
    let b = run();
    assert_eq!(a.doc_topics, b.doc_topics);
    assert_eq!(a.topic_list, b.topic_list);
    assert_eq!(a.reviewer_removed, b.reviewer_removed);
}

#[test]
fn agent_answers_are_deterministic() {
    let records = generate_n(DatasetKind::GoogleStoreApp, 400, 12);
    let frame = dataset_frame(DatasetKind::GoogleStoreApp, &records);
    let ask = |q: &str| {
        let mut agent = QaAgent::new(SimLlm::gpt4(), frame.clone(), AgentConfig::default());
        let r = agent.ask(q);
        (r.code.clone(), r.render())
    };
    for q in [
        "Which topic appears most frequently?",
        "What percentage of the tweets that mentioned 'Windows 10' were positive?",
        "Draw an issue river for top 7 topics.",
    ] {
        assert_eq!(ask(q), ask(q), "non-deterministic answer for {q:?}");
    }
}
