//! Incremental ingestion determinism: a fixed batch sequence must produce
//! byte-identical transcripts at `ALLHANDS_THREADS ∈ {1, 8}`, clean or
//! under 30% fault injection; a journaled stream killed at any ingest
//! crash point must resume byte-identically; and replayed batches must
//! restore frames, topic state, and index structure without recomputing.
//!
//! Also here: the `ingest > batch[i] > classify/assign/index` span family
//! with its deterministic counters, the from_frame rejection, and the
//! `search_similar` / `retract` facade over the incremental document index.

use allhands::core::InjectedCrash;
use allhands::datasets::{generate_n, DatasetKind};
use allhands::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The thread override and the panic hook are process-global; serialize
/// the tests in this binary.
static GLOBAL_GUARD: Mutex<()> = Mutex::new(());

const QUESTIONS: [&str; 2] = [
    "How many feedback entries are there?",
    "Which topic appears most frequently?",
];

fn corpus() -> (Vec<String>, Vec<LabeledExample>, Vec<String>) {
    let records = generate_n(DatasetKind::GoogleStoreApp, 30, 23);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(16)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let predefined = vec!["bug".to_string(), "crash".to_string()];
    (texts, labeled, predefined)
}

/// Three ingest batches: familiar store-app feedback (mixed direct
/// assignment and routing), then two themed novel batches that overflow
/// the pending pool and make the flush coin topics.
fn batches() -> Vec<Vec<String>> {
    let familiar: Vec<String> =
        generate_n(DatasetKind::GoogleStoreApp, 8, 101).iter().map(|r| r.text.clone()).collect();
    let battery: Vec<String> = [
        "battery drains overnight even when idle",
        "phone gets hot and battery dies fast since update",
        "battery usage doubled after the last version",
        "standby battery drain is terrible now",
        "charging takes forever and battery drains quickly",
        "battery drain while the app runs in background",
    ]
    .map(String::from)
    .to_vec();
    let dark_mode: Vec<String> = [
        "dark mode please my eyes hurt at night",
        "would love a dark mode option",
        "please add dark mode theme",
        "night theme dark mode when",
        "the white background burns please dark mode",
        "dark mode dark mode dark mode",
    ]
    .map(String::from)
    .to_vec();
    vec![familiar, battery, dark_mode]
}

/// Test configuration: small pending pool so the themed batches flush,
/// aggressive index staleness so auto-retraining fires inside the stream.
fn ingest_tuned(mut config: AllHandsConfig) -> AllHandsConfig {
    config.ingest.pending_threshold = 6;
    config.ingest.ivf_partition_docs = 8;
    config.ingest.ivf_staleness = 0.2;
    config
}

fn chaos_config() -> AllHandsConfig {
    ingest_tuned(AllHandsConfig {
        resilience: ResilienceConfig::chaos(7, 0.3),
        ..AllHandsConfig::default()
    })
}

/// Fresh scratch directory under the cargo-managed tmpdir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("ingest-determinism-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir");
    }
    dir
}

/// Full transcript of an analyze + ingest-stream + QA session, for
/// bit-exact comparison. Excludes `IngestReport::replayed` on purpose: a
/// resumed run replays committed batches, and everything *observable*
/// about them must still match the uninterrupted reference.
fn render_transcript(ah: &mut AllHands, frame: &DataFrame) -> String {
    let mut out = String::new();
    out.push_str(&frame.to_table_string(100));
    for (i, batch) in batches().iter().enumerate() {
        let rep = ah.ingest(batch).expect("ingest must degrade, not fail");
        out.push_str(&format!(
            "\n=== batch {i}: new={} assigned={} routed={} flushed={} coined={:?} retrained={}\n",
            rep.new_rows, rep.assigned, rep.routed_pending, rep.flushed, rep.coined, rep.retrained
        ));
        out.push_str(&rep.frame.to_table_string(100));
    }
    for q in QUESTIONS {
        let r = ah.ask(q).expect("ask failed");
        assert!(r.error.is_none(), "question {q:?} errored: {:?}", r.error);
        out.push_str("\n=== ");
        out.push_str(q);
        out.push('\n');
        out.push_str(&r.render());
        for note in &r.degradation {
            out.push_str(&format!("[degraded] {note}\n"));
        }
    }
    for d in ah.resilience().degradations() {
        out.push_str(&format!("[{}] {}\n", d.stage, d.note));
    }
    out.push_str(&format!("injected-faults: {}\n", ah.resilience().injected()));
    out
}

/// Unjournaled run; returns the transcript plus the deterministic half of
/// the observability report.
fn transcript_plain(config: AllHandsConfig) -> (String, String) {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .recorder(RecorderMode::Enabled)
        .analyze(&texts, &labeled, &predefined)
        .expect("pipeline must degrade, not fail");
    let out = render_transcript(&mut ah, &frame);
    (out, ah.run_report().deterministic_json().to_string())
}

/// Journaled run (fresh or resuming). Returns the transcript plus the
/// number of crash points passed.
fn transcript_journaled(config: AllHandsConfig, dir: &Path) -> (String, u64) {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .journal(JournalMode::Continue(dir.to_path_buf()))
        .analyze(&texts, &labeled, &predefined)
        .expect("journaled pipeline must degrade, not fail");
    let out = render_transcript(&mut ah, &frame);
    (out, ah.resilience().crash_points_passed())
}

fn with_crash(mut config: AllHandsConfig, point: u64) -> AllHandsConfig {
    config.resilience.fault = config.resilience.fault.with_crash_at(point);
    config
}

/// Run a journaled stream configured to crash, swallow the injected crash
/// (silencing the default hook's backtrace spam), and return it.
fn run_crashing(config: AllHandsConfig, dir: &Path) -> InjectedCrash {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| transcript_journaled(config, dir)));
    std::panic::set_hook(prev);
    match result {
        Ok(_) => panic!("run configured to crash completed instead"),
        Err(payload) => match payload.downcast::<InjectedCrash>() {
            Ok(crash) => *crash,
            Err(other) => panic!(
                "expected an injected crash, got another panic: {:?}",
                other.downcast_ref::<String>()
            ),
        },
    }
}

#[test]
fn ingest_stream_identical_across_thread_counts_and_chaos() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let clean = || ingest_tuned(AllHandsConfig::default());
    for (tag, config) in
        [("clean", clean as fn() -> AllHandsConfig), ("chaos", chaos_config)]
    {
        let (serial, serial_report) =
            allhands::par::with_threads(1, || transcript_plain(config()));
        if tag == "chaos" {
            assert!(
                !serial.contains("injected-faults: 0"),
                "chaos config injected nothing"
            );
        }
        // The stream must actually exercise the machinery it claims to:
        // direct assignment, pending routing, a flush that coins topics,
        // and at least one staleness-triggered auto-retrain.
        assert!(serial.contains("coined=[\"battery\"]"), "battery flush missing:\n{serial}");
        assert!(serial.contains("retrained=true"), "no auto-retrain in stream:\n{serial}");
        let (parallel, parallel_report) =
            allhands::par::with_threads(8, || transcript_plain(config()));
        assert_eq!(serial, parallel, "ingest stream diverged at threads=8 ({tag})");
        assert_eq!(
            serial_report, parallel_report,
            "deterministic report diverged at threads=8 ({tag})"
        );
    }
}

#[test]
fn rerun_replays_committed_batches_byte_identically() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let config = || ingest_tuned(AllHandsConfig::default());
    let dir = scratch_dir("replay");
    let (first, _) = transcript_journaled(config(), &dir);
    // Second run over the same journal: every stage AND every ingest batch
    // replays from committed delta records.
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config())
        .journal(JournalMode::Continue(dir.clone()))
        .recorder(RecorderMode::Enabled)
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    for batch in batches() {
        let rep = ah.ingest(&batch).unwrap();
        assert!(rep.replayed, "batch {} recomputed instead of replaying", rep.batch);
    }
    assert_eq!(ah.run_report().counter("ingest.replays"), 3);
    assert!(first.starts_with(&frame.to_table_string(100)), "replayed analyze frame diverged");
    // Release the journal lock before the next session opens the directory.
    drop(ah);
    // And a full fresh session over the same journal reproduces the entire
    // transcript byte-for-byte.
    let (replayed, _) = transcript_journaled(config(), &dir);
    assert_eq!(first, replayed, "replayed stream diverged from original");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_at_ingest_points_resumes_byte_identical() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    for threads in [1usize, 8] {
        let (reference, _) =
            allhands::par::with_threads(threads, || transcript_plain(chaos_config()));

        // Journaling an uninterrupted run must be observationally invisible
        // — and tells us how many crash points there are.
        let dir = scratch_dir(&format!("ref-t{threads}"));
        let (journaled, points) =
            allhands::par::with_threads(threads, || transcript_journaled(chaos_config(), &dir));
        assert_eq!(reference, journaled, "journaling changed output (t={threads})");
        std::fs::remove_dir_all(&dir).ok();
        // 4 stage points + 2 per batch + 2 per question.
        let expected = 4 + 2 * batches().len() as u64 + 2 * QUESTIONS.len() as u64;
        assert_eq!(points, expected, "crash point layout changed");

        // Kill at every ingest seam (points 4..4+2*batches); stage and QA
        // seams are covered by tests/crash_chaos.rs.
        for point in 4..4 + 2 * batches().len() as u64 {
            let dir = scratch_dir(&format!("p{point}-t{threads}"));
            let crash = allhands::par::with_threads(threads, || {
                run_crashing(with_crash(chaos_config(), point), &dir)
            });
            assert_eq!(crash.point, point, "crashed at the wrong point");
            assert!(
                crash.name.starts_with("ingest:"),
                "point {point} is not an ingest seam: {}",
                crash.name
            );
            let (resumed, _) = allhands::par::with_threads(threads, || {
                transcript_journaled(chaos_config(), &dir)
            });
            assert_eq!(
                reference, resumed,
                "resume diverged after crash at point {point} ({}), t={threads}",
                crash.name
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn ingest_span_family_and_counters() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (texts, labeled, predefined) = corpus();
    let (mut ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(ingest_tuned(AllHandsConfig::default()))
        .recorder(RecorderMode::Enabled)
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    let all = batches();
    let mut total = 0usize;
    for batch in &all {
        total += batch.len();
        ah.ingest(batch).unwrap();
    }
    // QA over the extended frame: the agent sees every ingested row.
    let r = ah.ask("How many feedback entries are there?").expect("ask failed");
    assert!(r.render().contains(&(texts.len() + total).to_string()), "{}", r.render());

    let report = ah.run_report();
    assert_eq!(report.counter("ingest.batches"), all.len() as u64);
    assert_eq!(report.counter("ingest.docs"), total as u64);
    assert_eq!(report.counter("ingest.indexed"), total as u64);
    assert_eq!(
        report.counter("ingest.assigned") + report.counter("ingest.routed_pending"),
        total as u64
    );
    assert!(report.counter("ingest.flushes") >= 1, "no pending flush fired");
    assert!(report.counter("ingest.coined") >= 1, "flush coined nothing");
    assert_eq!(report.counter("ingest.replays"), 0);
    let paths = report.span_paths();
    for expected in [
        "ingest",
        "ingest > batch[0]",
        "ingest > batch[0] > classify",
        "ingest > batch[0] > assign",
        "ingest > batch[0] > index",
        "ingest > batch[1] > resummarize",
        "ingest > batch[2]",
        "qa > question[0]",
    ] {
        assert!(
            paths.iter().any(|p| p == expected),
            "missing span path {expected:?} in {paths:?}"
        );
    }
}

#[test]
fn from_frame_session_rejects_ingest() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    use allhands::dataframe::{Column, DataFrame};
    let frame = DataFrame::new(vec![
        Column::from_strs("text", &["app crashes daily", "love the update"]),
        Column::from_f64s("sentiment", &[-0.8, 0.9]),
        Column::from_str_lists("topics", vec![vec!["crash".into()], vec!["praise".into()]]),
    ])
    .unwrap();
    let mut ah = AllHands::from_frame(ModelTier::Gpt4, frame, AllHandsConfig::default());
    let err = ah.ingest(&["new feedback".to_string()]).unwrap_err();
    assert!(err.to_string().contains("from_frame"), "unexpected error: {err}");
    assert!(ah.search_similar("anything", 3).is_err());
    assert!(ah.retract(0).is_err());
}

#[test]
fn search_similar_and_retract_round_trip() {
    let _g = GLOBAL_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (texts, labeled, predefined) = corpus();
    let (mut ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(ingest_tuned(AllHandsConfig::default()))
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    for batch in batches() {
        ah.ingest(&batch).unwrap();
    }
    let hits = ah.search_similar("battery drains fast", 5).unwrap();
    assert!(!hits.is_empty());
    // The battery batch occupies rows 38..44; its docs must dominate the
    // top of the result list.
    let battery_rows = 38u64..44;
    assert!(
        battery_rows.contains(&hits[0].0),
        "top hit {:?} is not a battery row",
        hits[0]
    );
    let (top, _score) = hits[0];
    assert!(ah.retract(top).unwrap(), "retract of a present row returned false");
    assert!(!ah.retract(top).unwrap(), "second retract of the same row returned true");
    let after = ah.search_similar("battery drains fast", 5).unwrap();
    assert!(
        after.iter().all(|(id, _)| *id != top),
        "retracted row {top} still surfaces: {after:?}"
    );
}
