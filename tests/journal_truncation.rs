//! Property: truncating a valid journal at *every* byte offset of the
//! final record and reopening always recovers exactly the durable prefix
//! — the acknowledged entries survive bit-for-bit, the torn record is
//! dropped and reported, and the journal stays appendable afterwards.
//! Generalizes the torn-tail unit tests in `crates/journal`.

use allhands::journal::{decode, Journal};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("journal-truncation-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir");
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn truncation_at_every_offset_recovers_exactly_the_durable_prefix(
        payloads in proptest::collection::vec("[a-z ]{0,24}", 2..6)
    ) {
        let base = scratch_dir("base");
        let mut j = Journal::open(&base).unwrap();
        for (i, p) in payloads.iter().enumerate() {
            j.append("t", &format!("k{i}"), p).unwrap();
        }
        drop(j);
        let wal = std::fs::read(base.join("allhands.journal")).unwrap();
        // The final record spans from just past the second-to-last newline
        // to the end of the file.
        let last_start =
            wal[..wal.len() - 1].iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        let durable = payloads.len() - 1;
        for cut in last_start..wal.len() {
            let dir = scratch_dir("cut");
            std::fs::write(dir.join("allhands.journal"), &wal[..cut]).unwrap();
            let mut j = Journal::open(&dir).unwrap();
            prop_assert_eq!(
                j.len(),
                durable,
                "cut at byte {} recovered the wrong prefix",
                cut
            );
            for (i, p) in payloads[..durable].iter().enumerate() {
                let e = &j.entries()[i];
                prop_assert_eq!(e.seq, i as u64);
                prop_assert_eq!(e.stage.as_str(), "t");
                prop_assert_eq!(e.key.as_str(), format!("k{i}").as_str());
                prop_assert_eq!(&decode::<String>(&e.payload).unwrap(), p);
            }
            // A partial final line is torn-tail damage; a cut exactly at
            // the record boundary is a clean (shorter) journal.
            prop_assert_eq!(j.recovered_torn_tail(), cut > last_start);
            // The reconciled journal re-extends the verified chain.
            j.append("t", "fresh", &"after recovery".to_string()).unwrap();
            prop_assert_eq!(j.entries().last().unwrap().seq, durable as u64);
            drop(j);
            std::fs::remove_dir_all(&dir).ok();
        }
        // No truncation: every entry is durable.
        let j = Journal::open(&base).unwrap();
        prop_assert_eq!(j.len(), payloads.len());
        prop_assert!(!j.recovered_torn_tail());
        drop(j);
        std::fs::remove_dir_all(&base).ok();
    }
}
