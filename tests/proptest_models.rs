//! Property-based invariants on the learning substrates: topic models,
//! clustering, embeddings, and the vector database.

use allhands::embed::{EmbedderConfig, Embedding, SentenceEmbedder};
use allhands::topics::corpus::Corpus;
use allhands::topics::lda::{fit_lda, LdaConfig};
use allhands::topics::{agglomerative_clusters, Linkage};
use allhands::vectordb::{kmeans, FlatIndex, IvfIndex, Record, VectorIndex};
use proptest::prelude::*;

fn arb_texts() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec("[a-h]{2,5}", 1..8).prop_map(|ws| ws.join(" ")),
        4..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lda_conserves_token_mass(texts in arb_texts(), k in 2usize..6) {
        let corpus = Corpus::build(&texts, 1, 1.0);
        let total: usize = corpus.docs.iter().map(Vec::len).sum();
        let model = fit_lda(&corpus, &LdaConfig { k, iterations: 5, ..Default::default() });
        prop_assert_eq!(model.total_tokens() as usize, total);
        // Posterior is a distribution for every doc.
        for d in 0..corpus.n_docs() {
            let dist = model.doc_distribution(d);
            prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(dist.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn lda_output_indices_in_range(texts in arb_texts()) {
        let corpus = Corpus::build(&texts, 1, 1.0);
        let model = fit_lda(&corpus, &LdaConfig { k: 3, iterations: 5, ..Default::default() });
        let out = model.output(&corpus, 5);
        prop_assert_eq!(out.doc_topic.len(), corpus.n_docs());
        for t in out.doc_topic.iter().flatten() {
            prop_assert!(*t < out.n_topics());
        }
        for (conf, topic) in out.doc_confidence.iter().zip(&out.doc_topic) {
            prop_assert!((0.0..=1.0).contains(conf));
            if topic.is_none() {
                prop_assert_eq!(*conf, 0.0);
            }
        }
    }

    #[test]
    fn kmeans_assignments_valid(points in proptest::collection::vec(
        (0.0f32..10.0, 0.0f32..10.0), 3..40,
    ), k in 1usize..5) {
        let embeddings: Vec<Embedding> = points
            .iter()
            .map(|&(x, y)| Embedding::new(vec![x, y]))
            .collect();
        let refs: Vec<&Embedding> = embeddings.iter().collect();
        let result = kmeans(&refs, k, 10, 3);
        prop_assert_eq!(result.assignments.len(), points.len());
        for &a in &result.assignments {
            prop_assert!(a < result.centroids.len());
        }
        prop_assert!(result.inertia >= 0.0);
    }

    #[test]
    fn hac_partitions_all_points(points in proptest::collection::vec(
        (-1.0f32..1.0, -1.0f32..1.0), 0..25,
    ), threshold in 0.0f32..1.5) {
        let embeddings: Vec<Embedding> = points
            .iter()
            .map(|&(x, y)| Embedding::new(vec![x, y]))
            .collect();
        let assignment = agglomerative_clusters(&embeddings, Linkage::Average, threshold);
        prop_assert_eq!(assignment.len(), embeddings.len());
        if !assignment.is_empty() {
            let max = *assignment.iter().max().unwrap();
            // Cluster ids are dense 0..=max.
            for c in 0..=max {
                prop_assert!(assignment.contains(&c), "missing cluster id {c}");
            }
        }
    }

    #[test]
    fn embeddings_unit_or_zero(text in "\\PC{0,80}") {
        let e = SentenceEmbedder::new(EmbedderConfig::default());
        let v = e.embed(&text);
        let n = v.norm();
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4, "norm {n}");
        // Cosine with itself is 1 (or 0 for the zero vector).
        let c = v.cosine(&v);
        prop_assert!(c == 0.0 || (c - 1.0).abs() < 1e-4);
    }

    #[test]
    fn flat_index_search_sorted_and_bounded(
        vecs in proptest::collection::vec(
            proptest::collection::vec(-1.0f32..1.0, 4), 1..40,
        ),
        k in 1usize..10,
    ) {
        let mut index = FlatIndex::new(4);
        for (i, v) in vecs.iter().enumerate() {
            index.insert(Record::new(i as u64, Embedding::new(v.clone())));
        }
        let query = Embedding::new(vecs[0].clone());
        let hits = index.search(&query, k);
        prop_assert!(hits.len() <= k.min(vecs.len()));
        for pair in hits.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score);
        }
        for h in &hits {
            prop_assert!((-1.0..=1.0).contains(&h.score));
        }
    }

    #[test]
    fn ivf_recall_never_empty_after_training(
        n in 20usize..120,
        nprobe in 1usize..6,
    ) {
        let mut index = IvfIndex::new(3, nprobe);
        for i in 0..n as u64 {
            let x = (i as f32 * 0.37).sin();
            let y = (i as f32 * 0.17).cos();
            let mut v = Embedding::new(vec![x, y, 0.5]);
            v.normalize();
            index.insert(Record::new(i, v));
        }
        index.train(8);
        prop_assert_eq!(index.len(), n);
        let mut q = Embedding::new(vec![0.3, 0.4, 0.5]);
        q.normalize();
        let hits = index.search(&q, 5);
        prop_assert!(!hits.is_empty());
    }
}
