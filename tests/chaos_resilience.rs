//! Chaos harness: the full pipeline under seeded fault injection.
//!
//! The resilience layer's contract, exercised end to end:
//! - at a 30% fault rate the whole pipeline (classification → topic
//!   modeling → QA) completes without panicking;
//! - the same seed produces bit-identical results, degradations included;
//! - every degraded answer carries an explicit note;
//! - with injection disabled the pipeline output is identical to a run
//!   with no resilience configuration at all.

use allhands::datasets::{generate_n, DatasetKind};
use allhands::prelude::*;
use allhands::resilience::{FaultInjector, FaultKind, FaultPlan, Head};

const QUESTIONS: [&str; 5] = [
    "How many feedback entries are there?",
    "What is the average sentiment score across all tweets?",
    "Which topic appears most frequently?",
    "What topic has the most negative sentiment score on average?",
    "Based on the feedback, what action can be done to improve the product?",
];

fn corpus() -> (Vec<String>, Vec<LabeledExample>, Vec<String>) {
    let records = generate_n(DatasetKind::GoogleStoreApp, 120, 11);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(60)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let predefined =
        vec!["bug".to_string(), "crash".to_string(), "feature request".to_string()];
    (texts, labeled, predefined)
}

/// Run the whole pipeline + the 5 QA questions; return a full transcript
/// (frame dump, rendered answers, degradation notes) for bit-exact
/// comparison.
fn transcript(config: AllHandsConfig) -> String {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .analyze(&texts, &labeled, &predefined)
        .expect("pipeline must degrade, not fail");
    let mut out = String::new();
    out.push_str(&frame.to_table_string(200));
    for q in QUESTIONS {
        let r = ah.ask(q).expect("ask failed");
        assert!(r.error.is_none(), "question {q:?} errored: {:?}", r.error);
        // Every degraded answer is explicit about it.
        if !r.degradation.is_empty() {
            assert!(
                r.text_content().contains("Partial answer"),
                "degraded answer lacks note: {}",
                r.text_content()
            );
        }
        out.push_str("\n=== ");
        out.push_str(q);
        out.push('\n');
        out.push_str(&r.render());
        for note in &r.degradation {
            out.push_str(&format!("[degraded] {note}\n"));
        }
    }
    for d in ah.resilience().degradations() {
        out.push_str(&format!("[{}] {}\n", d.stage, d.note));
    }
    out
}

fn chaos_config(seed: u64, rate: f64) -> AllHandsConfig {
    AllHandsConfig {
        resilience: ResilienceConfig::chaos(seed, rate),
        ..AllHandsConfig::default()
    }
}

#[test]
fn chaos_run_completes_and_is_deterministic() {
    let a = transcript(chaos_config(42, 0.30));
    let b = transcript(chaos_config(42, 0.30));
    assert_eq!(a, b, "same seed must give a bit-identical chaos run");
}

#[test]
fn different_seeds_inject_different_faults() {
    let (texts, labeled, predefined) = corpus();
    let stats = |seed| {
        let (ah, _) = AllHands::builder(ModelTier::Gpt4)
            .config(chaos_config(seed, 0.30))
            .analyze(&texts, &labeled, &predefined)
            .expect("pipeline must degrade, not fail");
        (ah.resilience().injected(), ah.resilience().stats())
    };
    let (injected_a, stats_a) = stats(1);
    let (injected_b, _) = stats(2);
    assert!(injected_a > 0, "30% rate must inject over a 120-doc pipeline");
    assert!(stats_a.retries > 0, "transient faults must be retried");
    // Same call volume, different schedule.
    assert_ne!(injected_a, injected_b, "seeds 1 and 2 coincided exactly (astronomically unlikely)");
}

#[test]
fn retries_stay_within_budget() {
    let (texts, labeled, predefined) = corpus();
    let config = chaos_config(7, 0.30);
    let max_attempts = config.resilience.retry.max_attempts as u64;
    let (ah, _) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .analyze(&texts, &labeled, &predefined)
        .expect("pipeline must degrade, not fail");
    let stats = ah.resilience().stats();
    // Per-operation attempts are bounded by the retry budget, so in
    // aggregate: attempts ≤ operations × max_attempts, i.e. retries can
    // never exceed (max_attempts − 1) × the number of first attempts.
    let operations = stats.attempts - stats.retries;
    assert!(
        stats.retries <= operations * (max_attempts - 1),
        "retries {} exceed budget for {} operations",
        stats.retries,
        operations
    );
    assert!(stats.total_backoff_ms > 0, "recorded backoff must accompany retries");
}

#[test]
fn disabled_injection_is_identical_to_baseline() {
    // A config with rates armed but the master switch off must match the
    // default (no resilience configured at all) byte for byte.
    let mut armed_but_off = chaos_config(42, 0.30);
    armed_but_off.resilience.enabled = false;
    let baseline = transcript(AllHandsConfig::default());
    let disabled = transcript(armed_but_off);
    assert_eq!(baseline, disabled);
    // And a clean run records no degradations at all.
    assert!(!baseline.contains("[degraded]"));
    assert!(!baseline.contains("Partial answer"));
}

#[test]
fn fault_injector_wrapper_covers_all_kinds_deterministically() {
    use allhands::llm::{ChatOptions, LanguageModel, Prompt, PromptTask, SimLlm};
    let plan = FaultPlan::uniform(5, 0.5);
    let run = || {
        let llm = FaultInjector::new(SimLlm::gpt4(), plan);
        let mut outcomes = Vec::new();
        for i in 0..200 {
            let prompt = Prompt::new(
                match i % 3 {
                    0 => PromptTask::Classify,
                    1 => PromptTask::Summarize,
                    _ => PromptTask::GenerateCode,
                },
                "Do the task.",
                &format!("input text {i}"),
            );
            outcomes.push(match llm.complete(&prompt, &ChatOptions::default()) {
                Ok(s) => format!("ok:{s}"),
                Err(e) => {
                    assert!(e.retryable(), "injected faults must be transient: {e}");
                    format!("err:{e}")
                }
            });
        }
        (outcomes, llm.injections())
    };
    let (outcomes_a, injections_a) = run();
    let (outcomes_b, injections_b) = run();
    assert_eq!(outcomes_a, outcomes_b, "wrapper must be seed-deterministic");
    assert_eq!(injections_a, injections_b);
    // All five fault kinds and all three heads appear in 200 calls at 50%.
    for kind in FaultKind::ALL {
        assert!(injections_a.iter().any(|ev| ev.kind == kind), "kind {kind:?} never fired");
    }
    for head in Head::ALL {
        assert!(injections_a.iter().any(|ev| ev.head == head), "head {head:?} never hit");
    }
}
