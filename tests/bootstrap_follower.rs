//! Follower bootstrap: checkpoint + WAL-suffix handoff between sessions.
//!
//! The contracts under test:
//!
//! - A follower built from `export_bootstrap()` via
//!   `builder(..).journal(..).bootstrap(bundle)` comes up holding the
//!   leader's exact state: same frame, byte-identical answers, and —
//!   because both sides then append from the same chain tip — journal
//!   directories that stay byte-for-byte identical, at 1 and 8 threads.
//! - A bundle exported from a leader that ran under injected storage
//!   faults installs cleanly and replays to exactly what recovering the
//!   leader's own directory yields.
//! - Faults during install are typed errors, never panics; the failed
//!   directory still reopens cleanly, and a retry into a fresh
//!   directory succeeds.
//! - Guard rails: bootstrap without a journal mode, into a non-empty
//!   journal, or with mismatched run inputs all fail typed.

use allhands::datasets::{generate_n, DatasetKind};
use allhands::journal::vfs::{FaultVfs, IoFaultKind, IoFaultPlan, Vfs};
use allhands::journal::Journal;
use allhands::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The thread override is process-global; serialize the tests that use it.
static GLOBAL_GUARD: Mutex<()> = Mutex::new(());

const QUESTIONS: [&str; 2] = [
    "How many feedback entries are there?",
    "Which topic appears most frequently?",
];

fn corpus() -> (Vec<String>, Vec<LabeledExample>, Vec<String>) {
    let records = generate_n(DatasetKind::GoogleStoreApp, 16, 23);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(10)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    (texts, labeled, vec!["bug".to_string(), "crash".to_string()])
}

fn batches() -> Vec<Vec<String>> {
    let b1: Vec<String> = generate_n(DatasetKind::GoogleStoreApp, 5, 101)
        .iter()
        .map(|r| r.text.clone())
        .collect();
    let b2: Vec<String> = [
        "battery drains overnight even when idle",
        "phone gets hot and battery dies fast since update",
        "battery usage doubled after the last version",
        "standby battery drain is terrible now",
    ]
    .map(String::from)
    .to_vec();
    let b3: Vec<String> = [
        "dark mode please my eyes hurt at night",
        "would love a dark mode option",
        "please add dark mode theme",
    ]
    .map(String::from)
    .to_vec();
    vec![b1, b2, b3]
}

fn config(every: usize, keep: usize) -> AllHandsConfig {
    let mut config = AllHandsConfig::default();
    config.ingest.pending_threshold = 6;
    config.ingest.ivf_partition_docs = 8;
    config.checkpoint = CheckpointPolicy { every_n_batches: every, keep_last_k: keep };
    config
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("bootstrap-follower-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir");
    }
    dir
}

/// Journaled leader: analyze + the full batch stream. Returns the session
/// and its final frame.
fn leader(dir: &Path, config: AllHandsConfig, vfs: Option<Arc<dyn Vfs>>) -> (AllHands, DataFrame) {
    let (texts, labeled, predefined) = corpus();
    let mut builder = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .journal(JournalMode::Continue(dir.to_path_buf()));
    if let Some(vfs) = vfs {
        builder = builder.vfs(vfs);
    }
    let (mut ah, mut frame) =
        builder.analyze(&texts, &labeled, &predefined).expect("leader run failed");
    for batch in batches() {
        match ah.ingest(&batch) {
            Ok(rep) => frame = rep.frame,
            Err(e) => panic!("leader ingest must degrade, not fail: {e}"),
        }
    }
    (ah, frame)
}

/// Ask both questions and render the answers.
fn qa_transcript(ah: &mut AllHands) -> String {
    let mut out = String::new();
    for q in QUESTIONS {
        let r = ah.ask(q).expect("ask failed");
        assert!(r.error.is_none(), "{q:?} errored: {:?}", r.error);
        out.push_str("\n=== ");
        out.push_str(q);
        out.push('\n');
        out.push_str(&r.render());
    }
    out
}

/// Every file in a journal dir except the transient LOCK, name → bytes.
fn dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().is_some_and(|n| n != "LOCK"))
        .map(|p| {
            (p.file_name().unwrap().to_string_lossy().into_owned(), std::fs::read(&p).unwrap())
        })
        .collect();
    out.sort();
    out
}

/// The leader → export → follower → both-answer round trip, returning the
/// (identical) QA transcript for cross-thread-count comparison.
fn roundtrip(tag: &str) -> String {
    let leader_dir = scratch_dir(&format!("{tag}-leader"));
    let follower_dir = scratch_dir(&format!("{tag}-follower"));
    // every=1/keep=1 compacts behind each batch, so the leader's WAL is
    // exactly the bundle's WAL suffix and the directories can be compared
    // byte-for-byte.
    let (ldr, live_frame) = leader(&leader_dir, config(1, 1), None);
    let bundle = ldr.export_bootstrap().expect("leader export failed");
    assert!(bundle.checkpoint.is_some(), "compacted leader must ship a checkpoint");
    drop(ldr);

    // Restart the leader from its own directory (the durable state a
    // follower can legitimately be compared against byte-for-byte: a live
    // session's resilience counters include seams a replay never passes).
    let (texts, labeled, predefined) = corpus();
    let (mut ldr, rec_frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config(1, 1))
        .journal(JournalMode::Continue(leader_dir.clone()))
        .recover_latest()
        .analyze(&texts, &labeled, &predefined)
        .expect("leader restart failed");
    assert_eq!(
        rec_frame.to_table_string(200),
        live_frame.to_table_string(200),
        "restarted leader diverged from its live state"
    );

    let (mut flw, fframe) = AllHands::builder(ModelTier::Gpt4)
        .config(config(1, 1))
        .journal(JournalMode::Continue(follower_dir.clone()))
        .bootstrap(bundle)
        .analyze(&texts, &labeled, &predefined)
        .expect("follower bootstrap failed");

    // The follower holds the leader's exact state...
    assert_eq!(
        fframe.to_table_string(200),
        live_frame.to_table_string(200),
        "follower frame diverged from leader"
    );
    // ...including the run fingerprint both journals agree on.
    let lfp = &ldr.journal().unwrap().checkpoints().last().unwrap().fingerprint;
    let ffp = &flw.journal().unwrap().checkpoints().last().unwrap().fingerprint;
    assert_eq!(lfp, ffp, "follower fingerprint diverged from leader");

    // Both sides answer from the same chain tip: answers byte-identical,
    // journal directories byte-identical afterwards.
    let lqa = qa_transcript(&mut ldr);
    let fqa = qa_transcript(&mut flw);
    assert_eq!(lqa, fqa, "follower answers diverged from leader");
    drop(ldr);
    drop(flw);
    assert_eq!(
        dir_bytes(&leader_dir),
        dir_bytes(&follower_dir),
        "journal directories diverged after identical appends"
    );
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
    lqa
}

#[test]
fn follower_replays_leader_state_byte_identically_at_1_and_8_threads() {
    let _guard = GLOBAL_GUARD.lock().unwrap();
    let t1 = allhands::par::with_threads(1, || roundtrip("clean-t1"));
    let t8 = allhands::par::with_threads(8, || roundtrip("clean-t8"));
    assert_eq!(t1, t8, "bootstrap round trip must not depend on thread count");
}

#[test]
fn bundle_exported_under_leader_faults_matches_leader_recovery() {
    // Probe the clean leader prefix (open + analyze + batch 0) so the
    // fault lands deterministically on batch 1's append fsync.
    let probe_dir = scratch_dir("faulted-probe");
    let probe = Arc::new(FaultVfs::new(IoFaultPlan::none()));
    {
        let (texts, labeled, predefined) = corpus();
        let (mut ah, _f) = AllHands::builder(ModelTier::Gpt4)
            .config(config(2, 2))
            .journal(JournalMode::Continue(probe_dir.clone()))
            .vfs(Arc::clone(&probe) as Arc<dyn Vfs>)
            .analyze(&texts, &labeled, &predefined)
            .unwrap();
        ah.ingest(&batches()[0]).unwrap();
    }
    let prefix_ops = probe.ops();
    std::fs::remove_dir_all(&probe_dir).ok();

    // Leader runs its whole stream with batch 1's append fsync failing:
    // that batch is applied in memory but never acknowledged as durable
    // (degradation note), later batches land normally.
    let leader_dir = scratch_dir("faulted-leader");
    let fault =
        Arc::new(FaultVfs::new(IoFaultPlan::at(prefix_ops + 2, IoFaultKind::FsyncFail)));
    let (ldr, _lframe) = leader(&leader_dir, config(2, 2), Some(Arc::clone(&fault) as _));
    assert_eq!(fault.injected().len(), 1, "the scheduled fsync fault must fire");
    assert!(
        ldr.resilience().degradations().iter().any(|d| d.note.contains("not crash-safe")),
        "the lost batch must be noted"
    );
    let bundle = ldr.export_bootstrap().expect("faulted leader must still export");
    drop(ldr);

    let (texts, labeled, predefined) = corpus();
    // Reference: recover the leader's own directory to its durable state.
    let (mut rec_ah, rec_frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config(2, 2))
        .journal(JournalMode::Continue(leader_dir.clone()))
        .recover_latest()
        .analyze(&texts, &labeled, &predefined)
        .expect("leader-dir recovery failed");
    // Follower: install the bundle into a fresh directory.
    let follower_dir = scratch_dir("faulted-follower");
    let (mut flw, fframe) = AllHands::builder(ModelTier::Gpt4)
        .config(config(2, 2))
        .journal(JournalMode::Continue(follower_dir.clone()))
        .bootstrap(bundle)
        .analyze(&texts, &labeled, &predefined)
        .expect("follower bootstrap from faulted-leader bundle failed");

    assert_eq!(
        fframe.to_table_string(200),
        rec_frame.to_table_string(200),
        "follower state diverged from the leader's durable (recovered) state"
    );
    assert_eq!(
        qa_transcript(&mut flw),
        qa_transcript(&mut rec_ah),
        "follower answers diverged from the recovered leader"
    );
    drop(rec_ah);
    drop(flw);
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

#[test]
fn install_faults_are_typed_and_a_fresh_retry_succeeds() {
    // Leader once; expected follower state once.
    let leader_dir = scratch_dir("install-leader");
    let (ldr, lframe) = leader(&leader_dir, config(1, 1), None);
    let bundle = ldr.export_bootstrap().unwrap();
    drop(ldr);
    std::fs::remove_dir_all(&leader_dir).ok();
    let expected = lframe.to_table_string(200);
    let (texts, labeled, predefined) = corpus();

    // Probe the clean install's op count.
    let probe_dir = scratch_dir("install-probe");
    let probe = Arc::new(FaultVfs::new(IoFaultPlan::none()));
    drop(
        AllHands::builder(ModelTier::Gpt4)
            .config(config(1, 1))
            .journal(JournalMode::Continue(probe_dir.clone()))
            .vfs(Arc::clone(&probe) as Arc<dyn Vfs>)
            .bootstrap(bundle.clone())
            .analyze(&texts, &labeled, &predefined)
            .expect("clean install probe failed"),
    );
    let total_ops = probe.ops();
    std::fs::remove_dir_all(&probe_dir).ok();
    assert!(total_ops > 5, "implausibly few install ops ({total_ops})");

    for op in 0..total_ops {
        let kind = IoFaultKind::ALL[op as usize % IoFaultKind::ALL.len()];
        let tag = format!("install-{op}-{}", kind.label());
        let dir = scratch_dir(&tag);
        let fault = Arc::new(FaultVfs::new(IoFaultPlan::at(op, kind)));
        let attempt = AllHands::builder(ModelTier::Gpt4)
            .config(config(1, 1))
            .journal(JournalMode::Continue(dir.clone()))
            .vfs(Arc::clone(&fault) as Arc<dyn Vfs>)
            .bootstrap(bundle.clone())
            .analyze(&texts, &labeled, &predefined);
        match attempt {
            Ok((_ah, frame)) => {
                // Fault was absorbed (or hit a best-effort seam): the
                // follower must still hold the exact leader state.
                assert_eq!(frame.to_table_string(200), expected, "{tag}: degraded install diverged");
            }
            Err(_typed) => {
                // Typed refusal. The partially-written directory must
                // still reopen cleanly (no corruption)...
                drop(_ah_guard(&dir, &tag));
                // ...and retrying into a fresh directory succeeds.
                let retry_dir = scratch_dir(&format!("{tag}-retry"));
                let (_ah, frame) = AllHands::builder(ModelTier::Gpt4)
                    .config(config(1, 1))
                    .journal(JournalMode::Continue(retry_dir.clone()))
                    .bootstrap(bundle.clone())
                    .analyze(&texts, &labeled, &predefined)
                    .unwrap_or_else(|e| panic!("{tag}: fresh retry failed: {e}"));
                assert_eq!(frame.to_table_string(200), expected, "{tag}: retry diverged");
                std::fs::remove_dir_all(&retry_dir).ok();
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Reopen a directory a faulted install left behind, asserting it parses.
fn _ah_guard(dir: &Path, tag: &str) -> Journal {
    Journal::open(dir).unwrap_or_else(|e| panic!("{tag}: dir corrupted by failed install: {e}"))
}

#[test]
fn bootstrap_guard_rails() {
    let leader_dir = scratch_dir("guard-leader");
    let (ldr, _f) = leader(&leader_dir, config(1, 1), None);
    let bundle = ldr.export_bootstrap().unwrap();
    drop(ldr);
    let (texts, labeled, predefined) = corpus();

    // No journal mode attached: typed refusal.
    let e = AllHands::builder(ModelTier::Gpt4)
        .config(config(1, 1))
        .bootstrap(bundle.clone())
        .analyze(&texts, &labeled, &predefined)
        .map(|_| ())
        .expect_err("bootstrap without a journal must fail");
    assert!(e.to_string().contains("bootstrap requires a journal"), "got: {e}");

    // Non-empty target journal: typed refusal.
    let e = AllHands::builder(ModelTier::Gpt4)
        .config(config(1, 1))
        .journal(JournalMode::Continue(leader_dir.clone()))
        .bootstrap(bundle.clone())
        .analyze(&texts, &labeled, &predefined)
        .map(|_| ())
        .expect_err("bootstrap into a non-empty journal must fail");
    assert!(e.to_string().contains("empty"), "got: {e}");

    // Mismatched run inputs: the installed fingerprint wins, typed refusal.
    let follower_dir = scratch_dir("guard-mismatch");
    let other: Vec<String> = vec!["totally different corpus".to_string()];
    let e = AllHands::builder(ModelTier::Gpt4)
        .config(config(1, 1))
        .journal(JournalMode::Continue(follower_dir.clone()))
        .bootstrap(bundle)
        .analyze(&other, &labeled, &predefined)
        .map(|_| ())
        .expect_err("mismatched inputs must fail the fingerprint check");
    assert!(e.to_string().contains("different run"), "got: {e}");

    // An unjournaled session cannot export.
    let (ah, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config(0, 1))
        .analyze(&texts, &labeled, &predefined)
        .unwrap();
    let e = ah.export_bootstrap().expect_err("unjournaled export must fail");
    assert!(e.to_string().contains("journaled session"), "got: {e}");

    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}
