//! Determinism across thread counts: the parallel execution layer must be
//! observationally invisible. The full pipeline (classification → topic
//! modeling → QA) plus rendered answers are compared byte-for-byte between
//! a serial run (`ALLHANDS_THREADS=1` equivalent) and multi-threaded runs —
//! on a clean configuration AND under seeded fault injection, where the
//! resilience context makes fault decisions a pure function of call order.

use allhands::datasets::{generate_n, DatasetKind};
use allhands::prelude::*;
use std::sync::Mutex;

/// The thread override is process-global; serialize the tests in this
/// binary so their overrides don't interleave. (Interleaving could not
/// change any result — that is the point of the determinism contract — but
/// it would make a failure impossible to attribute.)
static OVERRIDE_GUARD: Mutex<()> = Mutex::new(());

const QUESTIONS: [&str; 3] = [
    "How many feedback entries are there?",
    "Which topic appears most frequently?",
    "What topic has the most negative sentiment score on average?",
];

fn corpus() -> (Vec<String>, Vec<LabeledExample>, Vec<String>) {
    let records = generate_n(DatasetKind::GoogleStoreApp, 80, 17);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(40)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    let predefined =
        vec!["bug".to_string(), "crash".to_string(), "feature request".to_string()];
    (texts, labeled, predefined)
}

/// Full pipeline + QA transcript for bit-exact comparison.
fn transcript(config: AllHandsConfig) -> String {
    let (texts, labeled, predefined) = corpus();
    let (mut ah, frame) = AllHands::builder(ModelTier::Gpt4)
        .config(config)
        .analyze(&texts, &labeled, &predefined)
        .expect("pipeline must degrade, not fail");
    let mut out = String::new();
    out.push_str(&frame.to_table_string(200));
    for q in QUESTIONS {
        let r = ah.ask(q).expect("ask failed");
        assert!(r.error.is_none(), "question {q:?} errored: {:?}", r.error);
        out.push_str("\n=== ");
        out.push_str(q);
        out.push('\n');
        out.push_str(&r.render());
        for note in &r.degradation {
            out.push_str(&format!("[degraded] {note}\n"));
        }
    }
    for d in ah.resilience().degradations() {
        out.push_str(&format!("[{}] {}\n", d.stage, d.note));
    }
    out.push_str(&format!("injected-faults: {}\n", ah.resilience().injected()));
    out
}

#[test]
fn pipeline_identical_across_thread_counts() {
    let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let serial = allhands::par::with_threads(1, || transcript(AllHandsConfig::default()));
    assert!(!serial.is_empty());
    for threads in [2usize, 8] {
        let parallel =
            allhands::par::with_threads(threads, || transcript(AllHandsConfig::default()));
        assert_eq!(serial, parallel, "clean pipeline diverged at threads={threads}");
    }
}

#[test]
fn chaos_pipeline_identical_across_thread_counts() {
    let _g = OVERRIDE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let config = || AllHandsConfig {
        resilience: ResilienceConfig::chaos(7, 0.3),
        ..AllHandsConfig::default()
    };
    let serial = allhands::par::with_threads(1, || transcript(config()));
    // The chaos seed must actually bite for the comparison to mean much.
    assert!(!serial.contains("injected-faults: 0"), "chaos config injected nothing");
    for threads in [2usize, 8] {
        let parallel = allhands::par::with_threads(threads, || transcript(config()));
        assert_eq!(serial, parallel, "chaos pipeline diverged at threads={threads}");
    }
}
