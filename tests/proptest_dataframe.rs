//! Property-based tests for the dataframe engine's core invariants.

use allhands::dataframe::{
    AggKind, Aggregation, Column, ColumnData, DType, DataFrame, JoinKind, Value,
};
use proptest::prelude::*;

fn small_string() -> impl Strategy<Value = String> {
    "[a-z]{0,8}"
}

/// A frame of n rows with a categorical key and a float value.
fn arb_frame() -> impl Strategy<Value = DataFrame> {
    (1usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec("[a-d]", n),
            proptest::collection::vec(-100.0f64..100.0, n),
        )
            .prop_map(|(keys, vals)| {
                DataFrame::new(vec![
                    Column::from_strings("k", keys),
                    Column::from_f64s("v", &vals),
                ])
                .unwrap()
            })
    })
}

proptest! {
    #[test]
    fn sort_is_an_ordered_permutation(df in arb_frame()) {
        let sorted = df.sort_by("v", true).unwrap();
        prop_assert_eq!(sorted.n_rows(), df.n_rows());
        // Ordered.
        let col = sorted.column("v").unwrap();
        for i in 1..sorted.n_rows() {
            let prev = col.get(i - 1).as_f64().unwrap();
            let cur = col.get(i).as_f64().unwrap();
            prop_assert!(prev <= cur);
        }
        // Permutation: multiset of values preserved (sum is a cheap proxy
        // plus exact sorted-list equality).
        let mut before: Vec<f64> = df.column("v").unwrap().f64_iter().flatten().collect();
        let mut after: Vec<f64> = col.f64_iter().flatten().collect();
        before.sort_by(f64::total_cmp);
        after.sort_by(f64::total_cmp);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn filter_produces_subset(df in arb_frame()) {
        let filtered = df.filter_eq("k", &Value::str("a")).unwrap();
        prop_assert!(filtered.n_rows() <= df.n_rows());
        let col = filtered.column("k").unwrap();
        for i in 0..filtered.n_rows() {
            prop_assert_eq!(col.get(i), Value::str("a"));
        }
        // Complement partitions the frame.
        let complement = df.filter_by(|i| !df.column("k").unwrap().get(i).loose_eq(&Value::str("a")));
        prop_assert_eq!(filtered.n_rows() + complement.n_rows(), df.n_rows());
    }

    #[test]
    fn group_by_counts_partition_rows(df in arb_frame()) {
        let g = df
            .group_by(&["k"], &[Aggregation::new("k", AggKind::Count)])
            .unwrap();
        let total: f64 = g.column("count").unwrap().sum();
        prop_assert_eq!(total as usize, df.n_rows());
        // Distinct keys.
        let keys = g.column("k").unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..g.n_rows() {
            prop_assert!(seen.insert(keys.get(i).to_string()), "duplicate group key");
        }
    }

    #[test]
    fn group_mean_within_value_bounds(df in arb_frame()) {
        let g = df
            .group_by(&["k"], &[Aggregation::new("v", AggKind::Mean)])
            .unwrap();
        let means = g.column("v_mean").unwrap();
        for i in 0..g.n_rows() {
            let m = means.get(i).as_f64().unwrap();
            prop_assert!((-100.0..=100.0).contains(&m));
        }
    }

    #[test]
    fn inner_join_row_count_is_sum_of_products(df in arb_frame()) {
        let vc = df.value_counts("k").unwrap();
        let joined = df.join(&vc, "k", JoinKind::Inner).unwrap();
        // Each row matches exactly one count row.
        prop_assert_eq!(joined.n_rows(), df.n_rows());
        // Left join keeps everything too.
        let left = df.join(&vc, "k", JoinKind::Left).unwrap();
        prop_assert_eq!(left.n_rows(), df.n_rows());
    }

    #[test]
    fn csv_roundtrip_arbitrary_strings(
        texts in proptest::collection::vec("[ -~]{0,30}", 1..20),
        nums in proptest::collection::vec(-1e6f64..1e6, 1..20),
    ) {
        let n = texts.len().min(nums.len());
        let df = DataFrame::new(vec![
            Column::from_strings("t", texts[..n].to_vec()),
            Column::from_f64s("x", &nums[..n]),
        ]).unwrap();
        let csv = df.to_csv();
        let back = DataFrame::from_csv(&csv, &[("t", DType::Str), ("x", DType::Float)]).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        for i in 0..n {
            // Empty strings round-trip as nulls — both display as "".
            prop_assert_eq!(
                back.cell(i, "t").unwrap().to_string(),
                df.cell(i, "t").unwrap().to_string()
            );
            let a = back.cell(i, "x").unwrap().as_f64().unwrap();
            let b = df.cell(i, "x").unwrap().as_f64().unwrap();
            prop_assert!((a - b).abs() <= 1e-3_f64.max(b.abs() * 1e-4), "{a} vs {b}");
        }
    }

    #[test]
    fn value_total_order_is_consistent(xs in proptest::collection::vec(-1e9f64..1e9, 3)) {
        use std::cmp::Ordering;
        let a = Value::Float(xs[0]);
        let b = Value::Float(xs[1]);
        let c = Value::Float(xs[2]);
        // Antisymmetry.
        if a.total_cmp(&b) == Ordering::Less {
            prop_assert_eq!(b.total_cmp(&a), Ordering::Greater);
        }
        // Transitivity.
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert!(a.total_cmp(&c) != Ordering::Greater);
        }
    }

    #[test]
    fn take_out_of_range_yields_nulls(df in arb_frame(), idx in proptest::collection::vec(0usize..200, 0..12)) {
        let taken = df.take(&idx);
        prop_assert_eq!(taken.n_rows(), idx.len());
        for (pos, &i) in idx.iter().enumerate() {
            let v = taken.cell(pos, "v").unwrap();
            if i < df.n_rows() {
                prop_assert_eq!(v, df.cell(i, "v").unwrap());
            } else {
                prop_assert!(v.is_null());
            }
        }
    }

    #[test]
    fn explode_length_equals_total_list_len(lists in proptest::collection::vec(
        proptest::collection::vec(small_string(), 0..4), 1..25,
    )) {
        let total: usize = lists.iter().map(Vec::len).sum();
        let df = DataFrame::new(vec![Column::new(
            "topics",
            ColumnData::StrList(lists.into_iter().map(Some).collect()),
        )]).unwrap();
        let e = df.explode("topics").unwrap();
        prop_assert_eq!(e.n_rows(), total);
    }
}
