//! Serving & replication contracts (ISSUE 9):
//!
//! - A follower answering `ask()` while K entries behind the leader
//!   reports exactly K in the response's `lag` field, and the serve layer
//!   tracks the same number under `serve.replication_lag`.
//! - Killing the replication stream at *every* entry boundary and
//!   reconnecting converges the follower back to the leader
//!   byte-identically: same chain position, same run fingerprint, same
//!   WAL bytes, byte-identical answers.
//! - Replica sessions refuse writes with a typed `ReadOnly` error and
//!   keep serving reads.

use allhands::datasets::{generate_n, DatasetKind};
use allhands::prelude::*;
use allhands::serve::{Corpus, ServeOptions, ServeClient, Server};
use std::path::{Path, PathBuf};
use std::time::Duration;

const QUESTIONS: [&str; 2] = [
    "How many feedback entries are there?",
    "Which topic appears most frequently?",
];

fn corpus() -> (Vec<String>, Vec<LabeledExample>, Vec<String>) {
    let records = generate_n(DatasetKind::GoogleStoreApp, 16, 23);
    let texts: Vec<String> = records.iter().map(|r| r.text.clone()).collect();
    let labeled: Vec<LabeledExample> = records
        .iter()
        .take(10)
        .map(|r| LabeledExample { text: r.text.clone(), label: r.label.clone() })
        .collect();
    (texts, labeled, vec!["bug".to_string(), "crash".to_string()])
}

fn batches() -> Vec<Vec<String>> {
    let b1: Vec<String> = generate_n(DatasetKind::GoogleStoreApp, 5, 101)
        .iter()
        .map(|r| r.text.clone())
        .collect();
    let b2: Vec<String> = [
        "battery drains overnight even when idle",
        "phone gets hot and battery dies fast since update",
        "standby battery drain is terrible now",
    ]
    .map(String::from)
    .to_vec();
    let b3: Vec<String> = [
        "dark mode please my eyes hurt at night",
        "would love a dark mode option",
    ]
    .map(String::from)
    .to_vec();
    vec![b1, b2, b3]
}

fn tuned() -> AllHandsConfig {
    let mut config = AllHandsConfig::default();
    config.ingest.pending_threshold = 6;
    config.ingest.ivf_partition_docs = 8;
    config
}

/// JSON integers parse back as `I64` even when serialized from a `u64`.
fn int_of(v: &serde_json::Value) -> u64 {
    match v {
        serde_json::Value::U64(n) => *n,
        serde_json::Value::I64(n) if *n >= 0 => *n as u64,
        other => panic!("expected a non-negative integer, got {other:?}"),
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("serve-repl-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale scratch dir");
    }
    dir
}

/// Build a replica session bootstrapped from `bundle` into `dir`.
fn fresh_follower(bundle: BootstrapBundle, dir: &Path) -> AllHands {
    let (texts, labeled, predefined) = corpus();
    let (flw, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(tuned())
        .journal(JournalMode::Continue(dir.to_path_buf()))
        .bootstrap(bundle)
        .replica()
        .analyze(&texts, &labeled, &predefined)
        .expect("follower bootstrap failed");
    flw
}

/// Reopen a killed follower from its own journal directory.
fn reopen_follower(dir: &Path) -> AllHands {
    let (texts, labeled, predefined) = corpus();
    let (flw, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(tuned())
        .journal(JournalMode::Continue(dir.to_path_buf()))
        .recover_latest()
        .replica()
        .analyze(&texts, &labeled, &predefined)
        .expect("follower reopen after kill failed");
    flw
}

#[test]
fn kill_at_every_entry_boundary_reconnects_and_converges_byte_identically() {
    let leader_dir = scratch_dir("kill-leader");
    let (texts, labeled, predefined) = corpus();
    let (mut leader, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(tuned())
        .journal(JournalMode::Continue(leader_dir.clone()))
        .analyze(&texts, &labeled, &predefined)
        .expect("leader run failed");
    let bundle = leader.export_bootstrap().expect("leader export failed");

    // The leader moves on: an ingest stream plus journaled answers.
    for batch in batches() {
        leader.ingest(&batch).expect("leader ingest failed");
    }
    let leader_answers: Vec<String> = QUESTIONS
        .iter()
        .map(|q| leader.ask(q).expect("leader ask failed").render())
        .collect();
    let (leader_seq, leader_chain) = leader.chain_position().expect("leader not journaled");
    let leader_fp = leader.run_fingerprint().expect("leader has no fingerprint").to_string();

    // The full tail a follower must replay: everything past the bundle.
    let base = bundle.upto_seq;
    let tail = leader
        .journal()
        .expect("leader journal missing")
        .tail_after(base)
        .expect("leader tail read failed");
    assert!(
        tail.len() >= batches().len() + QUESTIONS.len(),
        "expected one entry per batch and question, got {}",
        tail.len()
    );

    let leader_wal = std::fs::read(leader_dir.join("allhands.journal")).unwrap();

    // Kill the stream after k replicated entries, for every k — including
    // k=0 (killed before anything arrived) and k=len (killed after the
    // stream drained). Reconnect must resume from the replica's own chain
    // position and converge byte-identically.
    for k in 0..=tail.len() {
        let dir = scratch_dir(&format!("kill-{k}"));
        let mut flw = fresh_follower(bundle.clone(), &dir);
        let partial = flw.apply_tail(&tail[..k]).expect("pre-kill replay failed");
        assert_eq!(partial.next_seq, base + k as u64, "kill point {k} landed wrong");
        drop(flw); // the kill: session gone mid-stream, journal on disk

        let mut flw = reopen_follower(&dir);
        let (cur, _) = flw.chain_position().expect("reopened follower not journaled");
        assert_eq!(cur, base + k as u64, "reopen lost replicated entries at kill point {k}");
        let report = flw
            .apply_tail(&tail[(cur - base) as usize..])
            .expect("post-reconnect replay failed");

        assert_eq!(
            (report.next_seq, report.chain_head.clone()),
            (leader_seq, leader_chain.clone()),
            "kill point {k}: follower chain diverged from leader"
        );
        assert_eq!(
            flw.run_fingerprint(),
            Some(leader_fp.as_str()),
            "kill point {k}: follower run fingerprint diverged"
        );
        let follower_wal = std::fs::read(dir.join("allhands.journal")).unwrap();
        assert_eq!(
            leader_wal, follower_wal,
            "kill point {k}: follower WAL is not byte-identical to the leader's"
        );
        // Replicated state answers byte-identically to the leader.
        for (q, expected) in QUESTIONS.iter().zip(&leader_answers) {
            let got = flw.ask(q).expect("replica ask failed").render();
            assert_eq!(&got, expected, "kill point {k}: answer to {q:?} diverged");
        }
        drop(flw);
        std::fs::remove_dir_all(&dir).ok();
    }
    drop(leader);
    std::fs::remove_dir_all(&leader_dir).ok();
}

#[test]
fn replica_sessions_refuse_writes_and_count_reads() {
    let leader_dir = scratch_dir("refuse-leader");
    let follower_dir = scratch_dir("refuse-follower");
    let (texts, labeled, predefined) = corpus();
    let (leader, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(tuned())
        .journal(JournalMode::Continue(leader_dir.clone()))
        .analyze(&texts, &labeled, &predefined)
        .expect("leader run failed");
    let bundle = leader.export_bootstrap().expect("leader export failed");
    drop(leader);

    let (mut flw, _frame) = AllHands::builder(ModelTier::Gpt4)
        .config(tuned())
        .journal(JournalMode::Continue(follower_dir.clone()))
        .bootstrap(bundle)
        .replica()
        .recorder(RecorderMode::Enabled)
        .analyze(&texts, &labeled, &predefined)
        .expect("follower bootstrap failed");
    assert!(flw.is_replica());

    // Writes are typed refusals, not panics and not silent no-ops.
    match flw.ingest(&batches()[0]) {
        Err(AllHandsError::ReadOnly(m)) => {
            assert!(m.contains("leader"), "refusal should point at the leader: {m}")
        }
        other => panic!("replica ingest must refuse with ReadOnly, got {other:?}"),
    }
    match flw.retract(0) {
        Err(AllHandsError::ReadOnly(_)) => {}
        other => panic!("replica retract must refuse with ReadOnly, got {other:?}"),
    }

    // Reads keep serving, and are counted as replica reads — not as the
    // replicated QA ordinal, which must stay in lockstep with the leader.
    for q in QUESTIONS {
        let r = flw.ask(q).expect("replica ask failed");
        assert!(r.error.is_none(), "replica answer errored: {:?}", r.error);
    }
    let report = flw.run_report();
    assert_eq!(report.counter("qa.replica_reads"), QUESTIONS.len() as u64);
    drop(flw);
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

#[test]
fn lagging_follower_reports_its_lag_and_drains_after_resume() {
    let socket = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("serve-lag-{}.sock", std::process::id()));
    let data_dir = scratch_dir("lag-data");
    let corpus = Corpus::synthetic(16, 23);
    let opts = ServeOptions { followers: 2, config: tuned(), ..ServeOptions::default() };
    let server = Server::start(&socket, &data_dir, &corpus, opts).expect("server start failed");
    let mut client = ServeClient::connect(&socket).expect("client connect failed");

    // Freeze the appliers, then push K write batches through the leader.
    client.pause_replication().expect("pause failed");
    let seq_before = {
        let status = client.status().expect("status failed");
        int_of(&status["leader"]["seq"])
    };
    let mut seq_after = seq_before;
    for batch in batches() {
        let rep = client.ingest(&batch).expect("ingest failed");
        seq_after = rep.seq;
    }
    let expected_lag = seq_after - seq_before;
    assert!(expected_lag >= batches().len() as u64, "each batch should append an entry");

    // Both followers serve while behind, reporting exactly how far.
    for _ in 0..2 {
        let reply = client.ask(QUESTIONS[0]).expect("ask on lagging follower failed");
        assert_eq!(
            reply.lag, expected_lag,
            "replica {} under-/over-reported its lag",
            reply.replica
        );
        assert!(reply.error.is_none(), "stale read errored: {:?}", reply.error);
    }
    // The serve layer tracked the same number.
    let metrics = client.metrics().expect("metrics failed").to_string();
    assert!(
        metrics.contains("serve.replication_lag"),
        "serve.replication_lag missing from metrics: {metrics}"
    );

    // Resume: followers drain to the leader's head and agree on the chain
    // and fingerprint; served lag returns to 0.
    client.resume_replication().expect("resume failed");
    let status = client
        .wait_replicated(Duration::from_secs(30))
        .expect("followers never drained after resume");
    let leader_chain = status["leader"]["chain"].to_string();
    let leader_fp = status["leader"]["fingerprint"].to_string();
    match &status["followers"] {
        serde_json::Value::Array(flws) => {
            assert_eq!(flws.len(), 2);
            for f in flws {
                assert_eq!(f["chain"].to_string(), leader_chain, "follower chain diverged");
                assert_eq!(f["fingerprint"].to_string(), leader_fp, "fingerprint diverged");
                assert_eq!(int_of(&f["lag"]), 0);
            }
        }
        other => panic!("status followers is not an array: {other:?}"),
    }
    let reply = client.ask(QUESTIONS[1]).expect("post-drain ask failed");
    assert_eq!(reply.lag, 0, "drained follower still reports lag");

    client.shutdown().expect("shutdown failed");
    server.run_until_shutdown();
    std::fs::remove_dir_all(&data_dir).ok();
    std::fs::remove_file(&socket).ok();
}
