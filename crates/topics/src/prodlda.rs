//! ProdLDA (Srivastava & Sutton 2017): a logistic-normal neural topic
//! model trained as a variational autoencoder, with manual gradients.
//!
//! Architecture (the paper's, linearized):
//! encoder `x → (μ, log σ²)`; reparameterized sample `z = μ + ε·σ`;
//! document-topic mixture `θ = softmax(z)`; decoder (product of experts)
//! `p = softmax(θᵀ·β)`. Loss = multinomial reconstruction + KL(q‖N(0,I)).
//!
//! The encoder input is pluggable — normalized bag-of-words for ProdLDA,
//! contextual sentence embeddings for [`crate::ctm`] (CTM extends ProdLDA
//! "by using pre-trained language representations").

use crate::corpus::Corpus;
use crate::TopicModelOutput;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Neural topic model hyperparameters.
#[derive(Debug, Clone)]
pub struct ProdLdaConfig {
    pub k: usize,
    pub epochs: usize,
    pub learning_rate: f32,
    pub seed: u64,
}

impl Default for ProdLdaConfig {
    fn default() -> Self {
        ProdLdaConfig { k: 15, epochs: 40, learning_rate: 0.05, seed: 23 }
    }
}

/// A fitted neural topic model (shared by ProdLDA and CTM).
pub struct NeuralTopicModel {
    /// Encoder mean weights: k × input_dim.
    enc_mu: Vec<Vec<f32>>,
    /// Encoder log-variance weights: k × input_dim.
    enc_lv: Vec<Vec<f32>>,
    mu_bias: Vec<f32>,
    lv_bias: Vec<f32>,
    /// Decoder topic-word weights: k × vocab.
    beta: Vec<Vec<f32>>,
    k: usize,
}

fn softmax(v: &mut [f32]) {
    let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fit the VAE. `features[d]` is the encoder input for document `d`
/// (any fixed dimension); targets are the corpus term counts.
pub fn fit_neural(
    corpus: &Corpus,
    features: &[Vec<f32>],
    config: &ProdLdaConfig,
) -> NeuralTopicModel {
    assert_eq!(features.len(), corpus.n_docs(), "one feature row per doc");
    assert!(config.k >= 2, "k must be >= 2");
    let k = config.k;
    let input_dim = features.first().map_or(0, Vec::len).max(1);
    let v = corpus.n_terms().max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    let mut init = |rows: usize, cols: usize| -> Vec<Vec<f32>> {
        (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-0.05..0.05)).collect())
            .collect()
    };
    let mut enc_mu = init(k, input_dim);
    let mut enc_lv = init(k, input_dim);
    let mut beta = init(k, v);
    let mut mu_bias = vec![0.0f32; k];
    let mut lv_bias = vec![0.0f32; k];

    // Sparse targets.
    let targets: Vec<Vec<(u32, f32)>> = (0..corpus.n_docs())
        .map(|d| {
            corpus
                .doc_term_counts(d)
                .into_iter()
                .map(|(t, c)| (t, c as f32))
                .collect()
        })
        .collect();

    let lr = config.learning_rate;
    let mut order: Vec<usize> = (0..corpus.n_docs()).collect();
    use rand::seq::SliceRandom;

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for &d in &order {
            let x = &features[d];
            let target = &targets[d];
            let n_d: f32 = target.iter().map(|&(_, c)| c).sum();
            if n_d == 0.0 {
                continue;
            }
            // ---- forward ----
            let mut mu = mu_bias.clone();
            let mut lv = lv_bias.clone();
            for t in 0..k {
                for (i, &xi) in x.iter().enumerate() {
                    mu[t] += enc_mu[t][i] * xi;
                    lv[t] += enc_lv[t][i] * xi;
                }
                lv[t] = lv[t].clamp(-6.0, 2.0);
            }
            let eps: Vec<f32> = (0..k).map(|_| gaussian(&mut rng)).collect();
            let z: Vec<f32> = (0..k).map(|t| mu[t] + eps[t] * (0.5 * lv[t]).exp()).collect();
            let mut theta = z.clone();
            softmax(&mut theta);
            // Decoder logits over the vocab (dense, k·v work per doc).
            let mut logits = vec![0.0f32; v];
            for t in 0..k {
                let th = theta[t];
                if th < 1e-8 {
                    continue;
                }
                for (l, b) in logits.iter_mut().zip(&beta[t]) {
                    *l += th * b;
                }
            }
            let mut p = logits.clone();
            softmax(&mut p);

            // ---- backward ----
            // d loss / d logits = n_d * p − x (multinomial CE with counts).
            let mut dlogits: Vec<f32> = p.iter().map(|&pv| n_d * pv).collect();
            for &(term, c) in target {
                dlogits[term as usize] -= c;
            }
            // Scale down so updates are stable across document lengths.
            let scale = 1.0 / n_d;
            // Grad wrt theta and beta. The decoder gradient carries a
            // θ_t factor (≈1/k), which starves beta of signal at practical
            // epoch counts — give the decoder block its own, larger step
            // (standard per-block learning rates).
            let beta_lr = lr * 6.0;
            let mut dtheta = vec![0.0f32; k];
            for t in 0..k {
                let mut acc = 0.0f32;
                let row = &mut beta[t];
                let th = theta[t];
                for (vi, &dl) in dlogits.iter().enumerate() {
                    acc += dl * row[vi];
                    row[vi] -= beta_lr * scale * dl * th;
                }
                dtheta[t] = acc;
            }
            // Softmax jacobian: dz = theta ⊙ (dtheta − ⟨dtheta, theta⟩).
            let dot: f32 = dtheta.iter().zip(&theta).map(|(a, b)| a * b).sum();
            let dz: Vec<f32> = (0..k).map(|t| theta[t] * (dtheta[t] - dot)).collect();
            // KL gradients (weight 1): dμ += μ, dlogvar += ½(e^lv − 1).
            for t in 0..k {
                let dmu = scale * dz[t] + 0.02 * mu[t];
                let dlv = scale * dz[t] * 0.5 * eps[t] * (0.5 * lv[t]).exp()
                    + 0.02 * 0.5 * (lv[t].exp() - 1.0);
                mu_bias[t] -= lr * dmu;
                lv_bias[t] -= lr * dlv;
                for (i, &xi) in x.iter().enumerate() {
                    enc_mu[t][i] -= lr * dmu * xi;
                    enc_lv[t][i] -= lr * dlv * xi;
                }
            }
        }
    }
    NeuralTopicModel { enc_mu, enc_lv, mu_bias, lv_bias, beta, k }
}

impl NeuralTopicModel {
    /// Posterior-mean topic mixture for a feature row.
    pub fn infer_theta(&self, x: &[f32]) -> Vec<f32> {
        let mut mu = self.mu_bias.clone();
        for (mu_t, row) in mu.iter_mut().zip(&self.enc_mu).take(self.k) {
            for (i, &xi) in x.iter().enumerate() {
                *mu_t += row[i] * xi;
            }
        }
        softmax(&mut mu);
        mu
    }

    /// Encoder log-variance (diagnostics).
    pub fn infer_logvar(&self, x: &[f32]) -> Vec<f32> {
        let mut lv = self.lv_bias.clone();
        for (lv_t, row) in lv.iter_mut().zip(&self.enc_lv).take(self.k) {
            for (i, &xi) in x.iter().enumerate() {
                *lv_t += row[i] * xi;
            }
        }
        lv
    }

    /// Uniform output over the training features.
    pub fn output(
        &self,
        corpus: &Corpus,
        features: &[Vec<f32>],
        top_n: usize,
    ) -> TopicModelOutput {
        let top_words: Vec<Vec<String>> = (0..self.k)
            .map(|t| {
                let mut ids: Vec<u32> = (0..corpus.n_terms() as u32).collect();
                ids.sort_by(|&a, &b| {
                    self.beta[t][b as usize]
                        .partial_cmp(&self.beta[t][a as usize])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                ids.into_iter()
                    .take(top_n)
                    .filter_map(|id| corpus.vocab.token_of(id).map(str::to_string))
                    .collect()
            })
            .collect();
        let mut doc_topic = Vec::with_capacity(corpus.n_docs());
        let mut doc_confidence = Vec::with_capacity(corpus.n_docs());
        for (d, x) in features.iter().enumerate() {
            if corpus.docs[d].is_empty() {
                doc_topic.push(None);
                doc_confidence.push(0.0);
                continue;
            }
            let theta = self.infer_theta(x);
            let (best, conf) = theta
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, &p)| (i, p as f64))
                .expect("k >= 2");
            doc_topic.push(Some(best));
            doc_confidence.push(conf);
        }
        TopicModelOutput { top_words, doc_topic, doc_confidence }
    }
}

/// Normalized bag-of-words encoder features (the ProdLDA input).
pub fn bow_features(corpus: &Corpus) -> Vec<Vec<f32>> {
    let v = corpus.n_terms().max(1);
    (0..corpus.n_docs())
        .map(|d| {
            let mut row = vec![0.0f32; v];
            let counts = corpus.doc_term_counts(d);
            let total: u32 = counts.iter().map(|&(_, c)| c).sum();
            if total > 0 {
                for (term, c) in counts {
                    row[term as usize] = c as f32 / total as f32;
                }
            }
            row
        })
        .collect()
}

/// Fit ProdLDA proper (BoW encoder input).
pub fn fit_prodlda(corpus: &Corpus, config: &ProdLdaConfig) -> NeuralTopicModel {
    let features = bow_features(corpus);
    fit_neural(corpus, &features, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut texts = Vec::new();
        for i in 0..30 {
            texts.push(format!("crash bug error freeze broken {i}"));
            texts.push(format!("love great amazing wonderful fast {i}"));
        }
        Corpus::build(&texts, 2, 1.0)
    }

    #[test]
    fn theta_is_a_distribution() {
        let c = corpus();
        let model = fit_prodlda(&c, &ProdLdaConfig { k: 3, epochs: 5, ..Default::default() });
        let f = bow_features(&c);
        let theta = model.infer_theta(&f[0]);
        assert!((theta.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(theta.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn separates_themes() {
        let c = corpus();
        let model = fit_prodlda(&c, &ProdLdaConfig { k: 2, epochs: 60, learning_rate: 0.08, seed: 3 });
        let f = bow_features(&c);
        let out = model.output(&c, &f, 5);
        // Crash docs and praise docs should mostly land on different topics.
        let crash_topics: Vec<_> = (0..c.n_docs()).step_by(2).map(|d| out.doc_topic[d]).collect();
        let praise_topics: Vec<_> = (1..c.n_docs()).step_by(2).map(|d| out.doc_topic[d]).collect();
        let crash_mode = mode(&crash_topics);
        let praise_mode = mode(&praise_topics);
        assert_ne!(crash_mode, praise_mode, "topics failed to separate");
    }

    fn mode(xs: &[Option<usize>]) -> Option<usize> {
        let mut counts = std::collections::HashMap::new();
        for x in xs.iter().flatten() {
            *counts.entry(*x).or_insert(0usize) += 1;
        }
        counts.into_iter().max_by_key(|&(_, c)| c).map(|(t, _)| t)
    }

    #[test]
    fn deterministic_per_seed() {
        let c = corpus();
        let cfg = ProdLdaConfig { k: 2, epochs: 5, seed: 8, ..Default::default() };
        let f = bow_features(&c);
        let a = fit_neural(&c, &f, &cfg);
        let b = fit_neural(&c, &f, &cfg);
        assert_eq!(a.infer_theta(&f[0]), b.infer_theta(&f[0]));
    }

    #[test]
    #[should_panic(expected = "one feature row per doc")]
    fn feature_length_mismatch_panics() {
        let c = corpus();
        fit_neural(&c, &[], &ProdLdaConfig::default());
    }
}
