//! The Table 3 evaluation measures: a BARTScore substitute, pairwise NPMI
//! coherence, and OthersRate.

use allhands_text::{preprocess, Vocabulary};
use std::collections::HashMap;

/// A corpus-fitted scorer approximating BARTScore (Yuan et al. 2021):
/// the average log-probability of generating the topic label's tokens given
/// the feedback, under a document-co-occurrence language model fitted on
/// the corpus.
///
/// Why this preserves the metric's behaviour: BARTScore rewards labels
/// whose tokens a seq2seq model finds *likely given the input*. Our stand-in
/// estimates that likelihood from corpus co-occurrence — a label token
/// scores high if it literally appears in the feedback, or if it strongly
/// co-occurs with the feedback's words across the corpus (e.g. "feature"
/// given "please add dark mode"). Hallucinated or unrelated labels score
/// near the floor, abstractive-but-grounded labels score high — the same
/// ordering the real metric produces.
pub struct BartScorer {
    vocab: Vocabulary,
    /// Document-level co-occurrence counts, key = (min_id, max_id).
    cooc: HashMap<(u32, u32), u32>,
    /// Per-token document frequency (denominator of P(t|f)).
    n_docs: f64,
}

/// Common product-domain English words a pretrained seq2seq model
/// generates cheaply regardless of corpus statistics (its LM prior).
const ENGLISH_PRIOR: &[&str] = &[
    "issue", "problem", "request", "feature", "error", "bug", "crash",
    "performance", "reliability", "quality", "experience", "interface",
    "functionality", "information", "results", "result", "search",
    "translation", "update", "notification", "login", "battery", "sync",
    "ads", "price", "subscription", "event", "spam", "help", "guidance",
    "configuration", "installation", "playback", "audio", "hardware",
    "extension", "telemetry", "security", "bookmarks", "mistake",
    "generation", "image", "voice", "rewards", "shopping", "holiday",
    "outage", "chatter", "complaint", "complaints", "slang", "trend",
    "confusion", "concern", "seeking", "acknowledgement", "setup",
];

/// LM-prior generation ease for a token (stemmed match against the
/// abstraction lexicon).
fn english_prior(token: &str) -> f64 {
    let stem = allhands_text::porter_stem(token);
    if ENGLISH_PRIOR.iter().any(|w| {
        *w == token || allhands_text::porter_stem(w) == stem
    }) {
        0.55
    } else {
        0.0
    }
}

impl BartScorer {
    /// Fit the co-occurrence model on the evaluation corpus.
    pub fn fit<S: AsRef<str>>(texts: &[S]) -> Self {
        let mut vocab = Vocabulary::new();
        let mut cooc: HashMap<(u32, u32), u32> = HashMap::new();
        for text in texts {
            let mut ids = vocab.add_document(preprocess(text.as_ref()));
            ids.sort_unstable();
            ids.dedup();
            // Cap pathological documents.
            ids.truncate(30);
            for i in 0..ids.len() {
                for j in i + 1..ids.len() {
                    *cooc.entry((ids[i], ids[j])).or_insert(0) += 1;
                }
            }
        }
        BartScorer { vocab, cooc, n_docs: texts.len().max(1) as f64 }
    }

    fn cooc_count(&self, a: u32, b: u32) -> u32 {
        let key = (a.min(b), a.max(b));
        self.cooc.get(&key).copied().unwrap_or(0)
    }

    /// Conditional probability estimate P(token | context token).
    fn conditional(&self, token: u32, context: u32) -> f64 {
        let df = self.vocab.doc_freq(context) as f64;
        if df == 0.0 {
            return 0.0;
        }
        self.cooc_count(token, context) as f64 / df
    }

    /// Score a `label` against the `feedback` it summarizes. Higher is
    /// better; calibrated to land in the paper's −8 .. −3 band.
    ///
    /// Multi-topic labels joined with `;` are scored per phrase and
    /// averaged (each phrase is an independent generation).
    pub fn score(&self, label: &str, feedback: &str) -> f64 {
        let phrases: Vec<&str> = label
            .split(';')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .collect();
        if phrases.is_empty() {
            return -8.0;
        }
        phrases
            .iter()
            .map(|p| self.score_phrase(p, feedback))
            .sum::<f64>()
            / phrases.len() as f64
    }

    /// Association strength of two corpus tokens (overlap coefficient,
    /// scaled to saturate for real collocations).
    fn association(&self, a: u32, b: u32) -> f64 {
        let min_df = self.vocab.doc_freq(a).min(self.vocab.doc_freq(b)) as f64;
        if min_df == 0.0 {
            return 0.0;
        }
        (2.0 * self.cooc_count(a, b) as f64 / min_df).min(1.0)
    }

    fn score_phrase(&self, label: &str, feedback: &str) -> f64 {
        let label_tokens = preprocess(label);
        if label_tokens.is_empty() {
            return -8.0;
        }
        let feedback_tokens: Vec<String> = preprocess(feedback);
        let feedback_ids: Vec<u32> = feedback_tokens
            .iter()
            .filter_map(|t| self.vocab.id_of(t))
            .collect();

        let mut total = 0.0f64;
        for token in &label_tokens {
            // Surface match: the generation is trivially likely.
            let exact = feedback_tokens.iter().any(|f| f == token);
            let sim = if exact {
                1.0
            } else {
                match self.vocab.id_of(token) {
                    None => english_prior(token),
                    Some(id) => {
                        // Strongest co-occurrence evidence from any
                        // feedback token. A strongly associated abstractive
                        // token is as easy for a seq2seq model to generate
                        // as a verbatim one, so the association is scaled
                        // up to parity with exact matches; a weak unigram
                        // floor covers generic tokens.
                        let best = feedback_ids
                            .iter()
                            .map(|&f| self.conditional(id, f))
                            .fold(0.0f64, f64::max);
                        let unigram = self.vocab.doc_freq(id) as f64 / self.n_docs;
                        (2.2 * best)
                            .min(1.0)
                            .max(0.25 * unigram)
                            .max(english_prior(token))
                    }
                }
            };
            let p = 5e-4 + 0.04 * sim;
            total += p.ln();
        }

        // Fluency: a seq2seq scorer is a language model — consecutive label
        // tokens that never co-occur in the corpus ("crash close time") are
        // expensive to generate; genuine collocations ("feature request")
        // are cheap. Weight: half a token per adjacent pair.
        let mut fluency_terms = 0.0f64;
        let mut n_pairs = 0.0f64;
        for pair in label_tokens.windows(2) {
            // Collocation ease: corpus association, or the LM prior when
            // both tokens are common English abstraction words.
            let prior = english_prior(&pair[0]).min(english_prior(&pair[1]));
            let f = match (self.vocab.id_of(&pair[0]), self.vocab.id_of(&pair[1])) {
                (Some(a), Some(b)) => self.association(a, b).max(prior),
                _ => prior,
            };
            fluency_terms += (5e-4 + 0.04 * f).ln();
            n_pairs += 1.0;
        }
        (total + 0.5 * fluency_terms) / (label_tokens.len() as f64 + 0.5 * n_pairs)
    }

    /// Mean score of per-document labels over a corpus slice.
    pub fn mean_score(&self, pairs: &[(String, String)]) -> f64 {
        if pairs.is_empty() {
            return -8.0;
        }
        pairs
            .iter()
            .map(|(label, feedback)| self.score(label, feedback))
            .sum::<f64>()
            / pairs.len() as f64
    }
}

/// Convenience wrapper: fit on `texts` and score one pair.
pub fn bart_score(label: &str, feedback: &str, texts: &[String]) -> f64 {
    BartScorer::fit(texts).score(label, feedback)
}

/// Pairwise NPMI coherence of each topic's top words, averaged over topics
/// (Fang et al. 2016 use embeddings; we use the standard document
/// co-occurrence NPMI, the more common variant).
///
/// For each topic, every pair `(wi, wj)` of its top words contributes
/// `NPMI = ln(P(i,j) / (P(i)·P(j))) / (−ln P(i,j))`; pairs never observed
/// together contribute −1 (the NPMI limit).
pub fn npmi_coherence<S: AsRef<str>>(topics: &[Vec<String>], texts: &[S]) -> f64 {
    if topics.is_empty() || texts.is_empty() {
        return 0.0;
    }
    // Document frequency and pair frequency over the evaluation texts.
    let mut vocab = Vocabulary::new();
    let mut pair_counts: HashMap<(u32, u32), u32> = HashMap::new();
    for text in texts {
        let mut ids = vocab.add_document(preprocess(text.as_ref()));
        ids.sort_unstable();
        ids.dedup();
        ids.truncate(30);
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                *pair_counts.entry((ids[i], ids[j])).or_insert(0) += 1;
            }
        }
    }
    let n = texts.len() as f64;
    let mut total = 0.0f64;
    let mut count = 0usize;
    for topic in topics {
        let words: Vec<u32> = topic
            .iter()
            .take(10)
            .filter_map(|w| vocab.id_of(w))
            .collect();
        for i in 0..words.len() {
            for j in i + 1..words.len() {
                let (a, b) = (words[i].min(words[j]), words[i].max(words[j]));
                let pij = pair_counts.get(&(a, b)).copied().unwrap_or(0) as f64 / n;
                count += 1;
                if pij <= 0.0 {
                    total -= 1.0;
                    continue;
                }
                let pi = vocab.doc_freq(a) as f64 / n;
                let pj = vocab.doc_freq(b) as f64 / n;
                let pmi = (pij / (pi * pj)).ln();
                total += pmi / -pij.ln();
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Fraction of documents left unassigned / labeled "others".
pub fn others_rate(assignments: &[Option<usize>]) -> f64 {
    if assignments.is_empty() {
        return 0.0;
    }
    assignments.iter().filter(|a| a.is_none()).count() as f64 / assignments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_texts() -> Vec<String> {
        let mut texts = Vec::new();
        for i in 0..40 {
            texts.push(format!("please add a dark mode feature request option {i}"));
            texts.push(format!("the app crashes with an error crash report {i}"));
        }
        texts
    }

    #[test]
    fn exact_match_beats_unrelated() {
        let scorer = BartScorer::fit(&corpus_texts());
        let good = scorer.score("crash error", "the app crashes with an error crash report 1");
        let bad = scorer.score("minecraft windows", "the app crashes with an error crash report 1");
        assert!(good > bad + 1.0, "good={good} bad={bad}");
    }

    #[test]
    fn abstractive_grounded_label_beats_hallucination() {
        let scorer = BartScorer::fit(&corpus_texts());
        // "feature request" never appears verbatim in this feedback but
        // co-occurs with its words across the corpus.
        let feedback = "please add a dark mode option 5";
        let abstractive = scorer.score("feature request", feedback);
        let hallucinated = scorer.score("minecraft windows", feedback);
        assert!(abstractive > hallucinated, "{abstractive} vs {hallucinated}");
    }

    #[test]
    fn scores_in_paper_band() {
        let scorer = BartScorer::fit(&corpus_texts());
        let s = scorer.score("crash error report", "the app crashes with an error crash report 1");
        assert!(s > -8.0 && s < -2.0, "{s}");
        assert_eq!(scorer.score("", "anything"), -8.0);
    }

    #[test]
    fn mean_score_aggregates() {
        let scorer = BartScorer::fit(&corpus_texts());
        let pairs = vec![
            ("crash".to_string(), "the app crashes with an error crash report 1".to_string()),
            ("crash".to_string(), "please add a dark mode feature request option 1".to_string()),
        ];
        let m = scorer.mean_score(&pairs);
        let a = scorer.score(&pairs[0].0, &pairs[0].1);
        let b = scorer.score(&pairs[1].0, &pairs[1].1);
        assert!((m - (a + b) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn coherent_topics_score_higher() {
        let texts = corpus_texts();
        // Words that genuinely co-occur vs. a shuffled mix.
        let coherent = vec![vec!["crash".to_string(), "error".to_string(), "report".to_string()]];
        let incoherent = vec![vec!["crash".to_string(), "dark".to_string(), "option".to_string()]];
        let c = npmi_coherence(&coherent, &texts);
        let i = npmi_coherence(&incoherent, &texts);
        assert!(c > i, "coherent={c} incoherent={i}");
        assert!(c > 0.0);
    }

    #[test]
    fn npmi_bounds() {
        let texts = corpus_texts();
        let topics = vec![vec!["crash".to_string(), "error".to_string()]];
        let v = npmi_coherence(&topics, &texts);
        assert!((-1.0..=1.0).contains(&v));
        assert_eq!(npmi_coherence(&[], &texts), 0.0);
    }

    #[test]
    fn others_rate_counts_none() {
        assert_eq!(others_rate(&[Some(0), None, Some(1), None]), 0.5);
        assert_eq!(others_rate(&[]), 0.0);
    }
}
