//! T5-stand-in topic labeler.
//!
//! The paper uses T5 to summarize each baseline topic's keywords and an
//! exemplar feedback into a 2-5 word human-readable label. This stand-in
//! does what a small seq2seq model effectively does on this task: select
//! the most representative keywords (re-ranked by how often they occur in
//! the exemplar) and splice them into a short phrase. Quality is
//! deliberately keyword-bound — that is precisely the extractive ceiling
//! Table 3's BARTScore comparison exposes.

use allhands_text::preprocess;
use std::collections::HashSet;

/// Produce a 2-5 word label for a topic from its `top_words` and an
/// exemplar document.
pub fn label_topic(top_words: &[String], exemplar: &str) -> String {
    if top_words.is_empty() {
        return "miscellaneous".to_string();
    }
    let exemplar_tokens: HashSet<String> = preprocess(exemplar).into_iter().collect();
    // Rank keywords: those present in the exemplar first (stable order
    // otherwise), then take up to 3.
    let mut in_exemplar: Vec<&String> = Vec::new();
    let mut rest: Vec<&String> = Vec::new();
    for w in top_words.iter().take(10) {
        if exemplar_tokens.contains(w) {
            in_exemplar.push(w);
        } else {
            rest.push(w);
        }
    }
    let chosen: Vec<&String> = in_exemplar.into_iter().chain(rest).take(3).collect();
    let mut label = chosen
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    if label.split_whitespace().count() < 2 {
        label.push_str(" issue");
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exemplar_words_rank_first() {
        let label = label_topic(
            &words(&["filter", "crash", "camera"]),
            "the camera crash happens daily",
        );
        // crash & camera appear in the exemplar so they lead.
        assert!(label.starts_with("crash") || label.starts_with("camera"), "{label}");
    }

    #[test]
    fn label_length_bounds() {
        let label = label_topic(&words(&["a", "b", "c", "d", "e", "f"]), "");
        let n = label.split_whitespace().count();
        assert!((2..=5).contains(&n), "{label}");
    }

    #[test]
    fn single_keyword_padded() {
        let label = label_topic(&words(&["crash"]), "");
        assert_eq!(label, "crash issue");
    }

    #[test]
    fn empty_topic() {
        assert_eq!(label_topic(&[], "whatever"), "miscellaneous");
    }
}
