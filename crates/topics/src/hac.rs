//! Hierarchical agglomerative clustering (Müllner 2011).
//!
//! The merge loop is the Lance–Williams generic algorithm: a cluster-level
//! distance matrix updated in place after every merge, plus a per-row
//! nearest-neighbor table, so selecting the next pair costs O(m) instead of
//! rescanning every point pair of every cluster pair each round. The naive
//! seed implementation is kept as [`agglomerative_clusters_reference`] —
//! golden tests assert both produce identical assignments, and an
//! ops-counter test shows the rescans are gone.
//!
//! Determinism contract: the initial pairwise matrix is filled row-parallel
//! (each cell is a pure function of the two points), and every later step is
//! sequential, so assignments are bit-identical at any thread count. The
//! pair picked each round is the lexicographic minimum of
//! `(distance, position_a, position_b)` — exactly the reference's
//! first-strictly-smaller scan order — and cluster positions evolve by the
//! same `swap_remove` bookkeeping, so cluster *indices* (not just the
//! partition) match the reference. Single/Complete distances stay exact f32
//! values under min/max updates; Average is tracked as an f64 pair-distance
//! sum (at least as accurate as the reference's f32 running mean).

use allhands_embed::Embedding;

/// Linkage criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Mean pairwise distance between clusters (UPGMA).
    Average,
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
}

/// Work counters for the merge phase (selection + bookkeeping; the initial
/// pairwise fill is the same n(n-1)/2 cosine evaluations for both
/// implementations and is excluded).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HacStats {
    /// Merges performed.
    pub merges: usize,
    /// Distance cells read or written while picking pairs and maintaining
    /// cluster distances. The reference rescans all member pairs of all
    /// cluster pairs per round; Lance–Williams touches O(m) cells per merge.
    pub cells_visited: u64,
}

/// Cluster `points` bottom-up, merging until every inter-cluster distance
/// exceeds `distance_threshold` (cosine distance = 1 − cosine similarity).
/// Returns cluster index per point.
pub fn agglomerative_clusters(
    points: &[Embedding],
    linkage: Linkage,
    distance_threshold: f32,
) -> Vec<usize> {
    agglomerative_clusters_with_stats(points, linkage, distance_threshold).0
}

/// [`agglomerative_clusters`] plus merge-phase work counters.
pub fn agglomerative_clusters_with_stats(
    points: &[Embedding],
    linkage: Linkage,
    distance_threshold: f32,
) -> (Vec<usize>, HacStats) {
    let n = points.len();
    let mut stats = HacStats::default();
    if n == 0 {
        return (Vec::new(), stats);
    }
    let threshold = f64::from(distance_threshold);

    // Pairwise point distances; rows are independent, so the upper triangle
    // fills in parallel. f32→f64 is exact, so cells are bit-identical to
    // the reference's matrix at any thread count.
    let indices: Vec<usize> = (0..n).collect();
    let upper: Vec<Vec<f64>> = allhands_par::par_map_indexed(&indices, |_, &i| {
        (i + 1..n)
            .map(|j| f64::from(1.0 - points[i].cosine(&points[j])))
            .collect()
    });
    // Full symmetric matrix between active cluster *positions*. For Average
    // linkage a cell holds the SUM of point-pair distances between the two
    // clusters (pair count = product of sizes); for Single/Complete it
    // holds the min/max, which stays an exact f32 value under updates.
    let mut mat = vec![vec![0.0f64; n]; n];
    for (i, row) in upper.iter().enumerate() {
        for (off, &d) in row.iter().enumerate() {
            let j = i + 1 + off;
            mat[i][j] = d;
            mat[j][i] = d;
        }
    }
    let mut sizes = vec![1usize; n];
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    // best[c] = (distance, argmin position) over positions > c, ties broken
    // toward the smallest position. Scanning best[] ascending with a strict
    // `<` then reproduces the reference's (distance, a, b) lexicographic
    // pick exactly.
    let mut best: Vec<Option<(f64, usize)>> = (0..n)
        .map(|c| row_min(&mat, &sizes, linkage, n, c, &mut stats))
        .collect();

    let mut m = n;
    while m > 1 {
        // Pick the closest pair.
        let mut pick: Option<(f64, usize, usize)> = None;
        for (c, entry) in best.iter().enumerate().take(m - 1) {
            stats.cells_visited += 1;
            if let Some((d, t)) = *entry {
                if pick.is_none_or(|(pd, _, _)| d < pd) {
                    pick = Some((d, c, t));
                }
            }
        }
        let Some((d, a, b)) = pick else { break };
        if d > threshold {
            break;
        }
        stats.merges += 1;

        // Lance–Williams update: D(a∪b, c) from D(a, c) and D(b, c).
        // Index form: the body reads rows a and b while writing row a and
        // column a, which no single iterator borrow can express.
        #[allow(clippy::needless_range_loop)]
        for c in 0..m {
            if c == a || c == b {
                continue;
            }
            stats.cells_visited += 1;
            let v = match linkage {
                Linkage::Single => mat[a][c].min(mat[b][c]),
                Linkage::Complete => mat[a][c].max(mat[b][c]),
                Linkage::Average => mat[a][c] + mat[b][c],
            };
            mat[a][c] = v;
            mat[c][a] = v;
        }
        sizes[a] += sizes[b];

        // a < b, so removing b leaves index a stable (same bookkeeping as
        // the reference — final cluster indices match, not just partition).
        let merged = clusters.swap_remove(b);
        clusters[a].extend(merged);

        // Mirror the swap_remove in the matrix and side tables: the cluster
        // at the tail position moves into position b.
        let last = m - 1;
        if b != last {
            for row in mat.iter_mut() {
                row[b] = row[last];
            }
        }
        mat.swap_remove(b);
        sizes.swap_remove(b);
        best.swap_remove(b);

        let m_new = m - 1;
        // Repair nearest-neighbor rows. Row a changed wholesale; position b
        // holds a different cluster; other rows only need patching where
        // they referenced a, b, or the moved tail position.
        let mut recompute = vec![a];
        if b < m_new {
            recompute.push(b);
        }
        for (c, slot) in best.iter_mut().enumerate().take(m_new) {
            if c == a || c == b {
                continue;
            }
            let Some((mut d, mut t)) = *slot else {
                if c + 1 < m_new {
                    recompute.push(c);
                }
                continue;
            };
            if t == a || t == b {
                // Its nearest cluster was rewritten or replaced.
                recompute.push(c);
                continue;
            }
            if t == last {
                // Its nearest cluster moved from the tail into position b.
                if b > c {
                    t = b;
                } else {
                    recompute.push(c);
                    continue;
                }
            }
            // Surviving entries other than (c, a) and (c, b) are unchanged,
            // and best[c] never pointed at a removed value, so it remains
            // the tie-correct minimum of the unchanged set. Fold in the two
            // cells that did change.
            if a > c {
                stats.cells_visited += 1;
                let va = cell_distance(&mat, &sizes, linkage, c, a);
                if va < d || (va == d && a < t) {
                    d = va;
                    t = a;
                }
            }
            if b > c && b < m_new {
                stats.cells_visited += 1;
                let vb = cell_distance(&mat, &sizes, linkage, c, b);
                if vb < d || (vb == d && b < t) {
                    d = vb;
                    t = b;
                }
            }
            *slot = Some((d, t));
        }
        for &c in &recompute {
            best[c] = row_min(&mat, &sizes, linkage, m_new, c, &mut stats);
        }
        m = m_new;
    }

    let mut assignment = vec![0usize; n];
    for (c, members) in clusters.iter().enumerate() {
        for &p in members {
            assignment[p] = c;
        }
    }
    (assignment, stats)
}

/// Cluster-to-cluster distance read from one matrix cell.
fn cell_distance(mat: &[Vec<f64>], sizes: &[usize], linkage: Linkage, c: usize, x: usize) -> f64 {
    match linkage {
        Linkage::Average => mat[c][x] / (sizes[c] * sizes[x]) as f64,
        Linkage::Single | Linkage::Complete => mat[c][x],
    }
}

/// Nearest neighbor of row `c` among positions `c+1..m` (ties to the
/// smallest position via the strict `<`).
fn row_min(
    mat: &[Vec<f64>],
    sizes: &[usize],
    linkage: Linkage,
    m: usize,
    c: usize,
    stats: &mut HacStats,
) -> Option<(f64, usize)> {
    let mut cur: Option<(f64, usize)> = None;
    for x in c + 1..m {
        stats.cells_visited += 1;
        let v = cell_distance(mat, sizes, linkage, c, x);
        if cur.is_none_or(|(d, _)| v < d) {
            cur = Some((v, x));
        }
    }
    cur
}

/// The naive seed implementation: every selection round recomputes the
/// distance of every cluster pair from scratch over all member pairs
/// (O(n²) distance lookups per round, O(n³)+ overall). Kept as the golden
/// reference the Lance–Williams path is tested against.
pub fn agglomerative_clusters_reference(
    points: &[Embedding],
    linkage: Linkage,
    distance_threshold: f32,
) -> Vec<usize> {
    agglomerative_clusters_reference_with_stats(points, linkage, distance_threshold).0
}

/// [`agglomerative_clusters_reference`] plus merge-phase work counters.
pub fn agglomerative_clusters_reference_with_stats(
    points: &[Embedding],
    linkage: Linkage,
    distance_threshold: f32,
) -> (Vec<usize>, HacStats) {
    let n = points.len();
    let mut stats = HacStats::default();
    if n == 0 {
        return (Vec::new(), stats);
    }
    // Pairwise cosine distances.
    let mut dist = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let d = 1.0 - points[i].cosine(&points[j]);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    // Active clusters as member lists.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    loop {
        // Find the closest pair of clusters.
        let mut best: Option<(usize, usize, f32)> = None;
        for a in 0..clusters.len() {
            for b in a + 1..clusters.len() {
                let d = cluster_distance(&clusters[a], &clusters[b], &dist, linkage, &mut stats);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        match best {
            Some((a, b, d)) if d <= distance_threshold => {
                stats.merges += 1;
                // a < b, so removing b leaves index a stable.
                let merged = clusters.swap_remove(b);
                clusters[a].extend(merged);
            }
            _ => break,
        }
        if clusters.len() == 1 {
            break;
        }
    }
    let mut assignment = vec![0usize; n];
    for (c, members) in clusters.iter().enumerate() {
        for &m in members {
            assignment[m] = c;
        }
    }
    (assignment, stats)
}

fn cluster_distance(
    a: &[usize],
    b: &[usize],
    dist: &[Vec<f32>],
    linkage: Linkage,
    stats: &mut HacStats,
) -> f32 {
    stats.cells_visited += (a.len() * b.len()) as u64;
    let pairs = a.iter().flat_map(|&i| b.iter().map(move |&j| dist[i][j]));
    match linkage {
        Linkage::Average => {
            let (sum, count) = pairs.fold((0.0f32, 0usize), |(s, c), d| (s + d, c + 1));
            sum / count.max(1) as f32
        }
        Linkage::Single => pairs.fold(f32::INFINITY, f32::min),
        Linkage::Complete => pairs.fold(f32::NEG_INFINITY, f32::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn e(x: f32, y: f32) -> Embedding {
        Embedding::new(vec![x, y])
    }

    /// Seeded random unit-ish embeddings — the golden fixture generator.
    fn fixture(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Embedding::new((0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()))
            .collect()
    }

    #[test]
    fn merges_nearby_points() {
        // Two tight angular clusters.
        let points = vec![
            e(1.0, 0.0),
            e(0.99, 0.05),
            e(0.98, 0.1),
            e(0.0, 1.0),
            e(0.05, 0.99),
        ];
        let assignment = agglomerative_clusters(&points, Linkage::Average, 0.2);
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[1], assignment[2]);
        assert_eq!(assignment[3], assignment[4]);
        assert_ne!(assignment[0], assignment[3]);
    }

    #[test]
    fn zero_threshold_keeps_singletons() {
        let points = vec![e(1.0, 0.0), e(0.0, 1.0), e(-1.0, 0.0)];
        let assignment = agglomerative_clusters(&points, Linkage::Average, 0.0);
        let distinct: std::collections::HashSet<_> = assignment.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn huge_threshold_merges_everything() {
        let points = vec![e(1.0, 0.0), e(0.0, 1.0), e(-1.0, 0.0)];
        let assignment = agglomerative_clusters(&points, Linkage::Complete, 10.0);
        assert!(assignment.iter().all(|&c| c == assignment[0]));
    }

    #[test]
    fn linkages_differ_on_chains() {
        // A chain: single-linkage merges it all, complete keeps ends apart.
        let points = vec![e(1.0, 0.0), e(0.9, 0.43), e(0.62, 0.78), e(0.25, 0.97)];
        let single = agglomerative_clusters(&points, Linkage::Single, 0.15);
        let complete = agglomerative_clusters(&points, Linkage::Complete, 0.15);
        let n_clusters = |a: &[usize]| a.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(n_clusters(&single) <= n_clusters(&complete));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(agglomerative_clusters(&[], Linkage::Average, 0.5).is_empty());
        assert_eq!(agglomerative_clusters(&[e(1.0, 0.0)], Linkage::Average, 0.5), vec![0]);
    }

    /// Golden test: the Lance–Williams path yields the exact cluster
    /// indices of the seed implementation — every linkage, a sweep of
    /// thresholds, several seeded fixtures.
    #[test]
    fn matches_reference_on_golden_fixtures() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            for &threshold in &[0.0f32, 0.05, 0.15, 0.3, 0.6, 1.2, 10.0] {
                for seed in 0..4u64 {
                    let points = fixture(40, 8, seed);
                    let fast = agglomerative_clusters(&points, linkage, threshold);
                    let slow = agglomerative_clusters_reference(&points, linkage, threshold);
                    assert_eq!(
                        fast, slow,
                        "mismatch: {linkage:?} threshold={threshold} seed={seed}"
                    );
                }
            }
        }
    }

    /// Duplicate points produce exact distance ties everywhere — the
    /// tie-break order must still match the reference bit-for-bit.
    #[test]
    fn matches_reference_with_exact_ties() {
        let mut points = fixture(10, 4, 7);
        let dupes: Vec<Embedding> = points.to_vec();
        points.extend(dupes);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let fast = agglomerative_clusters(&points, linkage, 0.4);
            let slow = agglomerative_clusters_reference(&points, linkage, 0.4);
            assert_eq!(fast, slow, "tie mismatch for {linkage:?}");
        }
    }

    /// The ops counter proves the rescan is gone: merging n points to one
    /// cluster costs the reference Θ(n³)+ cell visits but Lance–Williams
    /// O(n²)-ish. Deterministic fixture → deterministic counts.
    #[test]
    fn no_per_merge_rescan() {
        let points = fixture(100, 8, 1);
        let (fast_assign, fast) =
            agglomerative_clusters_with_stats(&points, Linkage::Average, 10.0);
        let (slow_assign, slow) =
            agglomerative_clusters_reference_with_stats(&points, Linkage::Average, 10.0);
        assert_eq!(fast_assign, slow_assign);
        assert_eq!(fast.merges, slow.merges);
        assert_eq!(fast.merges, points.len() - 1, "everything merges at 10.0");
        assert!(
            fast.cells_visited * 10 < slow.cells_visited,
            "expected ≥10x fewer cell visits: LW={} reference={}",
            fast.cells_visited,
            slow.cells_visited
        );
        // And the LW merge phase stays within a small multiple of n².
        let n = points.len() as u64;
        assert!(
            fast.cells_visited < 8 * n * n,
            "LW merge phase should be O(n²)-ish, got {}",
            fast.cells_visited
        );
    }

    /// Thread count must not change assignments (the parallel part is the
    /// initial matrix fill).
    #[test]
    fn identical_across_thread_counts() {
        let points = fixture(30, 8, 3);
        let serial = allhands_par::with_threads(1, || {
            agglomerative_clusters(&points, Linkage::Average, 0.3)
        });
        for threads in [2, 5, 8] {
            let parallel = allhands_par::with_threads(threads, || {
                agglomerative_clusters(&points, Linkage::Average, 0.3)
            });
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    proptest! {
        /// Single/Complete linkage distances stay exact f32 values under
        /// Lance–Williams min/max, so equality with the reference holds for
        /// ANY input, not just golden fixtures.
        #[test]
        fn single_complete_always_match_reference(
            raw in proptest::collection::vec(
                proptest::collection::vec(0.05f32..1.0, 3), 2..24),
            complete in proptest::sample::select(vec![false, true]),
            threshold in 0.0f32..1.5,
        ) {
            let points: Vec<Embedding> =
                raw.into_iter().map(Embedding::new).collect();
            let linkage = if complete { Linkage::Complete } else { Linkage::Single };
            let fast = agglomerative_clusters(&points, linkage, threshold);
            let slow = agglomerative_clusters_reference(&points, linkage, threshold);
            prop_assert_eq!(fast, slow);
        }
    }
}
