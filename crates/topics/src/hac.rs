//! Hierarchical agglomerative clustering (Müllner 2011, naive O(n³)
//! implementation — the HITLR round clusters at most a few hundred topic
//! phrases, so simplicity wins over an NN-chain implementation).

use allhands_embed::Embedding;

/// Linkage criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Mean pairwise distance between clusters (UPGMA).
    Average,
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
}

/// Cluster `points` bottom-up, merging until every inter-cluster distance
/// exceeds `distance_threshold` (cosine distance = 1 − cosine similarity).
/// Returns cluster index per point.
pub fn agglomerative_clusters(
    points: &[Embedding],
    linkage: Linkage,
    distance_threshold: f32,
) -> Vec<usize> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // Pairwise cosine distances.
    let mut dist = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let d = 1.0 - points[i].cosine(&points[j]);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    // Active clusters as member lists.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    loop {
        // Find the closest pair of clusters.
        let mut best: Option<(usize, usize, f32)> = None;
        for a in 0..clusters.len() {
            for b in a + 1..clusters.len() {
                let d = cluster_distance(&clusters[a], &clusters[b], &dist, linkage);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        match best {
            Some((a, b, d)) if d <= distance_threshold => {
                // a < b, so removing b leaves index a stable.
                let merged = clusters.swap_remove(b);
                clusters[a].extend(merged);
            }
            _ => break,
        }
        if clusters.len() == 1 {
            break;
        }
    }
    let mut assignment = vec![0usize; n];
    for (c, members) in clusters.iter().enumerate() {
        for &m in members {
            assignment[m] = c;
        }
    }
    assignment
}

fn cluster_distance(a: &[usize], b: &[usize], dist: &[Vec<f32>], linkage: Linkage) -> f32 {
    let pairs = a.iter().flat_map(|&i| b.iter().map(move |&j| dist[i][j]));
    match linkage {
        Linkage::Average => {
            let (sum, count) = pairs.fold((0.0f32, 0usize), |(s, c), d| (s + d, c + 1));
            sum / count.max(1) as f32
        }
        Linkage::Single => pairs.fold(f32::INFINITY, f32::min),
        Linkage::Complete => pairs.fold(f32::NEG_INFINITY, f32::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(x: f32, y: f32) -> Embedding {
        Embedding::new(vec![x, y])
    }

    #[test]
    fn merges_nearby_points() {
        // Two tight angular clusters.
        let points = vec![
            e(1.0, 0.0),
            e(0.99, 0.05),
            e(0.98, 0.1),
            e(0.0, 1.0),
            e(0.05, 0.99),
        ];
        let assignment = agglomerative_clusters(&points, Linkage::Average, 0.2);
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[1], assignment[2]);
        assert_eq!(assignment[3], assignment[4]);
        assert_ne!(assignment[0], assignment[3]);
    }

    #[test]
    fn zero_threshold_keeps_singletons() {
        let points = vec![e(1.0, 0.0), e(0.0, 1.0), e(-1.0, 0.0)];
        let assignment = agglomerative_clusters(&points, Linkage::Average, 0.0);
        let distinct: std::collections::HashSet<_> = assignment.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn huge_threshold_merges_everything() {
        let points = vec![e(1.0, 0.0), e(0.0, 1.0), e(-1.0, 0.0)];
        let assignment = agglomerative_clusters(&points, Linkage::Complete, 10.0);
        assert!(assignment.iter().all(|&c| c == assignment[0]));
    }

    #[test]
    fn linkages_differ_on_chains() {
        // A chain: single-linkage merges it all, complete keeps ends apart.
        let points = vec![e(1.0, 0.0), e(0.9, 0.43), e(0.62, 0.78), e(0.25, 0.97)];
        let single = agglomerative_clusters(&points, Linkage::Single, 0.15);
        let complete = agglomerative_clusters(&points, Linkage::Complete, 0.15);
        let n_clusters = |a: &[usize]| a.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(n_clusters(&single) <= n_clusters(&complete));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(agglomerative_clusters(&[], Linkage::Average, 0.5).is_empty());
        assert_eq!(agglomerative_clusters(&[e(1.0, 0.0)], Linkage::Average, 0.5), vec![0]);
    }
}
