//! Topic-modeling baselines and evaluation metrics (paper Table 3).
//!
//! From-scratch implementations of the five extractive/neural baselines the
//! paper compares against — LDA (collapsed Gibbs), HDP (direct-assignment
//! sampler with topic creation), NMF (multiplicative updates), ProdLDA
//! (logistic-normal VAE with manual gradients), CTM (ProdLDA conditioned on
//! contextual sentence embeddings) — plus:
//!
//! - a T5-stand-in [`labeler`] that turns topic keyword lists into short
//!   labels (the paper summarizes baseline topics with T5);
//! - [`hac`]: hierarchical agglomerative clustering, used by the
//!   human-in-the-loop refinement round;
//! - [`metrics`]: the three Table 3 measures — a BARTScore substitute,
//!   pairwise NPMI coherence, and OthersRate.
//!
//! Every model consumes a [`Corpus`] (pruned document-term data) and
//! produces a [`TopicModelOutput`] so the Table 3 harness can treat them
//! uniformly.

pub mod corpus;
pub mod ctm;
pub mod hac;
pub mod hdp;
pub mod labeler;
pub mod lda;
pub mod metrics;
pub mod nmf;
pub mod prodlda;

pub use corpus::Corpus;
pub use hac::{agglomerative_clusters, Linkage};
pub use labeler::label_topic;
pub use metrics::{bart_score, npmi_coherence, others_rate, BartScorer};

/// Uniform output of every baseline topic model.
#[derive(Debug, Clone)]
pub struct TopicModelOutput {
    /// Top words per topic (descending weight), `top_words[k]`.
    pub top_words: Vec<Vec<String>>,
    /// Per-document dominant topic index; `None` = unassigned ("others").
    pub doc_topic: Vec<Option<usize>>,
    /// Per-document topic-probability of the dominant topic.
    pub doc_confidence: Vec<f64>,
}

impl TopicModelOutput {
    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.top_words.len()
    }

    /// Mark documents whose dominant-topic confidence is below `threshold`
    /// as unassigned (the "others" bucket the OthersRate metric counts).
    pub fn apply_confidence_threshold(&mut self, threshold: f64) {
        for (slot, &conf) in self.doc_topic.iter_mut().zip(&self.doc_confidence) {
            if conf < threshold {
                *slot = None;
            }
        }
    }
}
