//! Document-term corpus construction with vocabulary pruning.

use allhands_text::{preprocess, Vocabulary};

/// A pruned bag-of-words corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Pruned vocabulary (ids are corpus-local).
    pub vocab: Vocabulary,
    /// Token-id sequence per document (pruned terms removed).
    pub docs: Vec<Vec<u32>>,
    /// The original texts (for labeling and BARTScore).
    pub texts: Vec<String>,
}

impl Corpus {
    /// Build from raw texts: standard preprocessing, then drop terms with
    /// document frequency < `min_df` or > `max_df_frac` of documents.
    pub fn build<S: AsRef<str>>(texts: &[S], min_df: u64, max_df_frac: f64) -> Corpus {
        Self::build_capped(texts, min_df, max_df_frac, usize::MAX)
    }

    /// Like [`Corpus::build`] with an additional cap on vocabulary size:
    /// only the `max_terms` highest-document-frequency terms survive.
    /// Dense-decoder models (ProdLDA/CTM) need a bounded vocabulary.
    pub fn build_capped<S: AsRef<str>>(
        texts: &[S],
        min_df: u64,
        max_df_frac: f64,
        max_terms: usize,
    ) -> Corpus {
        // First pass: full vocabulary with df counts.
        let mut full = Vocabulary::new();
        let tokenized: Vec<Vec<String>> = texts
            .iter()
            .map(|t| {
                let toks = preprocess(t.as_ref());
                full.add_document(toks.iter().map(String::as_str));
                toks
            })
            .collect();
        let max_df = (texts.len() as f64 * max_df_frac).ceil() as u64;
        // Document-frequency cutoff implementing the max_terms cap.
        let df_floor = {
            let mut dfs: Vec<u64> = (0..full.len() as u32).map(|id| full.doc_freq(id)).collect();
            dfs.sort_unstable_by(|a, b| b.cmp(a));
            dfs.get(max_terms.saturating_sub(1)).copied().unwrap_or(0).max(min_df)
        };

        // Second pass: re-intern surviving terms into a compact vocabulary.
        let mut vocab = Vocabulary::new();
        let mut docs = Vec::with_capacity(texts.len());
        for toks in &tokenized {
            let kept: Vec<&str> = toks
                .iter()
                .filter(|t| {
                    full.id_of(t)
                        .map(|id| {
                            let df = full.doc_freq(id);
                            df >= df_floor && df <= max_df && !t.starts_with('<')
                        })
                        .unwrap_or(false)
                })
                .map(String::as_str)
                .collect();
            docs.push(vocab.add_document(kept));
        }
        Corpus {
            vocab,
            docs,
            texts: texts.iter().map(|t| t.as_ref().to_string()).collect(),
        }
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.docs.len()
    }

    /// Vocabulary size.
    pub fn n_terms(&self) -> usize {
        self.vocab.len()
    }

    /// Per-document term counts as `(term, count)` pairs.
    pub fn doc_term_counts(&self, doc: usize) -> Vec<(u32, u32)> {
        let mut sorted = self.docs[doc].clone();
        sorted.sort_unstable();
        let mut out: Vec<(u32, u32)> = Vec::new();
        for id in sorted {
            match out.last_mut() {
                Some((last, n)) if *last == id => *n += 1,
                _ => out.push((id, 1)),
            }
        }
        out
    }

    /// TF-IDF value for a `(doc, term, count)` triple.
    pub fn tfidf(&self, count: u32, term: u32) -> f32 {
        count as f32 * self.vocab.idf(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_drops_rare_and_ubiquitous() {
        let texts: Vec<String> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    format!("common crash report uniqueword{i}")
                } else {
                    format!("common praise note uniqueword{i}")
                }
            })
            .collect();
        let corpus = Corpus::build(&texts, 2, 0.8);
        // "uniqueword{i}" appears once each → pruned by min_df.
        assert!(corpus.vocab.id_of("uniqueword0").is_none());
        // "crash" survives.
        assert!(corpus.vocab.id_of("crash").is_some());
        // "common" appears in 100% of docs → pruned by max_df.
        assert!(corpus.vocab.id_of("common").is_none());
    }

    #[test]
    fn doc_term_counts_aggregate() {
        let corpus = Corpus::build(&["crash crash bug", "crash bug bug"], 1, 1.0);
        let counts = corpus.doc_term_counts(0);
        let crash = corpus.vocab.id_of("crash").unwrap();
        assert!(counts.contains(&(crash, 2)));
    }

    #[test]
    fn empty_docs_are_kept_as_empty() {
        let corpus = Corpus::build(&["crash bug crash bug", ""], 1, 1.0);
        assert_eq!(corpus.n_docs(), 2);
        assert!(corpus.docs[1].is_empty());
    }
}
