//! Latent Dirichlet Allocation via collapsed Gibbs sampling
//! (Griffiths & Steyvers 2004).

use crate::corpus::Corpus;
use crate::TopicModelOutput;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// LDA hyperparameters.
#[derive(Debug, Clone)]
pub struct LdaConfig {
    /// Number of topics.
    pub k: usize,
    /// Symmetric document-topic prior.
    pub alpha: f64,
    /// Symmetric topic-word prior.
    pub beta: f64,
    /// Gibbs sweeps.
    pub iterations: usize,
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig { k: 15, alpha: 0.1, beta: 0.01, iterations: 120, seed: 7 }
    }
}

/// A fitted LDA model (counts retained for inspection).
pub struct LdaModel {
    config: LdaConfig,
    /// `topic_word[k][v]` counts.
    topic_word: Vec<Vec<u32>>,
    /// `doc_topic[d][k]` counts.
    doc_topic: Vec<Vec<u32>>,
    /// Totals per topic.
    topic_totals: Vec<u32>,
}

/// Fit LDA on a corpus.
pub fn fit_lda(corpus: &Corpus, config: &LdaConfig) -> LdaModel {
    assert!(config.k >= 2, "k must be >= 2");
    let k = config.k;
    let v = corpus.n_terms().max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    let mut topic_word = vec![vec![0u32; v]; k];
    let mut doc_topic = vec![vec![0u32; k]; corpus.n_docs()];
    let mut topic_totals = vec![0u32; k];
    // Current topic assignment per token position.
    let mut assignments: Vec<Vec<usize>> = Vec::with_capacity(corpus.n_docs());

    // Random initialization.
    for (d, doc) in corpus.docs.iter().enumerate() {
        let mut z = Vec::with_capacity(doc.len());
        for &term in doc {
            let t = rng.gen_range(0..k);
            z.push(t);
            topic_word[t][term as usize] += 1;
            doc_topic[d][t] += 1;
            topic_totals[t] += 1;
        }
        assignments.push(z);
    }

    let alpha = config.alpha;
    let beta = config.beta;
    let v_beta = v as f64 * beta;
    let mut probs = vec![0.0f64; k];

    for _ in 0..config.iterations {
        for (d, doc) in corpus.docs.iter().enumerate() {
            for (pos, &term) in doc.iter().enumerate() {
                let old = assignments[d][pos];
                // Remove the token from the counts.
                topic_word[old][term as usize] -= 1;
                doc_topic[d][old] -= 1;
                topic_totals[old] -= 1;

                // Full conditional.
                let mut total = 0.0f64;
                for (t, p) in probs.iter_mut().enumerate() {
                    let tw = topic_word[t][term as usize] as f64;
                    let dt = doc_topic[d][t] as f64;
                    *p = (dt + alpha) * (tw + beta) / (topic_totals[t] as f64 + v_beta);
                    total += *p;
                }
                // Sample.
                let mut target = rng.gen_range(0.0..total);
                let mut new = k - 1;
                for (t, &p) in probs.iter().enumerate() {
                    target -= p;
                    if target <= 0.0 {
                        new = t;
                        break;
                    }
                }
                assignments[d][pos] = new;
                topic_word[new][term as usize] += 1;
                doc_topic[d][new] += 1;
                topic_totals[new] += 1;
            }
        }
    }

    LdaModel { config: config.clone(), topic_word, doc_topic, topic_totals }
}

impl LdaModel {
    /// Top `n` words of topic `t` (descending probability).
    pub fn top_words(&self, corpus: &Corpus, t: usize, n: usize) -> Vec<String> {
        let mut ids: Vec<u32> = (0..corpus.n_terms() as u32).collect();
        ids.sort_by(|&a, &b| {
            self.topic_word[t][b as usize]
                .cmp(&self.topic_word[t][a as usize])
                .then(a.cmp(&b))
        });
        ids.into_iter()
            .take(n)
            .filter(|&id| self.topic_word[t][id as usize] > 0)
            .filter_map(|id| corpus.vocab.token_of(id).map(str::to_string))
            .collect()
    }

    /// Document-topic distribution (posterior mean).
    pub fn doc_distribution(&self, d: usize) -> Vec<f64> {
        let counts = &self.doc_topic[d];
        let total: u32 = counts.iter().sum();
        let denom = total as f64 + self.config.k as f64 * self.config.alpha;
        counts
            .iter()
            .map(|&c| (c as f64 + self.config.alpha) / denom)
            .collect()
    }

    /// Convert to the uniform output shape.
    pub fn output(&self, corpus: &Corpus, top_n: usize) -> TopicModelOutput {
        let top_words = (0..self.config.k)
            .map(|t| self.top_words(corpus, t, top_n))
            .collect();
        let mut doc_topic = Vec::with_capacity(corpus.n_docs());
        let mut doc_confidence = Vec::with_capacity(corpus.n_docs());
        for d in 0..corpus.n_docs() {
            if corpus.docs[d].is_empty() {
                doc_topic.push(None);
                doc_confidence.push(0.0);
                continue;
            }
            let dist = self.doc_distribution(d);
            let (best, conf) = dist
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, &p)| (i, p))
                .expect("k >= 2");
            doc_topic.push(Some(best));
            doc_confidence.push(conf);
        }
        TopicModelOutput { top_words, doc_topic, doc_confidence }
    }

    /// Total topic-word count mass (for tests).
    pub fn total_tokens(&self) -> u32 {
        self.topic_totals.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two obvious themes: crashes and praise.
    fn corpus() -> Corpus {
        let mut texts = Vec::new();
        for i in 0..30 {
            texts.push(format!("app crash bug error freeze broken crash {i}"));
            texts.push(format!("love great amazing wonderful smooth fast {i}"));
        }
        Corpus::build(&texts, 2, 1.0)
    }

    #[test]
    fn recovers_two_themes() {
        let c = corpus();
        let model = fit_lda(&c, &LdaConfig { k: 2, iterations: 80, ..Default::default() });
        let out = model.output(&c, 5);
        // One topic should be crash-flavoured, the other praise-flavoured.
        let joined: Vec<String> = out.top_words.iter().map(|w| w.join(" ")).collect();
        let crash_topic = joined.iter().position(|w| w.contains("crash")).expect("crash topic");
        let praise_topic = joined.iter().position(|w| w.contains("love") || w.contains("great"))
            .expect("praise topic");
        assert_ne!(crash_topic, praise_topic);
        // Documents should separate accordingly.
        assert_eq!(out.doc_topic[0], Some(crash_topic));
        assert_eq!(out.doc_topic[1], Some(praise_topic));
    }

    #[test]
    fn counts_conserved() {
        let c = corpus();
        let total_tokens: usize = c.docs.iter().map(Vec::len).sum();
        let model = fit_lda(&c, &LdaConfig { k: 3, iterations: 10, ..Default::default() });
        assert_eq!(model.total_tokens() as usize, total_tokens);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = corpus();
        let a = fit_lda(&c, &LdaConfig { k: 2, iterations: 20, seed: 3, ..Default::default() });
        let b = fit_lda(&c, &LdaConfig { k: 2, iterations: 20, seed: 3, ..Default::default() });
        assert_eq!(a.top_words(&c, 0, 5), b.top_words(&c, 0, 5));
    }

    #[test]
    fn doc_distribution_sums_to_one() {
        let c = corpus();
        let model = fit_lda(&c, &LdaConfig { k: 4, iterations: 10, ..Default::default() });
        let dist = model.doc_distribution(0);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_docs_unassigned() {
        let c = Corpus::build(&["crash bug crash bug", ""], 1, 1.0);
        let model = fit_lda(&c, &LdaConfig { k: 2, iterations: 10, ..Default::default() });
        let out = model.output(&c, 3);
        assert_eq!(out.doc_topic[1], None);
    }
}
