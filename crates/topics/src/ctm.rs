//! Contextualized Topic Model (Bianchi et al. 2020): ProdLDA whose encoder
//! consumes pre-trained contextual sentence embeddings instead of
//! bag-of-words. The decoder still reconstructs the BoW, so topics remain
//! word distributions, but assignment benefits from contextual semantics.

use crate::corpus::Corpus;
use crate::prodlda::{fit_neural, NeuralTopicModel, ProdLdaConfig};
use allhands_embed::{EmbedderConfig, SentenceEmbedder};

/// Fit CTM: embeds the corpus texts with a sentence embedder and trains the
/// shared neural topic model on those features. Returns the model plus the
/// embedding features (needed for inference on the same documents).
pub fn fit_ctm(
    corpus: &Corpus,
    config: &ProdLdaConfig,
) -> (NeuralTopicModel, Vec<Vec<f32>>) {
    let mut embedder = SentenceEmbedder::new(EmbedderConfig {
        dims: 128,
        ..EmbedderConfig::default()
    });
    embedder.fit(&corpus.texts);
    let features: Vec<Vec<f32>> = corpus
        .texts
        .iter()
        .map(|t| embedder.embed(t).into_vec())
        .collect();
    let model = fit_neural(corpus, &features, config);
    (model, features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    fn corpus() -> Corpus {
        let mut texts = Vec::new();
        for i in 0..25 {
            texts.push(format!("crash bug error freeze broken {i}"));
            texts.push(format!("love great amazing wonderful fast {i}"));
        }
        Corpus::build(&texts, 2, 1.0)
    }

    #[test]
    fn produces_consistent_output() {
        let c = corpus();
        let (model, features) =
            fit_ctm(&c, &ProdLdaConfig { k: 2, epochs: 30, learning_rate: 0.08, seed: 4 });
        let out = model.output(&c, &features, 5);
        assert_eq!(out.top_words.len(), 2);
        assert_eq!(out.doc_topic.len(), c.n_docs());
        // The contextual space should separate the two themes.
        assert_ne!(out.doc_topic[0], out.doc_topic[1]);
    }

    #[test]
    fn feature_dim_is_embedding_dim() {
        let c = corpus();
        let (_, features) = fit_ctm(&c, &ProdLdaConfig { k: 2, epochs: 2, ..Default::default() });
        assert_eq!(features[0].len(), 128);
    }
}
