//! Hierarchical Dirichlet Process topic model, direct-assignment collapsed
//! sampler with on-the-fly topic creation (Teh et al. 2004, simplified:
//! a truncation cap and fixed concentration parameters).
//!
//! Unlike LDA, the number of topics is inferred: a token may sit at an
//! existing topic (probability ∝ usage) or open a new one (∝ `gamma`),
//! so the model grows/shrinks its topic inventory with the data.

use crate::corpus::Corpus;
use crate::TopicModelOutput;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// HDP hyperparameters.
#[derive(Debug, Clone)]
pub struct HdpConfig {
    /// New-topic concentration.
    pub gamma: f64,
    /// Document-level concentration.
    pub alpha: f64,
    /// Topic-word prior.
    pub beta: f64,
    /// Hard cap on topic count (truncation).
    pub max_topics: usize,
    pub iterations: usize,
    pub seed: u64,
}

impl Default for HdpConfig {
    fn default() -> Self {
        HdpConfig { gamma: 1.5, alpha: 0.5, beta: 0.01, max_topics: 50, iterations: 100, seed: 11 }
    }
}

/// A fitted HDP model.
pub struct HdpModel {
    config: HdpConfig,
    topic_word: Vec<Vec<u32>>,
    doc_topic: Vec<Vec<u32>>,
    topic_totals: Vec<u32>,
    /// Indices of topics still in use.
    live: Vec<usize>,
}

/// Fit the HDP sampler.
pub fn fit_hdp(corpus: &Corpus, config: &HdpConfig) -> HdpModel {
    let v = corpus.n_terms().max(1);
    let v_beta = v as f64 * config.beta;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    let mut topic_word: Vec<Vec<u32>> = Vec::new();
    let mut topic_totals: Vec<u32> = Vec::new();
    let mut doc_topic: Vec<Vec<u32>> = vec![Vec::new(); corpus.n_docs()];
    let mut assignments: Vec<Vec<usize>> = Vec::with_capacity(corpus.n_docs());

    // Helper to ensure doc_topic rows track the global topic count.
    fn ensure_len(row: &mut Vec<u32>, len: usize) {
        if row.len() < len {
            row.resize(len, 0);
        }
    }

    // Initialize: every token starts in topic 0.
    topic_word.push(vec![0u32; v]);
    topic_totals.push(0);
    for (d, doc) in corpus.docs.iter().enumerate() {
        ensure_len(&mut doc_topic[d], 1);
        let mut z = Vec::with_capacity(doc.len());
        for &term in doc {
            z.push(0usize);
            topic_word[0][term as usize] += 1;
            topic_totals[0] += 1;
            doc_topic[d][0] += 1;
        }
        assignments.push(z);
    }

    for _ in 0..config.iterations {
        for (d, doc) in corpus.docs.iter().enumerate() {
            for (pos, &term) in doc.iter().enumerate() {
                let old = assignments[d][pos];
                topic_word[old][term as usize] -= 1;
                topic_totals[old] -= 1;
                doc_topic[d][old] -= 1;

                let k = topic_word.len();
                ensure_len(&mut doc_topic[d], k);
                // Probabilities for existing topics + one slot for "new".
                let mut probs = Vec::with_capacity(k + 1);
                let mut total = 0.0f64;
                for t in 0..k {
                    let p = if topic_totals[t] == 0 {
                        0.0 // dead topic: only reachable via the "new" slot
                    } else {
                        (doc_topic[d][t] as f64 + config.alpha)
                            * (topic_word[t][term as usize] as f64 + config.beta)
                            / (topic_totals[t] as f64 + v_beta)
                    };
                    probs.push(p);
                    total += p;
                }
                let p_new = if k < config.max_topics {
                    config.gamma * config.alpha / v as f64
                } else {
                    0.0
                };
                probs.push(p_new);
                total += p_new;

                let mut target = rng.gen_range(0.0..total);
                let mut choice = probs.len() - 1;
                for (t, &p) in probs.iter().enumerate() {
                    target -= p;
                    if target <= 0.0 {
                        choice = t;
                        break;
                    }
                }
                // Floating-point residue can leave `choice` at the "new
                // topic" slot even when p_new == 0 (truncation reached);
                // fall back to the likeliest existing topic.
                if choice == k && p_new == 0.0 {
                    choice = probs[..k]
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(t, _)| t)
                        .unwrap_or(0);
                }
                let new = if choice == k {
                    // Open a new topic — reuse a dead slot if one exists.
                    if let Some(dead) = topic_totals.iter().position(|&n| n == 0) {
                        dead
                    } else {
                        topic_word.push(vec![0u32; v]);
                        topic_totals.push(0);
                        ensure_len(&mut doc_topic[d], topic_word.len());
                        topic_word.len() - 1
                    }
                } else {
                    choice
                };
                ensure_len(&mut doc_topic[d], topic_word.len());
                assignments[d][pos] = new;
                topic_word[new][term as usize] += 1;
                topic_totals[new] += 1;
                doc_topic[d][new] += 1;
            }
        }
    }

    let live: Vec<usize> = topic_totals
        .iter()
        .enumerate()
        .filter_map(|(t, &n)| (n > 0).then_some(t))
        .collect();
    HdpModel { config: config.clone(), topic_word, doc_topic, topic_totals, live }
}

impl HdpModel {
    /// Number of topics actually in use.
    pub fn n_live_topics(&self) -> usize {
        self.live.len()
    }

    /// Convert to the uniform output (live topics renumbered densely).
    pub fn output(&self, corpus: &Corpus, top_n: usize) -> TopicModelOutput {
        let remap: std::collections::HashMap<usize, usize> = self
            .live
            .iter()
            .enumerate()
            .map(|(dense, &sparse)| (sparse, dense))
            .collect();
        let top_words: Vec<Vec<String>> = self
            .live
            .iter()
            .map(|&t| {
                let mut ids: Vec<u32> = (0..corpus.n_terms() as u32).collect();
                ids.sort_by(|&a, &b| {
                    self.topic_word[t][b as usize]
                        .cmp(&self.topic_word[t][a as usize])
                        .then(a.cmp(&b))
                });
                ids.into_iter()
                    .take(top_n)
                    .filter(|&id| self.topic_word[t][id as usize] > 0)
                    .filter_map(|id| corpus.vocab.token_of(id).map(str::to_string))
                    .collect()
            })
            .collect();

        let mut doc_topic = Vec::with_capacity(corpus.n_docs());
        let mut doc_confidence = Vec::with_capacity(corpus.n_docs());
        for d in 0..corpus.n_docs() {
            let counts = &self.doc_topic[d];
            let total: u32 = counts.iter().sum();
            if total == 0 {
                doc_topic.push(None);
                doc_confidence.push(0.0);
                continue;
            }
            let denom = total as f64 + self.config.alpha * self.live.len() as f64;
            let (best, conf) = self
                .live
                .iter()
                .map(|&t| {
                    let c = counts.get(t).copied().unwrap_or(0);
                    (t, (c as f64 + self.config.alpha) / denom)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("at least one live topic");
            doc_topic.push(remap.get(&best).copied());
            doc_confidence.push(conf);
        }
        TopicModelOutput { top_words, doc_topic, doc_confidence }
    }

    /// Mass conservation check hook.
    pub fn total_tokens(&self) -> u32 {
        self.topic_totals.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut texts = Vec::new();
        for i in 0..25 {
            texts.push(format!("crash bug error freeze broken {i}"));
            texts.push(format!("love great amazing wonderful fast {i}"));
            texts.push(format!("battery drain power charging heat {i}"));
        }
        Corpus::build(&texts, 2, 1.0)
    }

    #[test]
    fn infers_topic_count_in_range() {
        let c = corpus();
        let model = fit_hdp(&c, &HdpConfig { iterations: 60, ..Default::default() });
        let k = model.n_live_topics();
        assert!(k >= 2, "too few topics: {k}");
        assert!(k <= 50, "truncation violated: {k}");
    }

    #[test]
    fn counts_conserved() {
        let c = corpus();
        let total: usize = c.docs.iter().map(Vec::len).sum();
        let model = fit_hdp(&c, &HdpConfig { iterations: 15, ..Default::default() });
        assert_eq!(model.total_tokens() as usize, total);
    }

    #[test]
    fn output_shape_consistent() {
        let c = corpus();
        let model = fit_hdp(&c, &HdpConfig { iterations: 30, ..Default::default() });
        let out = model.output(&c, 8);
        assert_eq!(out.top_words.len(), model.n_live_topics());
        assert_eq!(out.doc_topic.len(), c.n_docs());
        for dt in out.doc_topic.iter().flatten() {
            assert!(*dt < out.top_words.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = corpus();
        let cfg = HdpConfig { iterations: 20, seed: 5, ..Default::default() };
        assert_eq!(
            fit_hdp(&c, &cfg).n_live_topics(),
            fit_hdp(&c, &cfg).n_live_topics()
        );
    }
}
