//! Non-negative matrix factorization (Lee & Seung 2000) on the TF-IDF
//! document-term matrix, with Frobenius-norm multiplicative updates.
//!
//! `X ≈ W · H` with `W: docs × k` (document-topic loadings) and
//! `H: k × terms` (topic-word loadings). X is kept sparse.

use crate::corpus::Corpus;
use crate::TopicModelOutput;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// NMF hyperparameters.
#[derive(Debug, Clone)]
pub struct NmfConfig {
    pub k: usize,
    pub iterations: usize,
    pub seed: u64,
}

impl Default for NmfConfig {
    fn default() -> Self {
        NmfConfig { k: 15, iterations: 80, seed: 13 }
    }
}

/// A fitted NMF model.
pub struct NmfModel {
    /// docs × k.
    pub w: Vec<Vec<f32>>,
    /// k × terms.
    pub h: Vec<Vec<f32>>,
    k: usize,
}

/// Fit NMF on the corpus's TF-IDF matrix.
pub fn fit_nmf(corpus: &Corpus, config: &NmfConfig) -> NmfModel {
    assert!(config.k >= 2, "k must be >= 2");
    let k = config.k;
    let n = corpus.n_docs();
    let v = corpus.n_terms().max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Sparse X rows: (term, tfidf).
    let x: Vec<Vec<(u32, f32)>> = (0..n)
        .map(|d| {
            corpus
                .doc_term_counts(d)
                .into_iter()
                .map(|(t, c)| (t, corpus.tfidf(c, t)))
                .collect()
        })
        .collect();

    let mut w: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..k).map(|_| rng.gen_range(0.01..1.0)).collect())
        .collect();
    let mut h: Vec<Vec<f32>> = (0..k)
        .map(|_| (0..v).map(|_| rng.gen_range(0.01..1.0)).collect())
        .collect();
    const EPS: f32 = 1e-9;

    for _ in 0..config.iterations {
        // ---- update H: H <- H * (WᵀX) / (WᵀWH) ----
        // WᵀX (k × v): accumulate over sparse X.
        let mut wtx = vec![vec![0.0f32; v]; k];
        for (d, row) in x.iter().enumerate() {
            for &(term, val) in row {
                for t in 0..k {
                    wtx[t][term as usize] += w[d][t] * val;
                }
            }
        }
        // WᵀW (k × k).
        let mut wtw = vec![vec![0.0f32; k]; k];
        for wd in &w {
            for a in 0..k {
                for b in 0..k {
                    wtw[a][b] += wd[a] * wd[b];
                }
            }
        }
        // (WᵀW)H (k × v) and the update.
        for t in 0..k {
            for term in 0..v {
                let mut denom = 0.0f32;
                for (s, wtw_row) in wtw[t].iter().enumerate() {
                    denom += wtw_row * h[s][term];
                }
                h[t][term] *= wtx[t][term] / (denom + EPS);
            }
        }

        // ---- update W: W <- W * (XHᵀ) / (WHHᵀ) ----
        // HHᵀ (k × k).
        let mut hht = vec![vec![0.0f32; k]; k];
        for a in 0..k {
            for b in 0..k {
                let mut s = 0.0f32;
                for (ha, hb) in h[a].iter().zip(&h[b]).take(v) {
                    s += ha * hb;
                }
                hht[a][b] = s;
            }
        }
        for (d, row) in x.iter().enumerate() {
            // XHᵀ row (1 × k) from the sparse doc row.
            let mut xht = vec![0.0f32; k];
            for &(term, val) in row {
                for t in 0..k {
                    xht[t] += val * h[t][term as usize];
                }
            }
            for t in 0..k {
                let mut denom = 0.0f32;
                for s in 0..k {
                    denom += w[d][s] * hht[s][t];
                }
                w[d][t] *= xht[t] / (denom + EPS);
            }
        }
    }
    NmfModel { w, h, k }
}

impl NmfModel {
    /// Reconstruction error ‖X − WH‖² over the sparse support plus the
    /// implicit zeros contribution is expensive; we report the support-only
    /// residual, which still decreases monotonically for these updates.
    pub fn support_residual(&self, corpus: &Corpus) -> f64 {
        let mut err = 0.0f64;
        for d in 0..corpus.n_docs() {
            for (term, count) in corpus.doc_term_counts(d) {
                let x = corpus.tfidf(count, term) as f64;
                let mut approx = 0.0f64;
                for t in 0..self.k {
                    approx += (self.w[d][t] * self.h[t][term as usize]) as f64;
                }
                err += (x - approx).powi(2);
            }
        }
        err
    }

    /// Convert to the uniform output shape.
    pub fn output(&self, corpus: &Corpus, top_n: usize) -> TopicModelOutput {
        let top_words: Vec<Vec<String>> = (0..self.k)
            .map(|t| {
                let mut ids: Vec<u32> = (0..corpus.n_terms() as u32).collect();
                ids.sort_by(|&a, &b| {
                    self.h[t][b as usize]
                        .partial_cmp(&self.h[t][a as usize])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                ids.into_iter()
                    .take(top_n)
                    .filter(|&id| self.h[t][id as usize] > 1e-6)
                    .filter_map(|id| corpus.vocab.token_of(id).map(str::to_string))
                    .collect()
            })
            .collect();
        let mut doc_topic = Vec::with_capacity(corpus.n_docs());
        let mut doc_confidence = Vec::with_capacity(corpus.n_docs());
        for d in 0..corpus.n_docs() {
            let row = &self.w[d];
            let total: f32 = row.iter().sum();
            if corpus.docs[d].is_empty() || total <= 1e-9 {
                doc_topic.push(None);
                doc_confidence.push(0.0);
                continue;
            }
            let (best, val) = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, &v)| (i, v))
                .expect("k >= 2");
            doc_topic.push(Some(best));
            doc_confidence.push((val / total) as f64);
        }
        TopicModelOutput { top_words, doc_topic, doc_confidence }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut texts = Vec::new();
        for i in 0..25 {
            texts.push(format!("crash bug error freeze broken {i}"));
            texts.push(format!("love great amazing wonderful fast {i}"));
        }
        Corpus::build(&texts, 2, 1.0)
    }

    #[test]
    fn residual_decreases_with_iterations() {
        let c = corpus();
        let short = fit_nmf(&c, &NmfConfig { k: 2, iterations: 2, seed: 1 });
        let long = fit_nmf(&c, &NmfConfig { k: 2, iterations: 60, seed: 1 });
        assert!(long.support_residual(&c) < short.support_residual(&c));
    }

    #[test]
    fn separates_themes() {
        let c = corpus();
        let model = fit_nmf(&c, &NmfConfig { k: 2, iterations: 80, seed: 1 });
        let out = model.output(&c, 5);
        assert_ne!(out.doc_topic[0], out.doc_topic[1]);
        let joined: Vec<String> = out.top_words.iter().map(|w| w.join(" ")).collect();
        assert!(joined.iter().any(|w| w.contains("crash")));
        assert!(joined.iter().any(|w| w.contains("love") || w.contains("great")));
    }

    #[test]
    fn factors_stay_nonnegative() {
        let c = corpus();
        let model = fit_nmf(&c, &NmfConfig { k: 3, iterations: 20, seed: 2 });
        assert!(model.w.iter().flatten().all(|&v| v >= 0.0));
        assert!(model.h.iter().flatten().all(|&v| v >= 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let c = corpus();
        let a = fit_nmf(&c, &NmfConfig { k: 2, iterations: 10, seed: 9 });
        let b = fit_nmf(&c, &NmfConfig { k: 2, iterations: 10, seed: 9 });
        assert_eq!(a.w[0], b.w[0]);
    }
}
