//! The five transformer stand-ins of paper Table 2.

use crate::eval::LabeledExample;
use crate::features::{FeatureConfig, Featurizer};
use crate::softmax::{SoftmaxClassifier, TrainConfig};
use std::collections::HashMap;

/// Full configuration of one baseline: featurizer + training recipe.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Display name as in the paper's table.
    pub name: &'static str,
    pub features: FeatureConfig,
    pub training: TrainConfig,
}

/// The standard five baselines, in the paper's row order.
pub fn standard_baselines() -> Vec<BaselineConfig> {
    vec![
        BaselineConfig {
            name: "BERT",
            features: FeatureConfig { dims: 1 << 15, bigrams: true, ..Default::default() },
            training: TrainConfig { epochs: 8, ..Default::default() },
        },
        BaselineConfig {
            name: "DistilBERT",
            // Distillation: half the capacity, a shorter schedule.
            features: FeatureConfig { dims: 1 << 12, bigrams: false, ..Default::default() },
            training: TrainConfig { epochs: 4, ..Default::default() },
        },
        BaselineConfig {
            name: "ALBERT",
            // Parameter sharing: small space, longer schedule compensates.
            features: FeatureConfig { dims: 1 << 13, bigrams: true, ..Default::default() },
            training: TrainConfig { epochs: 10, ..Default::default() },
        },
        BaselineConfig {
            name: "RoBERTa",
            // Better recipe: more epochs + dynamic feature dropout.
            features: FeatureConfig { dims: 1 << 15, bigrams: true, ..Default::default() },
            training: TrainConfig { epochs: 14, feature_dropout: 0.1, ..Default::default() },
        },
        BaselineConfig {
            name: "XLM-RoBERTa",
            // Multilingual tokenizer: folding + subword char-n-grams.
            features: FeatureConfig {
                dims: 1 << 15,
                bigrams: true,
                char_ngram: 3,
                fold_diacritics: true,
                ..Default::default()
            },
            training: TrainConfig { epochs: 12, feature_dropout: 0.05, ..Default::default() },
        },
    ]
}

/// Look up one of the standard baselines by (case-insensitive) name.
pub fn baseline_by_name(name: &str) -> Option<BaselineConfig> {
    standard_baselines()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

/// A trained stand-in model.
pub struct TransformerStandIn {
    /// Baseline name.
    pub name: &'static str,
    featurizer: Featurizer,
    model: SoftmaxClassifier,
    labels: Vec<String>,
}

impl TransformerStandIn {
    /// Fine-tune the stand-in on labeled examples. The label set is
    /// collected from the training data in first-appearance order.
    ///
    /// Panics on an empty training set or a single-label one.
    pub fn train(config: &BaselineConfig, train: &[LabeledExample]) -> Self {
        assert!(!train.is_empty(), "cannot train on an empty set");
        let mut labels: Vec<String> = Vec::new();
        let mut label_index: HashMap<&str, usize> = HashMap::new();
        for ex in train {
            if !label_index.contains_key(ex.label.as_str()) {
                label_index.insert(&ex.label, labels.len());
                labels.push(ex.label.clone());
            }
        }
        let featurizer = Featurizer::new(config.features.clone());
        let examples: Vec<_> = train
            .iter()
            .map(|ex| (featurizer.featurize(&ex.text), label_index[ex.label.as_str()]))
            .collect();
        let model =
            SoftmaxClassifier::train(&examples, labels.len(), featurizer.dims(), &config.training);
        TransformerStandIn { name: config.name, featurizer, model, labels }
    }

    /// Predict the label of `text`.
    pub fn predict(&self, text: &str) -> &str {
        let idx = self.model.predict(&self.featurizer.featurize(text));
        &self.labels[idx]
    }

    /// The label inventory learned at training time.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Accuracy over a labeled test set.
    pub fn evaluate(&self, test: &[LabeledExample]) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let correct = test
            .iter()
            .filter(|ex| self.predict(&ex.text) == ex.label)
            .count();
        correct as f64 / test.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<LabeledExample> {
        let mut out = Vec::new();
        for i in 0..40 {
            out.push(LabeledExample {
                text: format!("the app crashes with bug error number {i}"),
                label: "informative".to_string(),
            });
            out.push(LabeledExample {
                text: format!("lol ok cool whatever {i}"),
                label: "non-informative".to_string(),
            });
        }
        out
    }

    #[test]
    fn five_standard_baselines() {
        let names: Vec<&str> = standard_baselines().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["BERT", "DistilBERT", "ALBERT", "RoBERTa", "XLM-RoBERTa"]);
        assert!(baseline_by_name("roberta").is_some());
        assert!(baseline_by_name("nope").is_none());
    }

    #[test]
    fn all_baselines_learn_easy_task() {
        let data = examples();
        for config in standard_baselines() {
            let model = TransformerStandIn::train(&config, &data);
            let acc = model.evaluate(&data);
            assert!(acc > 0.95, "{} scored {acc}", config.name);
            assert_eq!(model.predict("crashes with bug"), "informative");
        }
    }

    #[test]
    fn label_inventory_in_first_appearance_order() {
        let model = TransformerStandIn::train(&standard_baselines()[0], &examples());
        assert_eq!(model.labels(), &["informative".to_string(), "non-informative".to_string()]);
    }

    #[test]
    fn multilingual_baseline_handles_folded_text() {
        // Train on Spanish with diacritics, test without: only XLM-R's
        // folding makes these identical feature-wise.
        let mut data = Vec::new();
        for i in 0..30 {
            data.push(LabeledExample {
                text: format!("la aplicación no funciona número {i}"),
                label: "actionable".to_string(),
            });
            data.push(LabeledExample {
                text: format!("me encanta perfecto {i}"),
                label: "non-actionable".to_string(),
            });
        }
        let xlm = TransformerStandIn::train(&baseline_by_name("XLM-RoBERTa").unwrap(), &data);
        assert_eq!(xlm.predict("la aplicacion no funciona"), "actionable");
    }
}
