//! Transformer-stand-in feedback-classification baselines.
//!
//! Paper Table 2 fine-tunes five transformer encoders (BERT, DistilBERT,
//! ALBERT, RoBERTa, XLM-RoBERTa) on 70% of each dataset and reports test
//! accuracy. Those checkpoints and the A100 are unavailable here, so each
//! baseline is a *trained* stand-in: hashed bag-of-n-gram features feeding
//! a multinomial logistic-regression head, with per-model configurations
//! that differ along the same axes the originals differ:
//!
//! | baseline    | stand-in differences |
//! |-------------|----------------------|
//! | BERT        | reference config: uni+bi-grams, mid-size feature space |
//! | DistilBERT  | half the feature space, fewer epochs (distilled = smaller/faster/weaker) |
//! | ALBERT      | small feature space (parameter sharing) but extra epochs |
//! | RoBERTa     | more epochs + feature dropout (better training recipe)  |
//! | XLM-R       | multilingual tokenizer: diacritic folding + char-n-grams |
//!
//! What the experiment measures — *supervised fine-tuned models vs.
//! in-context LLM classification* — is preserved: these models genuinely
//! learn from the labeled split and generalize (or fail to) on the test
//! split; the LLM path in `allhands-llm` never trains.

pub mod baselines;
pub mod eval;
pub mod features;
pub mod lexical;
pub mod softmax;

pub use baselines::{baseline_by_name, standard_baselines, BaselineConfig, TransformerStandIn};
pub use eval::{accuracy, temporal_split, train_test_split, LabeledExample};
pub use features::{FeatureConfig, Featurizer, SparseVector};
pub use lexical::LexicalPrior;
pub use softmax::{SoftmaxClassifier, TrainConfig};
