//! Lexical-prior fallback classifier.
//!
//! When the LLM classification head is unavailable (circuit breaker open,
//! retries exhausted), the pipeline degrades to this model rather than
//! failing: a multinomial naive-Bayes prior over preprocessed tokens,
//! fitted on the same labeled pool the ICL classifier retrieves
//! demonstrations from. It is fully deterministic, trains in one pass, and
//! needs no LLM — the cheapest classifier that still uses the labels.

use crate::eval::LabeledExample;
use allhands_text::light_preprocess;
use std::collections::HashMap;

/// A fitted token log-odds model: P(label) · Π P(token | label) with add-one
/// smoothing, argmax over the fixed label set.
#[derive(Debug, Clone)]
pub struct LexicalPrior {
    labels: Vec<String>,
    /// log P(label), by label index.
    log_priors: Vec<f64>,
    /// token → per-label log P(token | label).
    token_scores: HashMap<String, Vec<f64>>,
    /// Fallback log-likelihood for unseen tokens, by label index.
    unseen: Vec<f64>,
}

impl LexicalPrior {
    /// Fit on a labeled pool. `labels` fixes the candidate set and the
    /// tie-break order (earlier wins), matching the ICL prompt convention.
    pub fn fit(pool: &[LabeledExample], labels: &[String]) -> Self {
        assert!(!labels.is_empty(), "need at least one label");
        let index: HashMap<&str, usize> =
            labels.iter().enumerate().map(|(i, l)| (l.as_str(), i)).collect();
        let mut doc_counts = vec![0usize; labels.len()];
        let mut token_counts: HashMap<String, Vec<usize>> = HashMap::new();
        let mut totals = vec![0usize; labels.len()];
        for ex in pool {
            let Some(&li) = index.get(ex.label.as_str()) else { continue };
            doc_counts[li] += 1;
            for tok in light_preprocess(&ex.text) {
                totals[li] += 1;
                token_counts.entry(tok).or_insert_with(|| vec![0; labels.len()])[li] += 1;
            }
        }
        let n_docs: usize = doc_counts.iter().sum();
        let vocab = token_counts.len().max(1);
        let log_priors: Vec<f64> = doc_counts
            .iter()
            .map(|&c| (((c + 1) as f64) / ((n_docs + labels.len()) as f64)).ln())
            .collect();
        let denom: Vec<f64> = totals.iter().map(|&t| (t + vocab) as f64).collect();
        let token_scores = token_counts
            .into_iter()
            .map(|(tok, counts)| {
                let scores = counts
                    .iter()
                    .zip(&denom)
                    .map(|(&c, &d)| (((c + 1) as f64) / d).ln())
                    .collect();
                (tok, scores)
            })
            .collect();
        let unseen = denom.iter().map(|&d| (1.0 / d).ln()).collect();
        LexicalPrior { labels: labels.to_vec(), log_priors, token_scores, unseen }
    }

    /// The candidate label set.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Classify one text. Ties break toward the earlier label.
    pub fn classify(&self, text: &str) -> String {
        let mut scores = self.log_priors.clone();
        for tok in light_preprocess(text) {
            let per_label = self.token_scores.get(&tok).unwrap_or(&self.unseen);
            for (s, t) in scores.iter_mut().zip(per_label) {
                *s += t;
            }
        }
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = i;
            }
        }
        self.labels[best].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> (Vec<LabeledExample>, Vec<String>) {
        let mut pool = Vec::new();
        for i in 0..25 {
            pool.push(LabeledExample {
                text: format!("app crashes with a bug error on startup {i}"),
                label: "informative".into(),
            });
            pool.push(LabeledExample {
                text: format!("lol cool nice whatever haha {i}"),
                label: "non-informative".into(),
            });
        }
        (pool, vec!["informative".into(), "non-informative".into()])
    }

    #[test]
    fn separates_obvious_classes() {
        let (pool, labels) = pool();
        let model = LexicalPrior::fit(&pool, &labels);
        assert_eq!(model.classify("another crash bug error today"), "informative");
        assert_eq!(model.classify("haha lol so cool"), "non-informative");
    }

    #[test]
    fn deterministic_and_total() {
        let (pool, labels) = pool();
        let model = LexicalPrior::fit(&pool, &labels);
        // Unseen vocabulary still yields a label from the candidate set.
        let out = model.classify("zqxv wqy pltk");
        assert!(labels.contains(&out));
        assert_eq!(out, model.classify("zqxv wqy pltk"));
    }

    #[test]
    fn empty_pool_falls_back_to_first_label() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let model = LexicalPrior::fit(&[], &labels);
        assert_eq!(model.classify("anything"), "a");
    }
}
