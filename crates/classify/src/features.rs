//! Hashed bag-of-n-gram featurization (the stand-ins' "tokenizer +
//! encoder" front end).

use allhands_embed::hash64;
use allhands_text::{char_ngrams, fold_diacritics, light_preprocess, porter_stem};

/// A sparse L2-normalized feature vector: sorted `(index, value)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector {
    pairs: Vec<(u32, f32)>,
}

impl SparseVector {
    /// Build from raw (possibly duplicated, unsorted) index/value pairs:
    /// duplicates are summed, the result L2-normalized.
    pub fn from_raw(mut raw: Vec<(u32, f32)>) -> Self {
        raw.sort_by_key(|&(i, _)| i);
        let mut pairs: Vec<(u32, f32)> = Vec::with_capacity(raw.len());
        for (i, v) in raw {
            match pairs.last_mut() {
                Some((last_i, last_v)) if *last_i == i => *last_v += v,
                _ => pairs.push((i, v)),
            }
        }
        let norm: f32 = pairs.iter().map(|(_, v)| v * v).sum::<f32>().sqrt();
        if norm > f32::EPSILON {
            for (_, v) in &mut pairs {
                *v /= norm;
            }
        }
        SparseVector { pairs }
    }

    /// The sorted `(index, value)` pairs.
    pub fn pairs(&self) -> &[(u32, f32)] {
        &self.pairs
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.pairs.len()
    }

    /// Dot product with a dense weight row.
    pub fn dot_dense(&self, dense: &[f32]) -> f32 {
        self.pairs
            .iter()
            .map(|&(i, v)| dense.get(i as usize).copied().unwrap_or(0.0) * v)
            .sum()
    }
}

/// Featurizer configuration — the axis along which baselines differ.
#[derive(Debug, Clone)]
pub struct FeatureConfig {
    /// Hashed feature-space size (power of two).
    pub dims: usize,
    /// Include word bigrams.
    pub bigrams: bool,
    /// Include character n-grams of this size (0 = none) — the
    /// multilingual subword axis.
    pub char_ngram: usize,
    /// Fold diacritics before tokenizing (multilingual normalization).
    pub fold_diacritics: bool,
    /// Weight of character n-gram features relative to word features.
    pub char_weight: f32,
    /// Stem tokens.
    pub stem: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { dims: 1 << 15, bigrams: true, char_ngram: 0, fold_diacritics: false, char_weight: 0.3, stem: true }
    }
}

/// Text → [`SparseVector`] under a [`FeatureConfig`].
#[derive(Debug, Clone)]
pub struct Featurizer {
    config: FeatureConfig,
}

impl Featurizer {
    /// Build a featurizer.
    pub fn new(config: FeatureConfig) -> Self {
        assert!(config.dims.is_power_of_two(), "dims must be a power of two");
        Featurizer { config }
    }

    /// Feature-space size.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    fn bucket(&self, feature: &str) -> u32 {
        (hash64(feature) & (self.config.dims as u64 - 1)) as u32
    }

    /// Featurize one text.
    pub fn featurize(&self, text: &str) -> SparseVector {
        let text = if self.config.fold_diacritics {
            fold_diacritics(text)
        } else {
            text.to_string()
        };
        let mut tokens = light_preprocess(&text);
        if self.config.stem {
            for t in &mut tokens {
                *t = porter_stem(t);
            }
        }
        let mut raw: Vec<(u32, f32)> = Vec::with_capacity(tokens.len() * 2);
        for t in &tokens {
            raw.push((self.bucket(t), 1.0));
            if self.config.char_ngram > 0 && !t.starts_with('<') {
                for g in char_ngrams(t, self.config.char_ngram) {
                    raw.push((self.bucket(&format!("c:{g}")), self.config.char_weight));
                }
            }
        }
        if self.config.bigrams {
            for pair in tokens.windows(2) {
                raw.push((self.bucket(&format!("b:{}+{}", pair[0], pair[1])), 0.7));
            }
        }
        SparseVector::from_raw(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vector_dedups_and_normalizes() {
        let v = SparseVector::from_raw(vec![(3, 1.0), (1, 2.0), (3, 1.0)]);
        assert_eq!(v.nnz(), 2);
        let norm: f32 = v.pairs().iter().map(|(_, x)| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        assert!(v.pairs()[0].0 < v.pairs()[1].0);
    }

    #[test]
    fn featurize_is_deterministic() {
        let f = Featurizer::new(FeatureConfig::default());
        assert_eq!(f.featurize("the app crashes"), f.featurize("the app crashes"));
        assert_ne!(f.featurize("the app crashes"), f.featurize("love this app"));
    }

    #[test]
    fn stemming_merges_inflections() {
        let f = Featurizer::new(FeatureConfig { bigrams: false, ..Default::default() });
        let a = f.featurize("crashes");
        let b = f.featurize("crashing");
        assert_eq!(a, b);
        let unstemmed = Featurizer::new(FeatureConfig { stem: false, bigrams: false, ..Default::default() });
        assert_ne!(unstemmed.featurize("crashes"), unstemmed.featurize("crashing"));
    }

    #[test]
    fn folding_aligns_multilingual_surface() {
        let multi = Featurizer::new(FeatureConfig { fold_diacritics: true, char_ngram: 3, ..Default::default() });
        let a = multi.featurize("aplicación");
        let b = multi.featurize("aplicacion");
        assert_eq!(a, b);
    }

    #[test]
    fn char_ngrams_share_features_across_cognates() {
        let with = Featurizer::new(FeatureConfig { char_ngram: 3, fold_diacritics: true, bigrams: false, stem: false, ..Default::default() });
        let without = Featurizer::new(FeatureConfig { char_ngram: 0, fold_diacritics: true, bigrams: false, stem: false, ..Default::default() });
        let overlap = |f: &Featurizer, a: &str, b: &str| {
            let va = f.featurize(a);
            let vb = f.featurize(b);
            let ib: std::collections::HashSet<u32> = vb.pairs().iter().map(|&(i, _)| i).collect();
            va.pairs().iter().filter(|(i, _)| ib.contains(i)).count()
        };
        assert!(
            overlap(&with, "incorrectos", "incorrect") > overlap(&without, "incorrectos", "incorrect")
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_dims_panics() {
        Featurizer::new(FeatureConfig { dims: 1000, ..Default::default() });
    }
}
