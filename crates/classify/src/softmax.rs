//! Multinomial logistic regression trained with SGD — the classification
//! head shared by all transformer stand-ins.

use crate::features::SparseVector;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Initial learning rate (decays 1/(1+t)).
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// Probability of dropping each feature during training (0 = off);
    /// the "better training recipe" axis (RoBERTa's dynamic masking).
    pub feature_dropout: f32,
    /// Shuffle/dropout seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 8, learning_rate: 0.5, l2: 1e-5, feature_dropout: 0.0, seed: 17 }
    }
}

/// A trained multinomial logistic-regression model.
#[derive(Debug, Clone)]
pub struct SoftmaxClassifier {
    /// `n_labels × dims` weight matrix, row-major per label.
    weights: Vec<Vec<f32>>,
    /// Per-label bias.
    bias: Vec<f32>,
    n_labels: usize,
}

impl SoftmaxClassifier {
    /// Train on `(features, label_index)` pairs. `n_labels` fixes the
    /// output arity; `dims` the feature-space size.
    ///
    /// Panics if `examples` is empty or any label index is out of range.
    pub fn train(
        examples: &[(SparseVector, usize)],
        n_labels: usize,
        dims: usize,
        config: &TrainConfig,
    ) -> Self {
        assert!(!examples.is_empty(), "cannot train on an empty set");
        assert!(n_labels >= 2, "need at least two labels");
        for (_, y) in examples {
            assert!(*y < n_labels, "label index {y} out of range");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut weights = vec![vec![0.0f32; dims]; n_labels];
        let mut bias = vec![0.0f32; n_labels];
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut t = 0usize;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let (x, y) = &examples[idx];
                let lr = config.learning_rate / (1.0 + t as f32 * 1e-4);
                t += 1;
                // Forward: logits -> softmax.
                let mut logits: Vec<f32> = (0..n_labels)
                    .map(|k| x.dot_dense(&weights[k]) + bias[k])
                    .collect();
                let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for l in &mut logits {
                    *l = (*l - max).exp();
                    sum += *l;
                }
                for l in &mut logits {
                    *l /= sum;
                }
                // Backward: gradient = (p - onehot) ⊗ x.
                for k in 0..n_labels {
                    let err = logits[k] - if k == *y { 1.0 } else { 0.0 };
                    if err == 0.0 {
                        continue;
                    }
                    let row = &mut weights[k];
                    for &(i, v) in x.pairs() {
                        if config.feature_dropout > 0.0
                            && rng.gen::<f32>() < config.feature_dropout
                        {
                            continue;
                        }
                        let w = &mut row[i as usize];
                        *w -= lr * (err * v + config.l2 * *w);
                    }
                    bias[k] -= lr * err;
                }
            }
        }
        SoftmaxClassifier { weights, bias, n_labels }
    }

    /// Predict the label index for `x`.
    pub fn predict(&self, x: &SparseVector) -> usize {
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for k in 0..self.n_labels {
            let s = x.dot_dense(&self.weights[k]) + self.bias[k];
            if s > best_score {
                best_score = s;
                best = k;
            }
        }
        best
    }

    /// Class probabilities for `x`.
    pub fn predict_proba(&self, x: &SparseVector) -> Vec<f32> {
        let mut logits: Vec<f32> = (0..self.n_labels)
            .map(|k| x.dot_dense(&self.weights[k]) + self.bias[k])
            .collect();
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for l in &mut logits {
            *l = (*l - max).exp();
            sum += *l;
        }
        for l in &mut logits {
            *l /= sum;
        }
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, Featurizer};

    fn toy_data(f: &Featurizer) -> Vec<(SparseVector, usize)> {
        let pos = ["great app love it", "amazing work love", "fantastic great update"];
        let neg = ["crashes all the time", "terrible crash bug", "awful bug report"];
        pos.iter()
            .map(|t| (f.featurize(t), 0))
            .chain(neg.iter().map(|t| (f.featurize(t), 1)))
            .collect()
    }

    #[test]
    fn learns_separable_data() {
        let f = Featurizer::new(FeatureConfig::default());
        let data = toy_data(&f);
        let model = SoftmaxClassifier::train(&data, 2, f.dims(), &TrainConfig::default());
        assert_eq!(model.predict(&f.featurize("love this great app")), 0);
        assert_eq!(model.predict(&f.featurize("horrible crash bug again")), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let f = Featurizer::new(FeatureConfig::default());
        let data = toy_data(&f);
        let model = SoftmaxClassifier::train(&data, 2, f.dims(), &TrainConfig::default());
        let p = model.predict_proba(&f.featurize("great"));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn deterministic_for_seed() {
        let f = Featurizer::new(FeatureConfig::default());
        let data = toy_data(&f);
        let a = SoftmaxClassifier::train(&data, 2, f.dims(), &TrainConfig::default());
        let b = SoftmaxClassifier::train(&data, 2, f.dims(), &TrainConfig::default());
        let x = f.featurize("great crash");
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        SoftmaxClassifier::train(&[], 2, 16, &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let f = Featurizer::new(FeatureConfig::default());
        SoftmaxClassifier::train(&[(f.featurize("x"), 5)], 2, f.dims(), &TrainConfig::default());
    }
}
