//! Train/test splitting and accuracy — the Table 2 evaluation protocol
//! (70% train+validation / 30% test, seeded shuffle).

use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A labeled text example.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledExample {
    pub text: String,
    pub label: String,
}

/// Shuffle and split into `(train, test)` with `train_fraction` in train.
///
/// Panics unless `0 < train_fraction < 1`.
pub fn train_test_split(
    examples: &[LabeledExample],
    train_fraction: f64,
    seed: u64,
) -> (Vec<LabeledExample>, Vec<LabeledExample>) {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train_fraction must be in (0, 1)"
    );
    let mut shuffled: Vec<LabeledExample> = examples.to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    shuffled.shuffle(&mut rng);
    let cut = ((examples.len() as f64) * train_fraction).round() as usize;
    let cut = cut.min(examples.len());
    let test = shuffled.split_off(cut);
    (shuffled, test)
}

/// Temporal split: order by `timestamps` ascending, first `train_fraction`
/// goes to train, the rest to test. This is the deployment-faithful
/// protocol for feedback classification — models are trained on the past
/// and score the future, where emerging topics and shifted language mixes
/// live.
///
/// Panics unless `0 < train_fraction < 1` and lengths match.
pub fn temporal_split(
    examples: &[LabeledExample],
    timestamps: &[i64],
    train_fraction: f64,
) -> (Vec<LabeledExample>, Vec<LabeledExample>) {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train_fraction must be in (0, 1)"
    );
    assert_eq!(examples.len(), timestamps.len(), "one timestamp per example");
    let mut order: Vec<usize> = (0..examples.len()).collect();
    order.sort_by_key(|&i| (timestamps[i], i));
    let cut = ((examples.len() as f64) * train_fraction).round() as usize;
    let cut = cut.min(examples.len());
    let train = order[..cut].iter().map(|&i| examples[i].clone()).collect();
    let test = order[cut..].iter().map(|&i| examples[i].clone()).collect();
    (train, test)
}

/// Fraction of `(predicted, gold)` pairs that agree.
pub fn accuracy<'a, I>(pairs: I) -> f64
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut n = 0usize;
    let mut correct = 0usize;
    for (pred, gold) in pairs {
        n += 1;
        if pred == gold {
            correct += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        correct as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples(n: usize) -> Vec<LabeledExample> {
        (0..n)
            .map(|i| LabeledExample { text: format!("t{i}"), label: format!("l{}", i % 2) })
            .collect()
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let data = examples(100);
        let (train, test) = train_test_split(&data, 0.7, 1);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        for t in &test {
            assert!(!train.contains(t));
        }
    }

    #[test]
    fn split_deterministic_per_seed() {
        let data = examples(50);
        let (a, _) = train_test_split(&data, 0.7, 5);
        let (b, _) = train_test_split(&data, 0.7, 5);
        assert_eq!(a, b);
        let (c, _) = train_test_split(&data, 0.7, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn accuracy_counts() {
        assert_eq!(accuracy([("a", "a"), ("b", "c")]), 0.5);
        assert_eq!(accuracy(Vec::<(&str, &str)>::new()), 0.0);
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn bad_fraction_panics() {
        train_test_split(&examples(4), 1.5, 0);
    }
}
