//! `allhands-obs`: deterministic tracing + metrics for the AllHands pipeline.
//!
//! The observability contract has two halves:
//!
//! * **Deterministic** data — counters, histograms, the span-tree *shape*, and
//!   run metadata — is a pure function of the logical work performed. Running
//!   the same pipeline at `ALLHANDS_THREADS=1` and `ALLHANDS_THREADS=8` must
//!   produce byte-identical deterministic sections ([`RunReport::deterministic_json`]).
//! * **Volatile** data — wall-clock durations, per-chunk scheduling metrics,
//!   cache hit/miss splits that depend on racing threads, and the thread count
//!   itself — is reported for humans but excluded from the determinism
//!   contract.
//!
//! A [`Recorder`] is a cheap-`Clone` handle threaded through the pipeline.
//! [`Recorder::disabled`] is a no-op handle: every operation short-circuits on
//! a single `Option` branch so instrumented hot paths stay within benchmark
//! noise when observability is off.
//!
//! Spans are hierarchical (`pipeline > classify > batch[i]`, …) and must only
//! be opened/closed on one thread (the pipeline driver thread); parallel
//! workers contribute counters, never spans, which is what keeps the span tree
//! deterministic.
//!
//! The serve layer's `serve.*` metric family (queue depth, replication lag,
//! per-replica read counts, replicated entries) is volatile by construction —
//! the values depend on connection and applier-thread interleaving — so the
//! server records them exclusively through the volatile annex (`vincr` /
//! `vadd` / `vobserve`) and opens no spans at all.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde_json::{Map, Value};

/// Schema version stamped into every exported [`RunReport`] JSON document.
pub const OBS_SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// An order-independent histogram over `u64` observations.
///
/// Buckets are log2-spaced (`bucket = bits(value)`, with `0` in its own
/// bucket), so the full state — count, sum, min, max, per-bucket counts — is a
/// pure function of the *multiset* of observed values, independent of
/// observation order or thread interleaving.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// log2 bucket index -> number of observations in that bucket.
    pub buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let bucket = if value == 0 { 0 } else { 64 - value.leading_zeros() };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("count".into(), Value::U64(self.count));
        m.insert("sum".into(), Value::U64(self.sum));
        m.insert("min".into(), Value::U64(self.min));
        m.insert("max".into(), Value::U64(self.max));
        let mut buckets = Map::new();
        for (b, n) in &self.buckets {
            buckets.insert(format!("2^{b}"), Value::U64(*n));
        }
        m.insert("buckets".into(), Value::Object(buckets));
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One node of the hierarchical span tree.
///
/// The tree *shape* (names + nesting + order) is deterministic; `duration_ms`
/// is wall-clock and excluded from the determinism contract.
#[derive(Debug, Clone)]
pub struct SpanNode {
    pub name: String,
    /// Wall-clock duration; `None` while the span is still open.
    pub duration_ms: Option<f64>,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &str) -> Self {
        SpanNode { name: name.to_string(), duration_ms: None, children: Vec::new() }
    }

    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".into(), Value::String(self.name.clone()));
        m.insert(
            "duration_ms".into(),
            match self.duration_ms {
                Some(d) => Value::F64(d),
                None => Value::Null,
            },
        );
        m.insert(
            "children".into(),
            Value::Array(self.children.iter().map(SpanNode::to_json).collect()),
        );
        Value::Object(m)
    }

    /// Shape-only view: names and nesting, no timings.
    fn to_shape_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".into(), Value::String(self.name.clone()));
        m.insert(
            "children".into(),
            Value::Array(self.children.iter().map(SpanNode::to_shape_json).collect()),
        );
        Value::Object(m)
    }

    /// Flattened `parent > child` paths, depth-first. Handy for shape asserts.
    pub fn paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_paths("", &mut out);
        out
    }

    fn collect_paths(&self, prefix: &str, out: &mut Vec<String>) {
        let path = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix} > {}", self.name)
        };
        out.push(path.clone());
        for c in &self.children {
            c.collect_paths(&path, out);
        }
    }
}

#[derive(Default)]
struct SpanState {
    roots: Vec<SpanNode>,
    /// Stack of currently-open spans (the driver thread opens/closes in LIFO
    /// order; `SpanGuard` drop pops the top).
    open: Vec<(SpanNode, Instant)>,
}

/// RAII guard returned by [`Recorder::span`]; closing happens on drop.
pub struct SpanGuard {
    rec: Recorder,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            self.rec.end_span();
        }
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

struct Inner {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    volatile_counters: Mutex<BTreeMap<String, u64>>,
    volatile_histograms: Mutex<BTreeMap<String, Histogram>>,
    meta: Mutex<BTreeMap<String, String>>,
    spans: Mutex<SpanState>,
    started: Instant,
}

/// Cheap-`Clone` metrics/tracing handle.
///
/// All clones share one underlying sink. [`Recorder::disabled`] produces a
/// handle whose every operation is a single branch and a return.
#[derive(Clone)]
pub struct Recorder(Option<Arc<Inner>>);

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish()
    }
}

impl Recorder {
    /// A live recorder collecting into a fresh sink.
    pub fn new() -> Self {
        Recorder(Some(Arc::new(Inner {
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            volatile_counters: Mutex::new(BTreeMap::new()),
            volatile_histograms: Mutex::new(BTreeMap::new()),
            meta: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(SpanState::default()),
            started: Instant::now(),
        })))
    }

    /// The no-op recorder: every operation short-circuits immediately.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add `n` to a deterministic counter.
    pub fn add(&self, key: &str, n: u64) {
        if let Some(inner) = &self.0 {
            let mut c = inner.counters.lock().unwrap();
            match c.get_mut(key) {
                Some(v) => *v += n,
                None => {
                    c.insert(key.to_string(), n);
                }
            }
        }
    }

    /// Increment a deterministic counter by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Observe a value in a deterministic (order-independent) histogram.
    pub fn observe(&self, key: &str, value: u64) {
        if let Some(inner) = &self.0 {
            let mut h = inner.histograms.lock().unwrap();
            if let Some(hist) = h.get_mut(key) {
                hist.observe(value);
            } else {
                let mut hist = Histogram::default();
                hist.observe(value);
                h.insert(key.to_string(), hist);
            }
        }
    }

    /// Add `n` to a **volatile** counter (excluded from determinism checks).
    pub fn vadd(&self, key: &str, n: u64) {
        if let Some(inner) = &self.0 {
            let mut c = inner.volatile_counters.lock().unwrap();
            match c.get_mut(key) {
                Some(v) => *v += n,
                None => {
                    c.insert(key.to_string(), n);
                }
            }
        }
    }

    /// Increment a volatile counter by one.
    pub fn vincr(&self, key: &str) {
        self.vadd(key, 1);
    }

    /// Observe a value in a **volatile** histogram.
    pub fn vobserve(&self, key: &str, value: u64) {
        if let Some(inner) = &self.0 {
            let mut h = inner.volatile_histograms.lock().unwrap();
            if let Some(hist) = h.get_mut(key) {
                hist.observe(value);
            } else {
                let mut hist = Histogram::default();
                hist.observe(value);
                h.insert(key.to_string(), hist);
            }
        }
    }

    /// Record a deterministic metadata string (model tier, corpus size, ...).
    pub fn set_meta(&self, key: &str, value: &str) {
        if let Some(inner) = &self.0 {
            inner.meta.lock().unwrap().insert(key.to_string(), value.to_string());
        }
    }

    /// Open a hierarchical span. **Driver-thread only**: spans must be opened
    /// and closed on a single thread so the tree shape stays deterministic.
    /// The span ends when the returned guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str) -> SpanGuard {
        if let Some(inner) = &self.0 {
            let mut st = inner.spans.lock().unwrap();
            st.open.push((SpanNode::new(name), Instant::now()));
            SpanGuard { rec: self.clone(), active: true }
        } else {
            SpanGuard { rec: Recorder::disabled(), active: false }
        }
    }

    fn end_span(&self) {
        if let Some(inner) = &self.0 {
            let mut st = inner.spans.lock().unwrap();
            if let Some((mut node, start)) = st.open.pop() {
                node.duration_ms = Some(start.elapsed().as_secs_f64() * 1000.0);
                match st.open.last_mut() {
                    Some((parent, _)) => parent.children.push(node),
                    None => st.roots.push(node),
                }
            }
        }
    }

    /// Snapshot everything collected so far into a [`RunReport`].
    ///
    /// Open spans are folded into the tree with `duration_ms: None`.
    pub fn report(&self) -> RunReport {
        let Some(inner) = &self.0 else {
            return RunReport::empty();
        };
        let mut spans = inner.spans.lock().unwrap().roots.clone();
        // Fold still-open spans in, innermost-last, so a mid-run snapshot
        // still shows the full tree.
        {
            let st = inner.spans.lock().unwrap();
            let mut pending: Option<SpanNode> = None;
            for (node, _) in st.open.iter().rev() {
                let mut n = node.clone();
                if let Some(child) = pending.take() {
                    n.children.push(child);
                }
                pending = Some(n);
            }
            if let Some(root) = pending {
                spans.push(root);
            }
        }
        RunReport {
            schema_version: OBS_SCHEMA_VERSION,
            counters: inner.counters.lock().unwrap().clone(),
            histograms: inner.histograms.lock().unwrap().clone(),
            volatile_counters: inner.volatile_counters.lock().unwrap().clone(),
            volatile_histograms: inner.volatile_histograms.lock().unwrap().clone(),
            meta: inner.meta.lock().unwrap().clone(),
            spans,
            total_ms: inner.started.elapsed().as_secs_f64() * 1000.0,
            enabled: true,
        }
    }
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

/// A structured snapshot of one run's observability data.
///
/// Exportable as schema-stable JSON ([`RunReport::to_json`], validated by
/// [`validate_report_json`]) and as a human summary ([`RunReport::to_text`],
/// also the `Display` impl). [`RunReport::deterministic_json`] is the
/// thread-count-invariant view used by the determinism tests.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub schema_version: u64,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
    pub volatile_counters: BTreeMap<String, u64>,
    pub volatile_histograms: BTreeMap<String, Histogram>,
    pub meta: BTreeMap<String, String>,
    pub spans: Vec<SpanNode>,
    /// Wall-clock time since the recorder was created (volatile).
    pub total_ms: f64,
    enabled: bool,
}

impl RunReport {
    /// The report of a disabled recorder: no data, `is_empty()` is true.
    pub fn empty() -> Self {
        RunReport {
            schema_version: OBS_SCHEMA_VERSION,
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            volatile_counters: BTreeMap::new(),
            volatile_histograms: BTreeMap::new(),
            meta: BTreeMap::new(),
            spans: Vec::new(),
            total_ms: 0.0,
            enabled: false,
        }
    }

    /// True when no metric, meta entry, or span was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.volatile_counters.is_empty()
            && self.volatile_histograms.is_empty()
            && self.meta.is_empty()
            && self.spans.is_empty()
    }

    /// Convenience counter lookup (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Flattened span paths (`pipeline > classify > batch[0]`, ...).
    pub fn span_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.spans {
            out.extend(s.paths());
        }
        out
    }

    /// Full schema-stable JSON document (schema version [`OBS_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> Value {
        let mut root = Map::new();
        root.insert("schema_version".into(), Value::U64(self.schema_version));
        root.insert("enabled".into(), Value::Bool(self.enabled));
        root.insert("total_ms".into(), Value::F64(self.total_ms));

        let mut meta = Map::new();
        for (k, v) in &self.meta {
            meta.insert(k.clone(), Value::String(v.clone()));
        }
        root.insert("meta".into(), Value::Object(meta));

        let mut counters = Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), Value::U64(*v));
        }
        root.insert("counters".into(), Value::Object(counters));

        let mut hists = Map::new();
        for (k, h) in &self.histograms {
            hists.insert(k.clone(), h.to_json());
        }
        root.insert("histograms".into(), Value::Object(hists));

        let mut vol = Map::new();
        let mut vcounters = Map::new();
        for (k, v) in &self.volatile_counters {
            vcounters.insert(k.clone(), Value::U64(*v));
        }
        vol.insert("counters".into(), Value::Object(vcounters));
        let mut vhists = Map::new();
        for (k, h) in &self.volatile_histograms {
            vhists.insert(k.clone(), h.to_json());
        }
        vol.insert("histograms".into(), Value::Object(vhists));
        root.insert("volatile".into(), Value::Object(vol));

        root.insert(
            "spans".into(),
            Value::Array(self.spans.iter().map(SpanNode::to_json).collect()),
        );
        Value::Object(root)
    }

    /// The determinism-contract view: deterministic counters/histograms/meta
    /// plus the span tree *shape*. Volatile sections and all timings are
    /// stripped. Byte-identical across thread counts for the same logical run.
    pub fn deterministic_json(&self) -> Value {
        let mut root = Map::new();
        root.insert("schema_version".into(), Value::U64(self.schema_version));

        let mut meta = Map::new();
        for (k, v) in &self.meta {
            meta.insert(k.clone(), Value::String(v.clone()));
        }
        root.insert("meta".into(), Value::Object(meta));

        let mut counters = Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), Value::U64(*v));
        }
        root.insert("counters".into(), Value::Object(counters));

        let mut hists = Map::new();
        for (k, h) in &self.histograms {
            hists.insert(k.clone(), h.to_json());
        }
        root.insert("histograms".into(), Value::Object(hists));

        root.insert(
            "spans".into(),
            Value::Array(self.spans.iter().map(SpanNode::to_shape_json).collect()),
        );
        Value::Object(root)
    }

    /// Human-readable multi-line summary (also the `Display` impl).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.enabled {
            out.push_str("observability disabled: empty report\n");
            return out;
        }
        out.push_str(&format!(
            "run report (schema v{}, {:.1} ms total)\n",
            self.schema_version, self.total_ms
        ));
        if !self.meta.is_empty() {
            out.push_str("meta:\n");
            for (k, v) in &self.meta {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k}: count={} sum={} min={} max={}\n",
                    h.count, h.sum, h.min, h.max
                ));
            }
        }
        if !self.volatile_counters.is_empty() || !self.volatile_histograms.is_empty() {
            out.push_str("volatile (thread-dependent, excluded from determinism):\n");
            for (k, v) in &self.volatile_counters {
                out.push_str(&format!("  {k} = {v}\n"));
            }
            for (k, h) in &self.volatile_histograms {
                out.push_str(&format!(
                    "  {k}: count={} sum={} min={} max={}\n",
                    h.count, h.sum, h.min, h.max
                ));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                write_span_text(s, 1, &mut out);
            }
        }
        out
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn write_span_text(node: &SpanNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match node.duration_ms {
        Some(d) => out.push_str(&format!("{indent}{} ({d:.1} ms)\n", node.name)),
        None => out.push_str(&format!("{indent}{} (open)\n", node.name)),
    }
    for c in &node.children {
        write_span_text(c, depth + 1, out);
    }
}

// ---------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------

fn is_number(v: &Value) -> bool {
    matches!(v, Value::U64(_) | Value::I64(_) | Value::F64(_))
}

fn is_uint(v: &Value) -> bool {
    match v {
        Value::U64(_) => true,
        Value::I64(i) => *i >= 0,
        _ => false,
    }
}

fn expect_object<'a>(root: &'a Map, key: &str) -> Result<&'a Map, String> {
    match root.get(key) {
        Some(Value::Object(m)) => Ok(m),
        Some(_) => Err(format!("`{key}` must be an object")),
        None => Err(format!("missing `{key}`")),
    }
}

fn validate_counter_map(m: &Map, section: &str) -> Result<(), String> {
    for (k, v) in m.iter() {
        if !is_uint(v) {
            return Err(format!("{section}.{k} must be a non-negative integer"));
        }
    }
    Ok(())
}

fn validate_histogram_map(m: &Map, section: &str) -> Result<(), String> {
    for (k, v) in m.iter() {
        let Value::Object(h) = v else {
            return Err(format!("{section}.{k} must be an object"));
        };
        for field in ["count", "sum", "min", "max"] {
            match h.get(field) {
                Some(v) if is_uint(v) => {}
                Some(_) => {
                    return Err(format!("{section}.{k}.{field} must be a non-negative integer"))
                }
                None => return Err(format!("{section}.{k} missing `{field}`")),
            }
        }
        match h.get("buckets") {
            Some(Value::Object(b)) => {
                for (bk, bv) in b.iter() {
                    if !bk.starts_with("2^") || !is_uint(bv) {
                        return Err(format!("{section}.{k}.buckets has malformed entry `{bk}`"));
                    }
                }
            }
            _ => return Err(format!("{section}.{k} missing `buckets` object")),
        }
    }
    Ok(())
}

fn validate_span(v: &Value, path: &str) -> Result<(), String> {
    let Value::Object(m) = v else {
        return Err(format!("{path} must be an object"));
    };
    match m.get("name") {
        Some(Value::String(_)) => {}
        _ => return Err(format!("{path}.name must be a string")),
    }
    match m.get("duration_ms") {
        Some(Value::Null) => {}
        Some(v) if is_number(v) => {}
        _ => return Err(format!("{path}.duration_ms must be a number or null")),
    }
    match m.get("children") {
        Some(Value::Array(kids)) => {
            for (i, k) in kids.iter().enumerate() {
                validate_span(k, &format!("{path}.children[{i}]"))?;
            }
        }
        _ => return Err(format!("{path}.children must be an array")),
    }
    Ok(())
}

/// Validate a JSON document against the [`RunReport`] schema
/// (version [`OBS_SCHEMA_VERSION`]). Returns a description of the first
/// violation found.
pub fn validate_report_json(doc: &Value) -> Result<(), String> {
    let Value::Object(root) = doc else {
        return Err("report root must be an object".into());
    };
    match root.get("schema_version") {
        Some(v) if is_uint(v) => {
            let got = match v {
                Value::U64(u) => *u,
                Value::I64(i) => *i as u64,
                _ => unreachable!(),
            };
            if got != OBS_SCHEMA_VERSION {
                return Err(format!(
                    "schema_version mismatch: expected {OBS_SCHEMA_VERSION}, got {got}"
                ));
            }
        }
        _ => return Err("missing integer `schema_version`".into()),
    }
    match root.get("enabled") {
        Some(Value::Bool(_)) => {}
        _ => return Err("missing boolean `enabled`".into()),
    }
    match root.get("total_ms") {
        Some(v) if is_number(v) => {}
        _ => return Err("missing numeric `total_ms`".into()),
    }
    let meta = expect_object(root, "meta")?;
    for (k, v) in meta.iter() {
        if !matches!(v, Value::String(_)) {
            return Err(format!("meta.{k} must be a string"));
        }
    }
    validate_counter_map(expect_object(root, "counters")?, "counters")?;
    validate_histogram_map(expect_object(root, "histograms")?, "histograms")?;
    let vol = expect_object(root, "volatile")?;
    validate_counter_map(expect_object(vol, "counters")?, "volatile.counters")?;
    validate_histogram_map(expect_object(vol, "histograms")?, "volatile.histograms")?;
    match root.get("spans") {
        Some(Value::Array(spans)) => {
            for (i, s) in spans.iter().enumerate() {
                validate_span(s, &format!("spans[{i}]"))?;
            }
        }
        _ => return Err("missing array `spans`".into()),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        rec.incr("a");
        rec.add("b", 5);
        rec.observe("h", 3);
        rec.vincr("v");
        rec.set_meta("m", "x");
        {
            let _g = rec.span("root");
        }
        let report = rec.report();
        assert!(report.is_empty());
        assert_eq!(report.to_text(), "observability disabled: empty report\n");
        validate_report_json(&report.to_json()).unwrap();
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let rec = Recorder::new();
        rec.incr("x");
        rec.add("x", 2);
        rec.observe("h", 0);
        rec.observe("h", 1);
        rec.observe("h", 9);
        let report = rec.report();
        assert_eq!(report.counter("x"), 3);
        let h = &report.histograms["h"];
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 10, 0, 9));
        // 0 -> bucket 0, 1 -> bucket 1, 9 -> bucket 4
        assert_eq!(h.buckets[&0], 1);
        assert_eq!(h.buckets[&1], 1);
        assert_eq!(h.buckets[&4], 1);
    }

    #[test]
    fn histogram_is_order_independent() {
        let values = [7u64, 0, 3, 3, 1024, 9];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in values {
            a.observe(v);
        }
        for v in values.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn span_tree_nests_in_open_order() {
        let rec = Recorder::new();
        {
            let _root = rec.span("pipeline");
            {
                let _c = rec.span("classify");
                let _b = rec.span("batch[0]");
            }
            let _t = rec.span("topics");
        }
        let report = rec.report();
        assert_eq!(
            report.span_paths(),
            vec![
                "pipeline".to_string(),
                "pipeline > classify".to_string(),
                "pipeline > classify > batch[0]".to_string(),
                "pipeline > topics".to_string(),
            ]
        );
        assert!(report.spans[0].duration_ms.is_some());
    }

    #[test]
    fn open_spans_appear_in_snapshot() {
        let rec = Recorder::new();
        let _root = rec.span("pipeline");
        let _child = rec.span("classify");
        let report = rec.report();
        assert_eq!(
            report.span_paths(),
            vec!["pipeline".to_string(), "pipeline > classify".to_string()]
        );
        assert!(report.spans[0].duration_ms.is_none());
    }

    #[test]
    fn deterministic_json_strips_volatile_and_timings() {
        let rec = Recorder::new();
        rec.incr("stable");
        rec.vincr("flaky");
        {
            let _s = rec.span("root");
        }
        let det = serde_json::to_string(&rec.report().deterministic_json()).unwrap();
        assert!(det.contains("stable"));
        assert!(!det.contains("flaky"));
        assert!(!det.contains("duration_ms"));
        assert!(!det.contains("total_ms"));
    }

    #[test]
    fn report_json_roundtrips_and_validates() {
        let rec = Recorder::new();
        rec.set_meta("tier", "gpt-4");
        rec.add("llm.calls", 12);
        rec.observe("sizes", 42);
        rec.vobserve("chunks", 7);
        {
            let _root = rec.span("pipeline");
            let _c = rec.span("classify");
        }
        let json = rec.report().to_json();
        validate_report_json(&json).unwrap();
        let pretty = serde_json::to_string_pretty(&json).unwrap();
        let reparsed: Value = serde_json::from_str(&pretty).unwrap();
        validate_report_json(&reparsed).unwrap();
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        let mut root = Map::new();
        root.insert("schema_version".into(), Value::U64(99));
        assert!(validate_report_json(&Value::Object(root)).is_err());
        assert!(validate_report_json(&Value::Array(vec![])).is_err());
    }

    #[test]
    fn to_text_mentions_key_sections() {
        let rec = Recorder::new();
        rec.set_meta("tier", "gpt-3.5");
        rec.incr("retries");
        rec.vincr("chunks");
        {
            let _s = rec.span("pipeline");
        }
        let text = rec.report().to_string();
        assert!(text.contains("meta:"));
        assert!(text.contains("retries = 1"));
        assert!(text.contains("volatile"));
        assert!(text.contains("pipeline ("));
    }
}
