//! Statistical kernels used by the analysis workloads: correlation,
//! z-score anomaly detection, and ratio helpers.

use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::Result;

/// Pearson correlation of two equal-length numeric slices.
/// Returns `None` when fewer than 2 pairs or zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= f64::EPSILON || syy <= f64::EPSILON {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Indices of points whose |z-score| exceeds `threshold` (anomalies) in a
/// series; `None`-valued cells are skipped.
pub fn zscore_anomalies(values: &[f64], threshold: f64) -> Vec<usize> {
    if values.len() < 3 {
        return Vec::new();
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let std = var.sqrt();
    if std <= f64::EPSILON {
        return Vec::new();
    }
    values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| (((v - mean) / std).abs() > threshold).then_some(i))
        .collect()
}

impl DataFrame {
    /// Pearson correlation between two numeric columns over rows where both
    /// are non-null.
    pub fn correlation(&self, a: &str, b: &str) -> Result<f64> {
        let ca = self.column(a)?;
        let cb = self.column(b)?;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (x, y) in ca.f64_iter().zip(cb.f64_iter()) {
            if let (Some(x), Some(y)) = (x, y) {
                xs.push(x);
                ys.push(y);
            }
        }
        pearson(&xs, &ys).ok_or_else(|| {
            FrameError::Invalid(format!(
                "correlation({a}, {b}) undefined: need ≥2 pairs with variance"
            ))
        })
    }

    /// Fraction of rows matching `predicate` (0.0 for an empty frame).
    pub fn fraction_where<F: FnMut(usize) -> bool>(&self, predicate: F) -> f64 {
        if self.n_rows() == 0 {
            return 0.0;
        }
        let hits = (0..self.n_rows()).filter({
            let mut p = predicate;
            move |&i| p(i)
        })
        .count();
        hits as f64 / self.n_rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn pearson_perfect() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none()); // zero variance
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_none()); // length mismatch
    }

    #[test]
    fn anomalies_found() {
        let mut series = vec![10.0; 20];
        series[7] = 100.0;
        let idx = zscore_anomalies(&series, 3.0);
        assert_eq!(idx, vec![7]);
        assert!(zscore_anomalies(&[5.0, 5.0, 5.0], 2.0).is_empty());
        assert!(zscore_anomalies(&[1.0, 2.0], 1.0).is_empty());
    }

    #[test]
    fn frame_correlation_skips_nulls() {
        use crate::column::ColumnData;
        let df = DataFrame::new(vec![
            Column::new("a", ColumnData::Float(vec![Some(1.0), None, Some(2.0), Some(3.0)])),
            Column::new("b", ColumnData::Float(vec![Some(2.0), Some(9.0), Some(4.0), Some(6.0)])),
        ])
        .unwrap();
        assert!((df.correlation("a", "b").unwrap() - 1.0).abs() < 1e-12);
        assert!(df.correlation("a", "nope").is_err());
    }

    #[test]
    fn fraction() {
        let df = DataFrame::new(vec![Column::from_i64s("x", &[1, 2, 3, 4])]).unwrap();
        let col = df.column("x").unwrap().clone();
        let frac = df.fraction_where(|i| col.get(i).as_f64().unwrap() > 2.0);
        assert_eq!(frac, 0.5);
        assert_eq!(DataFrame::empty().fraction_where(|_| true), 0.0);
    }
}
