//! The [`DataFrame`]: an ordered collection of equal-length named columns.

use crate::column::{Column, ColumnData};
use crate::datetime::CivilDateTime;
use crate::error::FrameError;
use crate::value::Value;
use crate::Result;
use serde::{Deserialize, Serialize};

/// An immutable table. All mutating operations return a new frame.
///
/// Deserialization re-validates through [`DataFrame::new`], so serialized
/// frames cannot smuggle in ragged column lengths or duplicate names.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(try_from = "RawFrame")]
pub struct DataFrame {
    columns: Vec<Column>,
}

/// Unvalidated wire form of a [`DataFrame`].
#[derive(Deserialize)]
struct RawFrame {
    columns: Vec<Column>,
}

impl TryFrom<RawFrame> for DataFrame {
    type Error = FrameError;
    fn try_from(raw: RawFrame) -> Result<DataFrame> {
        DataFrame::new(raw.columns)
    }
}

impl DataFrame {
    /// Build a frame from columns, validating equal lengths and unique names.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        if let Some(first) = columns.first() {
            let expected = first.len();
            for c in &columns {
                if c.len() != expected {
                    return Err(FrameError::LengthMismatch { expected, actual: c.len() });
                }
            }
        }
        let mut names: Vec<&str> = columns.iter().map(Column::name).collect();
        names.sort_unstable();
        for pair in names.windows(2) {
            if pair[0] == pair[1] {
                return Err(FrameError::DuplicateColumn(pair[0].to_string()));
            }
        }
        Ok(DataFrame { columns })
    }

    /// The empty frame (no columns, no rows).
    pub fn empty() -> Self {
        DataFrame::default()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Column::name).collect()
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns.iter().find(|c| c.name() == name).ok_or_else(|| {
            FrameError::UnknownColumn {
                name: name.to_string(),
                available: self.column_names().iter().map(|s| s.to_string()).collect(),
            }
        })
    }

    /// Does a column with this name exist?
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name() == name)
    }

    /// One cell.
    pub fn cell(&self, row: usize, column: &str) -> Result<Value> {
        if row >= self.n_rows() {
            return Err(FrameError::RowOutOfBounds { index: row, len: self.n_rows() });
        }
        Ok(self.column(column)?.get(row))
    }

    /// Project onto `names`, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let cols = names
            .iter()
            .map(|n| self.column(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        DataFrame::new(cols)
    }

    /// Add (or replace) a column; length must match unless the frame is
    /// empty of columns.
    pub fn with_column(&self, column: Column) -> Result<DataFrame> {
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_rows(),
                actual: column.len(),
            });
        }
        // Replace in place when the column exists, preserving the frame's
        // column order (order matters to concat's schema check).
        let mut cols: Vec<Column> = self.columns.clone();
        match cols.iter().position(|c| c.name() == column.name()) {
            Some(pos) => cols[pos] = column,
            None => cols.push(column),
        }
        DataFrame::new(cols)
    }

    /// Drop a column (error if absent).
    pub fn drop_column(&self, name: &str) -> Result<DataFrame> {
        self.column(name)?; // existence check
        DataFrame::new(
            self.columns
                .iter()
                .filter(|c| c.name() != name)
                .cloned()
                .collect(),
        )
    }

    /// Rename a column.
    pub fn rename(&self, from: &str, to: &str) -> Result<DataFrame> {
        self.column(from)?;
        if self.has_column(to) && from != to {
            return Err(FrameError::DuplicateColumn(to.to_string()));
        }
        DataFrame::new(
            self.columns
                .iter()
                .map(|c| {
                    if c.name() == from {
                        c.clone().renamed(to)
                    } else {
                        c.clone()
                    }
                })
                .collect(),
        )
    }

    /// Keep rows where `mask[i]` is true. Mask must have `n_rows` entries.
    pub fn filter(&self, mask: &[bool]) -> Result<DataFrame> {
        if mask.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_rows(),
                actual: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        Ok(self.take(&indices))
    }

    /// Keep rows where `predicate(row_index)` is true.
    pub fn filter_by<F: FnMut(usize) -> bool>(&self, mut predicate: F) -> DataFrame {
        let indices: Vec<usize> = (0..self.n_rows()).filter(|&i| predicate(i)).collect();
        self.take(&indices)
    }

    /// Keep rows where `column == value` (loose numeric equality).
    pub fn filter_eq(&self, column: &str, value: &Value) -> Result<DataFrame> {
        let col = self.column(column)?;
        Ok(self.filter_by(|i| col.get(i).loose_eq(value)))
    }

    /// Keep rows where the Str column contains `needle` (case-insensitive).
    pub fn filter_contains(&self, column: &str, needle: &str) -> Result<DataFrame> {
        let col = self.column(column)?;
        let needle = needle.to_lowercase();
        let strs = col.strs()?;
        let mask: Vec<bool> = strs
            .iter()
            .map(|o| o.as_deref().is_some_and(|s| s.to_lowercase().contains(&needle)))
            .collect();
        self.filter(&mask)
    }

    /// Keep rows where the StrList column contains `item` (exact,
    /// case-insensitive).
    pub fn filter_list_has(&self, column: &str, item: &str) -> Result<DataFrame> {
        let col = self.column(column)?;
        let lists = col.str_lists()?;
        let item = item.to_lowercase();
        let mask: Vec<bool> = lists
            .iter()
            .map(|o| {
                o.as_deref()
                    .is_some_and(|l| l.iter().any(|t| t.to_lowercase() == item))
            })
            .collect();
        self.filter(&mask)
    }

    /// Keep rows whose DateTime column falls in `[start, end)` epoch seconds.
    pub fn filter_datetime_range(&self, column: &str, start: i64, end: i64) -> Result<DataFrame> {
        let col = self.column(column)?;
        let times = col.datetimes()?;
        let mask: Vec<bool> = times
            .iter()
            .map(|o| o.is_some_and(|t| t >= start && t < end))
            .collect();
        self.filter(&mask)
    }

    /// Select rows at `indices`, in order (out-of-range yields null cells).
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        DataFrame {
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
        }
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let indices: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&indices)
    }

    /// Sort by a column (stable; nulls first on ascending).
    pub fn sort_by(&self, column: &str, ascending: bool) -> Result<DataFrame> {
        let col = self.column(column)?;
        let mut indices: Vec<usize> = (0..self.n_rows()).collect();
        indices.sort_by(|&a, &b| {
            let ord = col.get(a).total_cmp(&col.get(b));
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
        Ok(self.take(&indices))
    }

    /// The first `k` rows of `sort_by(column, ascending)` without sorting
    /// the whole frame: selects the k smallest (or largest) rows in O(n)
    /// and only sorts those. Byte-identical to `sort_by(...)?.head(k)` —
    /// ties are broken by original row index, which is exactly what the
    /// stable full sort produces.
    pub fn top_k(&self, column: &str, ascending: bool, k: usize) -> Result<DataFrame> {
        let col = self.column(column)?;
        let n = self.n_rows();
        if k == 0 {
            return Ok(self.head(0));
        }
        if k >= n {
            return self.sort_by(column, ascending);
        }
        let mut indices: Vec<usize> = (0..n).collect();
        let cmp = |a: &usize, b: &usize| {
            let ord = col.get(*a).total_cmp(&col.get(*b));
            let ord = if ascending { ord } else { ord.reverse() };
            // Index tie-break makes the order total, so an unstable
            // selection/sort reproduces the stable full sort.
            ord.then(a.cmp(b))
        };
        indices.select_nth_unstable_by(k - 1, cmp);
        indices.truncate(k);
        indices.sort_unstable_by(cmp);
        Ok(self.take(&indices))
    }

    /// Vertically concatenate another frame with the same schema.
    pub fn concat(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.columns.is_empty() {
            return Ok(other.clone());
        }
        if self.column_names() != other.column_names() {
            return Err(FrameError::Invalid(format!(
                "schema mismatch: {:?} vs {:?}",
                self.column_names(),
                other.column_names()
            )));
        }
        let mut cols = Vec::with_capacity(self.columns.len());
        for (a, b) in self.columns.iter().zip(other.columns()) {
            let mut data = a.data().clone();
            for i in 0..b.len() {
                data.push(b.get(i))
                    .map_err(|_| FrameError::TypeMismatch {
                        column: a.name().to_string(),
                        expected: a.dtype(),
                        actual: b.dtype(),
                    })?;
            }
            cols.push(Column::new(a.name(), data));
        }
        DataFrame::new(cols)
    }

    /// Derive a Str column by mapping the DateTime column through a
    /// calendar accessor: one of `"month"`, `"month_name"`, `"weekday"`,
    /// `"date"`, `"year"`, `"week"`, `"is_weekend"`.
    pub fn datetime_part(&self, column: &str, part: &str) -> Result<Column> {
        let col = self.column(column)?;
        let times = col.datetimes()?;
        let name = format!("{column}_{part}");
        let as_str = |f: &dyn Fn(CivilDateTime) -> String| -> Column {
            Column::new(
                &name,
                ColumnData::Str(
                    times
                        .iter()
                        .map(|o| o.map(|t| f(CivilDateTime::from_epoch(t))))
                        .collect(),
                ),
            )
        };
        Ok(match part {
            "month" => Column::new(
                &name,
                ColumnData::Int(
                    times
                        .iter()
                        .map(|o| o.map(|t| i64::from(CivilDateTime::from_epoch(t).month)))
                        .collect(),
                ),
            ),
            "year" => Column::new(
                &name,
                ColumnData::Int(
                    times
                        .iter()
                        .map(|o| o.map(|t| i64::from(CivilDateTime::from_epoch(t).year)))
                        .collect(),
                ),
            ),
            "week" => Column::new(
                &name,
                ColumnData::Int(
                    times
                        .iter()
                        .map(|o| o.map(|t| i64::from(CivilDateTime::from_epoch(t).iso_week())))
                        .collect(),
                ),
            ),
            "month_name" => as_str(&|d| d.month_name().to_string()),
            "weekday" => as_str(&|d| d.weekday().name().to_string()),
            "date" => as_str(&|d| format!("{:04}-{:02}-{:02}", d.year, d.month, d.day)),
            "is_weekend" => Column::new(
                &name,
                ColumnData::Bool(
                    times
                        .iter()
                        .map(|o| o.map(|t| CivilDateTime::from_epoch(t).weekday().is_weekend()))
                        .collect(),
                ),
            ),
            other => {
                return Err(FrameError::Invalid(format!(
                    "unknown datetime part '{other}' (try month, month_name, weekday, date, year, week, is_weekend)"
                )))
            }
        })
    }

    /// Explode a StrList column: one output row per list element, other
    /// columns repeated; the exploded column becomes a Str column. Rows with
    /// empty or null lists are dropped.
    pub fn explode(&self, column: &str) -> Result<DataFrame> {
        let col = self.column(column)?;
        let lists = col.str_lists()?;
        let mut indices = Vec::new();
        let mut exploded: Vec<Option<String>> = Vec::new();
        for (i, cell) in lists.iter().enumerate() {
            if let Some(items) = cell {
                for item in items {
                    indices.push(i);
                    exploded.push(Some(item.clone()));
                }
            }
        }
        let mut out = self.take(&indices);
        let new_col = Column::new(column, ColumnData::Str(exploded));
        // Replace in place preserving column order.
        out.columns = out
            .columns
            .into_iter()
            .map(|c| if c.name() == column { new_col.clone() } else { c })
            .collect();
        Ok(out)
    }

    /// Render the first `max_rows` rows as a fixed-width text table
    /// (markdown-flavoured) — the agent's table artifact format.
    pub fn to_table_string(&self, max_rows: usize) -> String {
        if self.columns.is_empty() {
            return "(empty frame)".to_string();
        }
        let n = self.n_rows().min(max_rows);
        let mut widths: Vec<usize> = self
            .columns
            .iter()
            .map(|c| c.name().chars().count())
            .collect();
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| {
                    let mut s = c.get(i).to_string();
                    if s.chars().count() > 40 {
                        s = s.chars().take(37).collect::<String>() + "...";
                    }
                    s
                })
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.chars().count());
            }
            rows.push(row);
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{:w$}", c.name(), w = w))
            .collect();
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{:w$}", c, w = w))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        if self.n_rows() > max_rows {
            out.push_str(&format!("({} more rows)\n", self.n_rows() - max_rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DType;

    fn sample() -> DataFrame {
        DataFrame::new(vec![
            Column::from_strs("product", &["WhatsApp", "Windows", "WhatsApp", "Minecraft"]),
            Column::from_f64s("sentiment", &[0.8, -0.2, 0.5, 0.9]),
            Column::from_i64s("len", &[10, 20, 30, 40]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(DataFrame::new(vec![
            Column::from_i64s("a", &[1]),
            Column::from_i64s("b", &[1, 2]),
        ])
        .is_err());
        assert!(DataFrame::new(vec![
            Column::from_i64s("a", &[1]),
            Column::from_i64s("a", &[2]),
        ])
        .is_err());
    }

    #[test]
    fn select_and_drop() {
        let df = sample();
        let s = df.select(&["sentiment", "product"]).unwrap();
        assert_eq!(s.column_names(), vec!["sentiment", "product"]);
        assert!(df.select(&["nope"]).is_err());
        let d = df.drop_column("len").unwrap();
        assert_eq!(d.n_cols(), 2);
    }

    #[test]
    fn filter_eq_and_contains() {
        let df = sample();
        let wa = df.filter_eq("product", &Value::str("WhatsApp")).unwrap();
        assert_eq!(wa.n_rows(), 2);
        let has_win = df.filter_contains("product", "win").unwrap();
        assert_eq!(has_win.n_rows(), 1);
    }

    #[test]
    fn sort_stable_and_desc() {
        let df = sample();
        let sorted = df.sort_by("sentiment", false).unwrap();
        assert_eq!(sorted.cell(0, "product").unwrap(), Value::str("Minecraft"));
        assert_eq!(sorted.cell(3, "product").unwrap(), Value::str("Windows"));
    }

    #[test]
    fn with_column_replaces() {
        let df = sample();
        let df2 = df
            .with_column(Column::from_i64s("len", &[1, 1, 1, 1]))
            .unwrap();
        assert_eq!(df2.n_cols(), 3);
        assert_eq!(df2.cell(0, "len").unwrap(), Value::Int(1));
        assert!(df.with_column(Column::from_i64s("x", &[1])).is_err());
    }

    #[test]
    fn head_and_take() {
        let df = sample();
        assert_eq!(df.head(2).n_rows(), 2);
        let t = df.take(&[3, 0]);
        assert_eq!(t.cell(0, "product").unwrap(), Value::str("Minecraft"));
    }

    #[test]
    fn concat_schemas() {
        let df = sample();
        let both = df.concat(&df).unwrap();
        assert_eq!(both.n_rows(), 8);
        let other = DataFrame::new(vec![Column::from_i64s("x", &[1])]).unwrap();
        assert!(df.concat(&other).is_err());
    }

    #[test]
    fn datetime_parts() {
        let base = CivilDateTime::date(2023, 10, 14).to_epoch(); // Saturday
        let df = DataFrame::new(vec![Column::from_datetimes("ts", &[base, base + 3 * 86_400])])
            .unwrap();
        let wd = df.datetime_part("ts", "weekday").unwrap();
        assert_eq!(wd.get(0), Value::str("Saturday"));
        assert_eq!(wd.get(1), Value::str("Tuesday"));
        let we = df.datetime_part("ts", "is_weekend").unwrap();
        assert_eq!(we.get(0), Value::Bool(true));
        assert_eq!(we.get(1), Value::Bool(false));
        assert!(df.datetime_part("ts", "nope").is_err());
    }

    #[test]
    fn explode_str_lists() {
        let df = DataFrame::new(vec![
            Column::from_strs("id", &["a", "b", "c"]),
            Column::from_str_lists("topics", vec![
                vec!["bug".into(), "ui".into()],
                vec![],
                vec!["perf".into()],
            ]),
        ])
        .unwrap();
        let e = df.explode("topics").unwrap();
        assert_eq!(e.n_rows(), 3);
        assert_eq!(e.cell(0, "topics").unwrap(), Value::str("bug"));
        assert_eq!(e.cell(1, "id").unwrap(), Value::str("a"));
        assert_eq!(e.cell(2, "id").unwrap(), Value::str("c"));
        assert_eq!(e.column("topics").unwrap().dtype(), DType::Str);
    }

    #[test]
    fn filter_list_has() {
        let df = DataFrame::new(vec![Column::from_str_lists("topics", vec![
            vec!["Bug".into()],
            vec!["feature request".into()],
        ])])
        .unwrap();
        assert_eq!(df.filter_list_has("topics", "bug").unwrap().n_rows(), 1);
    }

    #[test]
    fn table_rendering() {
        let s = sample().to_table_string(2);
        assert!(s.contains("product"));
        assert!(s.contains("(2 more rows)"));
        assert!(s.starts_with('|'));
    }

    #[test]
    fn datetime_range_filter() {
        let t0 = CivilDateTime::date(2023, 4, 1).to_epoch();
        let t1 = CivilDateTime::date(2023, 5, 1).to_epoch();
        let df = DataFrame::new(vec![Column::from_datetimes("ts", &[t0, t1, t1 + 5])]).unwrap();
        let apr = df.filter_datetime_range("ts", t0, t1).unwrap();
        assert_eq!(apr.n_rows(), 1);
    }

    #[test]
    fn top_k_matches_sort_then_head() {
        // Heavy ties (and nulls) so the stable-sort tie-break is actually
        // exercised: a payload column distinguishes tied rows.
        let scores: Vec<Option<i64>> = (0..200)
            .map(|i| if i % 7 == 0 { None } else { Some((i % 5) as i64) })
            .collect();
        let ids: Vec<i64> = (0..200).collect();
        let df = DataFrame::new(vec![
            Column::new("score", crate::column::ColumnData::Int(scores)),
            Column::from_i64s("id", &ids),
        ])
        .unwrap();
        for ascending in [true, false] {
            for k in [0usize, 1, 5, 37, 199, 200, 500] {
                let slow = df.sort_by("score", ascending).unwrap().head(k);
                let fast = df.top_k("score", ascending, k).unwrap();
                assert_eq!(
                    format!("{fast:?}"),
                    format!("{slow:?}"),
                    "top_k({ascending}, {k}) diverged from sort+head"
                );
            }
        }
    }
}
