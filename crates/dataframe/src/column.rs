//! Typed columns with per-cell nullability.

use crate::error::FrameError;
use crate::value::Value;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Column data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    Int,
    Float,
    Str,
    Bool,
    DateTime,
    StrList,
}

/// Typed column storage; `None` cells are nulls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnData {
    Int(Vec<Option<i64>>),
    Float(Vec<Option<f64>>),
    Str(Vec<Option<String>>),
    Bool(Vec<Option<bool>>),
    /// Epoch seconds.
    DateTime(Vec<Option<i64>>),
    StrList(Vec<Option<Vec<String>>>),
}

impl ColumnData {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::DateTime(v) => v.len(),
            ColumnData::StrList(v) => v.len(),
        }
    }

    /// True when there are no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The data type.
    pub fn dtype(&self) -> DType {
        match self {
            ColumnData::Int(_) => DType::Int,
            ColumnData::Float(_) => DType::Float,
            ColumnData::Str(_) => DType::Str,
            ColumnData::Bool(_) => DType::Bool,
            ColumnData::DateTime(_) => DType::DateTime,
            ColumnData::StrList(_) => DType::StrList,
        }
    }

    /// Cell at `i` as a [`Value`] (Null when out of bounds or null).
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => v.get(i).copied().flatten().map_or(Value::Null, Value::Int),
            ColumnData::Float(v) => v.get(i).copied().flatten().map_or(Value::Null, Value::Float),
            ColumnData::Str(v) => v
                .get(i)
                .and_then(|o| o.clone())
                .map_or(Value::Null, Value::Str),
            ColumnData::Bool(v) => v.get(i).copied().flatten().map_or(Value::Null, Value::Bool),
            ColumnData::DateTime(v) => {
                v.get(i).copied().flatten().map_or(Value::Null, Value::DateTime)
            }
            ColumnData::StrList(v) => v
                .get(i)
                .and_then(|o| o.clone())
                .map_or(Value::Null, Value::StrList),
        }
    }

    /// Append a value, coercing Int↔Float where loss-free. Errors on an
    /// incompatible type; appends null for `Value::Null`.
    pub fn push(&mut self, value: Value) -> Result<()> {
        let type_err = |expected: DType, v: &Value| FrameError::Invalid(
            format!("cannot push {v:?} into {expected:?} column"),
        );
        match (self, value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(Some(x)),
            (ColumnData::Int(v), Value::Null) => v.push(None),
            (ColumnData::Float(v), Value::Float(x)) => v.push(Some(x)),
            (ColumnData::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (ColumnData::Float(v), Value::Null) => v.push(None),
            (ColumnData::Str(v), Value::Str(x)) => v.push(Some(x)),
            (ColumnData::Str(v), Value::Null) => v.push(None),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (ColumnData::Bool(v), Value::Null) => v.push(None),
            (ColumnData::DateTime(v), Value::DateTime(x)) => v.push(Some(x)),
            (ColumnData::DateTime(v), Value::Null) => v.push(None),
            (ColumnData::StrList(v), Value::StrList(x)) => v.push(Some(x)),
            (ColumnData::StrList(v), Value::Null) => v.push(None),
            (this, v) => return Err(type_err(this.dtype(), &v)),
        }
        Ok(())
    }

    /// Empty storage of the given dtype.
    pub fn empty(dtype: DType) -> ColumnData {
        match dtype {
            DType::Int => ColumnData::Int(Vec::new()),
            DType::Float => ColumnData::Float(Vec::new()),
            DType::Str => ColumnData::Str(Vec::new()),
            DType::Bool => ColumnData::Bool(Vec::new()),
            DType::DateTime => ColumnData::DateTime(Vec::new()),
            DType::StrList => ColumnData::StrList(Vec::new()),
        }
    }

    /// Select the cells at `indices` (in order) into a new storage.
    pub fn take(&self, indices: &[usize]) -> ColumnData {
        fn gather<T: Clone>(v: &[Option<T>], idx: &[usize]) -> Vec<Option<T>> {
            idx.iter().map(|&i| v.get(i).cloned().flatten()).collect()
        }
        match self {
            ColumnData::Int(v) => ColumnData::Int(gather(v, indices)),
            ColumnData::Float(v) => ColumnData::Float(gather(v, indices)),
            ColumnData::Str(v) => ColumnData::Str(gather(v, indices)),
            ColumnData::Bool(v) => ColumnData::Bool(gather(v, indices)),
            ColumnData::DateTime(v) => ColumnData::DateTime(gather(v, indices)),
            ColumnData::StrList(v) => ColumnData::StrList(gather(v, indices)),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Create a column from storage.
    pub fn new(name: &str, data: ColumnData) -> Self {
        Column { name: name.to_string(), data }
    }

    /// Non-null i64 column.
    pub fn from_i64s(name: &str, values: &[i64]) -> Self {
        Column::new(name, ColumnData::Int(values.iter().map(|&v| Some(v)).collect()))
    }

    /// Non-null f64 column.
    pub fn from_f64s(name: &str, values: &[f64]) -> Self {
        Column::new(name, ColumnData::Float(values.iter().map(|&v| Some(v)).collect()))
    }

    /// Non-null string column.
    pub fn from_strs(name: &str, values: &[&str]) -> Self {
        Column::new(
            name,
            ColumnData::Str(values.iter().map(|v| Some(v.to_string())).collect()),
        )
    }

    /// Non-null string column from owned strings.
    pub fn from_strings(name: &str, values: Vec<String>) -> Self {
        Column::new(name, ColumnData::Str(values.into_iter().map(Some).collect()))
    }

    /// Non-null bool column.
    pub fn from_bools(name: &str, values: &[bool]) -> Self {
        Column::new(name, ColumnData::Bool(values.iter().map(|&v| Some(v)).collect()))
    }

    /// Non-null datetime column from epoch seconds.
    pub fn from_datetimes(name: &str, epochs: &[i64]) -> Self {
        Column::new(
            name,
            ColumnData::DateTime(epochs.iter().map(|&v| Some(v)).collect()),
        )
    }

    /// Non-null string-list column.
    pub fn from_str_lists(name: &str, values: Vec<Vec<String>>) -> Self {
        Column::new(name, ColumnData::StrList(values.into_iter().map(Some).collect()))
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename, returning the column.
    pub fn renamed(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Data type.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Underlying storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Cell at `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        self.data.get(i)
    }

    /// Iterate cells as [`Value`]s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.data.get(i))
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        self.iter().filter(Value::is_null).count()
    }

    /// Select rows at `indices` into a new column.
    pub fn take(&self, indices: &[usize]) -> Column {
        Column { name: self.name.clone(), data: self.data.take(indices) }
    }

    /// Numeric view of the cells (nulls and non-numerics become None).
    pub fn f64_iter(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        (0..self.len()).map(move |i| self.data.get(i).as_f64())
    }

    /// Mean of the non-null numeric cells.
    pub fn mean(&self) -> Option<f64> {
        let vals: Vec<f64> = self.f64_iter().flatten().collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Sum of the non-null numeric cells (0 for an all-null column).
    pub fn sum(&self) -> f64 {
        self.f64_iter().flatten().sum()
    }

    /// Minimum non-null value (by total order).
    pub fn min(&self) -> Value {
        self.iter()
            .filter(|v| !v.is_null())
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)
    }

    /// Maximum non-null value (by total order).
    pub fn max(&self) -> Value {
        self.iter()
            .filter(|v| !v.is_null())
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)
    }

    /// Sample standard deviation of non-null numeric cells (None if < 2).
    pub fn std(&self) -> Option<f64> {
        let vals: Vec<f64> = self.f64_iter().flatten().collect();
        if vals.len() < 2 {
            return None;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (vals.len() - 1) as f64;
        Some(var.sqrt())
    }

    /// Median of non-null numeric cells.
    pub fn median(&self) -> Option<f64> {
        let mut vals: Vec<f64> = self.f64_iter().flatten().collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        let mid = vals.len() / 2;
        Some(if vals.len() % 2 == 0 { (vals[mid - 1] + vals[mid]) / 2.0 } else { vals[mid] })
    }

    /// Number of distinct non-null values.
    pub fn n_unique(&self) -> usize {
        let mut vals: Vec<String> = self
            .iter()
            .filter(|v| !v.is_null())
            .map(|v| format!("{v:?}"))
            .collect();
        vals.sort();
        vals.dedup();
        vals.len()
    }

    /// Require the column to be of `expected` type.
    pub fn expect_dtype(&self, expected: DType) -> Result<()> {
        if self.dtype() == expected {
            Ok(())
        } else {
            Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected,
                actual: self.dtype(),
            })
        }
    }

    /// Borrow string cells (errors unless a Str column).
    pub fn strs(&self) -> Result<&[Option<String>]> {
        match &self.data {
            ColumnData::Str(v) => Ok(v),
            _ => Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: DType::Str,
                actual: self.dtype(),
            }),
        }
    }

    /// Borrow string-list cells (errors unless a StrList column).
    pub fn str_lists(&self) -> Result<&[Option<Vec<String>>]> {
        match &self.data {
            ColumnData::StrList(v) => Ok(v),
            _ => Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: DType::StrList,
                actual: self.dtype(),
            }),
        }
    }

    /// Borrow datetime cells (errors unless a DateTime column).
    pub fn datetimes(&self) -> Result<&[Option<i64>]> {
        match &self.data {
            ColumnData::DateTime(v) => Ok(v),
            _ => Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: DType::DateTime,
                actual: self.dtype(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_access() {
        let c = Column::from_i64s("x", &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), Value::Int(2));
        assert_eq!(c.get(99), Value::Null);
        assert_eq!(c.dtype(), DType::Int);
    }

    #[test]
    fn push_with_coercion() {
        let mut data = ColumnData::Float(vec![]);
        data.push(Value::Int(2)).unwrap();
        data.push(Value::Float(2.5)).unwrap();
        data.push(Value::Null).unwrap();
        assert_eq!(data.len(), 3);
        assert!(data.push(Value::str("no")).is_err());
    }

    #[test]
    fn aggregates() {
        let c = Column::from_f64s("x", &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.mean(), Some(2.5));
        assert_eq!(c.sum(), 10.0);
        assert_eq!(c.min(), Value::Float(1.0));
        assert_eq!(c.max(), Value::Float(4.0));
        assert_eq!(c.median(), Some(2.5));
        assert!((c.std().unwrap() - 1.2909944).abs() < 1e-6);
    }

    #[test]
    fn aggregates_with_nulls() {
        let c = Column::new("x", ColumnData::Float(vec![Some(1.0), None, Some(3.0)]));
        assert_eq!(c.mean(), Some(2.0));
        assert_eq!(c.null_count(), 1);
        let empty = Column::new("y", ColumnData::Float(vec![None, None]));
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.min(), Value::Null);
    }

    #[test]
    fn take_reorders_and_handles_oob() {
        let c = Column::from_strs("s", &["a", "b", "c"]);
        let t = c.take(&[2, 0, 10]);
        assert_eq!(t.get(0), Value::str("c"));
        assert_eq!(t.get(1), Value::str("a"));
        assert_eq!(t.get(2), Value::Null);
    }

    #[test]
    fn n_unique() {
        let c = Column::from_strs("s", &["a", "b", "a"]);
        assert_eq!(c.n_unique(), 2);
    }

    #[test]
    fn typed_accessors() {
        let c = Column::from_strs("s", &["x"]);
        assert!(c.strs().is_ok());
        assert!(c.datetimes().is_err());
        assert!(c.expect_dtype(DType::Str).is_ok());
        assert!(c.expect_dtype(DType::Int).is_err());
    }

    #[test]
    fn str_list_column() {
        let c = Column::from_str_lists("topics", vec![
            vec!["bug".into(), "ui".into()],
            vec!["perf".into()],
        ]);
        assert_eq!(c.dtype(), DType::StrList);
        assert_eq!(c.get(0), Value::StrList(vec!["bug".into(), "ui".into()]));
    }
}
