//! Civil datetime arithmetic over epoch seconds (UTC), implemented with
//! Howard Hinnant's days-from-civil algorithm. No external time crate: the
//! analysis workloads only need calendar decomposition (year/month/day,
//! weekday, ISO week) and parsing/formatting of `YYYY-MM-DD[ HH:MM:SS]`.

use serde::{Deserialize, Serialize};

/// Day of week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// Monday = 0 … Sunday = 6.
    pub fn index(self) -> u32 {
        self as u32
    }

    /// Is this a Saturday or Sunday?
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// English name ("Monday", …).
    pub fn name(self) -> &'static str {
        match self {
            Weekday::Monday => "Monday",
            Weekday::Tuesday => "Tuesday",
            Weekday::Wednesday => "Wednesday",
            Weekday::Thursday => "Thursday",
            Weekday::Friday => "Friday",
            Weekday::Saturday => "Saturday",
            Weekday::Sunday => "Sunday",
        }
    }
}

/// A broken-down UTC datetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CivilDateTime {
    pub year: i32,
    pub month: u32,
    pub day: u32,
    pub hour: u32,
    pub minute: u32,
    pub second: u32,
}

/// Days from civil date to 1970-01-01 (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

impl CivilDateTime {
    /// Construct from components. Panics on out-of-range month/day/time
    /// (this is a constructor for literals; parsing validates gracefully).
    pub fn new(year: i32, month: u32, day: u32, hour: u32, minute: u32, second: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=31).contains(&day), "day out of range");
        assert!(hour < 24 && minute < 60 && second < 60, "time out of range");
        CivilDateTime { year, month, day, hour, minute, second }
    }

    /// Midnight of a date.
    pub fn date(year: i32, month: u32, day: u32) -> Self {
        Self::new(year, month, day, 0, 0, 0)
    }

    /// Decompose epoch seconds into a civil datetime.
    pub fn from_epoch(secs: i64) -> Self {
        let days = secs.div_euclid(86_400);
        let rem = secs.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        CivilDateTime {
            year,
            month,
            day,
            hour: (rem / 3600) as u32,
            minute: (rem % 3600 / 60) as u32,
            second: (rem % 60) as u32,
        }
    }

    /// Epoch seconds of this datetime.
    pub fn to_epoch(self) -> i64 {
        days_from_civil(self.year, self.month, self.day) * 86_400
            + i64::from(self.hour) * 3600
            + i64::from(self.minute) * 60
            + i64::from(self.second)
    }

    /// Day of week.
    pub fn weekday(self) -> Weekday {
        let days = days_from_civil(self.year, self.month, self.day);
        // 1970-01-01 was a Thursday (index 3 with Monday=0).
        match (days + 3).rem_euclid(7) {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// ISO-8601 week number (1-53).
    pub fn iso_week(self) -> u32 {
        let days = days_from_civil(self.year, self.month, self.day);
        // Shift so weeks run Monday..Sunday, then find the week's Thursday:
        // the Thursday's year is the ISO year, and the week number is the
        // count of weeks since that year's first Thursday-containing week.
        let weekday = (days + 3).rem_euclid(7); // Mon=0
        let thursday = days - weekday + 3;
        let (iso_year, _, _) = civil_from_days(thursday);
        let jan1 = days_from_civil(iso_year, 1, 1);
        (((thursday - jan1) / 7) + 1) as u32
    }

    /// English month name ("January", …).
    pub fn month_name(self) -> &'static str {
        const NAMES: [&str; 12] = [
            "January", "February", "March", "April", "May", "June", "July",
            "August", "September", "October", "November", "December",
        ];
        NAMES[(self.month - 1) as usize]
    }

    /// Parse `YYYY-MM-DD` or `YYYY-MM-DD HH:MM:SS`.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        let (date_part, time_part) = match s.split_once(' ') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut it = date_part.split('-');
        let year: i32 = it.next()?.parse().ok()?;
        let month: u32 = it.next()?.parse().ok()?;
        let day: u32 = it.next()?.parse().ok()?;
        if it.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        let (hour, minute, second) = match time_part {
            None => (0, 0, 0),
            Some(t) => {
                let mut it = t.split(':');
                let h: u32 = it.next()?.parse().ok()?;
                let m: u32 = it.next()?.parse().ok()?;
                let s: u32 = it.next().unwrap_or("0").parse().ok()?;
                if h >= 24 || m >= 60 || s >= 60 {
                    return None;
                }
                (h, m, s)
            }
        };
        Some(CivilDateTime { year, month, day, hour, minute, second })
    }
}

impl std::fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        for &secs in &[0i64, 86_399, 86_400, 1_700_000_000, -1, -86_401] {
            let dt = CivilDateTime::from_epoch(secs);
            assert_eq!(dt.to_epoch(), secs, "roundtrip failed for {secs}");
        }
    }

    #[test]
    fn known_dates() {
        let dt = CivilDateTime::from_epoch(0);
        assert_eq!((dt.year, dt.month, dt.day), (1970, 1, 1));
        assert_eq!(dt.weekday(), Weekday::Thursday);

        // 2023-10-15 was a Sunday.
        let d = CivilDateTime::date(2023, 10, 15);
        assert_eq!(d.weekday(), Weekday::Sunday);
        assert!(d.weekday().is_weekend());
        // 2023-10-16 was a Monday.
        assert_eq!(CivilDateTime::date(2023, 10, 16).weekday(), Weekday::Monday);
    }

    #[test]
    fn leap_years() {
        // 2020-02-29 exists and roundtrips.
        let d = CivilDateTime::date(2020, 2, 29);
        let e = d.to_epoch();
        assert_eq!(CivilDateTime::from_epoch(e), d);
        // 2000 was a leap year (divisible by 400), 1900 was not:
        // March 1st 1900 minus Feb 28th 1900 is 1 day.
        let feb28 = CivilDateTime::date(1900, 2, 28).to_epoch();
        let mar1 = CivilDateTime::date(1900, 3, 1).to_epoch();
        assert_eq!(mar1 - feb28, 86_400);
    }

    #[test]
    fn iso_weeks() {
        // 2023-01-01 was a Sunday → ISO week 52 of 2022.
        assert_eq!(CivilDateTime::date(2023, 1, 1).iso_week(), 52);
        // 2023-01-02 (Monday) starts ISO week 1.
        assert_eq!(CivilDateTime::date(2023, 1, 2).iso_week(), 1);
        // 2023-10-15 is in ISO week 41.
        assert_eq!(CivilDateTime::date(2023, 10, 15).iso_week(), 41);
    }

    #[test]
    fn parsing() {
        let d = CivilDateTime::parse("2023-04-05").unwrap();
        assert_eq!((d.year, d.month, d.day, d.hour), (2023, 4, 5, 0));
        let d = CivilDateTime::parse("2023-04-05 13:45:01").unwrap();
        assert_eq!((d.hour, d.minute, d.second), (13, 45, 1));
        let d = CivilDateTime::parse("2023-04-05 13:45").unwrap();
        assert_eq!((d.hour, d.minute, d.second), (13, 45, 0));
        assert!(CivilDateTime::parse("2023-13-05").is_none());
        assert!(CivilDateTime::parse("2023-04-05 25:00:00").is_none());
        assert!(CivilDateTime::parse("garbage").is_none());
    }

    #[test]
    fn display_format() {
        let d = CivilDateTime::new(2023, 4, 5, 9, 8, 7);
        assert_eq!(d.to_string(), "2023-04-05 09:08:07");
    }

    #[test]
    fn month_names() {
        assert_eq!(CivilDateTime::date(2023, 4, 1).month_name(), "April");
        assert_eq!(CivilDateTime::date(2023, 12, 1).month_name(), "December");
    }
}
