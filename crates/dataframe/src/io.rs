//! CSV and JSON-rows serialization.
//!
//! The experiment binaries persist generated datasets and results; CSV keeps
//! them human-inspectable, JSON rows feed EXPERIMENTS.md regeneration.

use crate::column::{Column, ColumnData, DType};
use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::value::Value;
use crate::Result;

/// Escape a CSV field (RFC-4180 quoting).
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Split one CSV line into fields, honouring quotes. Returns an error
/// message for unterminated quotes.
fn csv_split(line: &str) -> std::result::Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated quote".to_string());
    }
    fields.push(cur);
    Ok(fields)
}

impl DataFrame {
    /// Serialize as CSV. `StrList` cells are joined with `|`, datetimes are
    /// formatted `YYYY-MM-DD HH:MM:SS`, nulls are empty fields.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .column_names()
                .iter()
                .map(|n| csv_escape(n))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in 0..self.n_rows() {
            let fields: Vec<String> = self
                .columns()
                .iter()
                .map(|c| {
                    let v = c.get(row);
                    let s = match &v {
                        Value::StrList(items) => items.join("|"),
                        other => other.to_string(),
                    };
                    csv_escape(&s)
                })
                .collect();
            out.push_str(&fields.join(","));
            out.push('\n');
        }
        out
    }

    /// Parse CSV produced by [`DataFrame::to_csv`], with a declared schema
    /// (CSV has no types). Column order must match the header.
    pub fn from_csv(csv: &str, schema: &[(&str, DType)]) -> Result<DataFrame> {
        let mut lines = csv.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| FrameError::Empty("csv input".into()))?;
        let names = csv_split(header)
            .map_err(|m| FrameError::Parse { line: 1, message: m })?;
        if names.len() != schema.len() {
            return Err(FrameError::Parse {
                line: 1,
                message: format!("expected {} columns, found {}", schema.len(), names.len()),
            });
        }
        for (found, (expected, _)) in names.iter().zip(schema) {
            if found != expected {
                return Err(FrameError::Parse {
                    line: 1,
                    message: format!("expected column '{expected}', found '{found}'"),
                });
            }
        }
        let mut data: Vec<ColumnData> = schema
            .iter()
            .map(|(_, t)| ColumnData::empty(*t))
            .collect();
        // Note: `lines()` never yields the empty remnant after a trailing
        // '\n', so an empty line is a real row (e.g. a single null cell).
        for (lineno, line) in lines {
            let fields = csv_split(line).map_err(|m| FrameError::Parse {
                line: lineno + 1,
                message: m,
            })?;
            if fields.len() != schema.len() {
                return Err(FrameError::Parse {
                    line: lineno + 1,
                    message: format!("expected {} fields, found {}", schema.len(), fields.len()),
                });
            }
            for ((field, (_, dtype)), col) in fields.iter().zip(schema).zip(&mut data) {
                let value = parse_field(field, *dtype).map_err(|m| FrameError::Parse {
                    line: lineno + 1,
                    message: m,
                })?;
                col.push(value)?;
            }
        }
        DataFrame::new(
            schema
                .iter()
                .zip(data)
                .map(|((n, _), d)| Column::new(n, d))
                .collect(),
        )
    }

    /// Serialize as newline-delimited JSON objects (one per row).
    pub fn to_json_rows(&self) -> String {
        let mut out = String::new();
        for row in 0..self.n_rows() {
            let mut obj = serde_json::Map::new();
            for c in self.columns() {
                let v = match c.get(row) {
                    Value::Null => serde_json::Value::Null,
                    Value::Int(i) => serde_json::Value::from(i),
                    Value::Float(f) => serde_json::Value::from(f),
                    Value::Str(s) => serde_json::Value::from(s),
                    Value::Bool(b) => serde_json::Value::from(b),
                    Value::DateTime(t) => serde_json::Value::from(
                        crate::datetime::CivilDateTime::from_epoch(t).to_string(),
                    ),
                    Value::StrList(l) => serde_json::Value::from(l),
                };
                obj.insert(c.name().to_string(), v);
            }
            out.push_str(&serde_json::Value::Object(obj).to_string());
            out.push('\n');
        }
        out
    }
}

fn parse_field(field: &str, dtype: DType) -> std::result::Result<Value, String> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match dtype {
        DType::Int => Value::Int(field.parse().map_err(|_| format!("bad int '{field}'"))?),
        DType::Float => Value::Float(field.parse().map_err(|_| format!("bad float '{field}'"))?),
        DType::Str => Value::Str(field.to_string()),
        DType::Bool => match field {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => return Err(format!("bad bool '{field}'")),
        },
        DType::DateTime => crate::datetime::CivilDateTime::parse(field)
            .map(|d| Value::DateTime(d.to_epoch()))
            .ok_or_else(|| format!("bad datetime '{field}'"))?,
        DType::StrList => Value::StrList(field.split('|').map(str::to_string).collect()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::new(vec![
            Column::from_strs("text", &["plain", "has,comma", "has\"quote"]),
            Column::from_f64s("score", &[1.5, -2.0, 0.0]),
            Column::from_str_lists("topics", vec![
                vec!["bug".into(), "ui".into()],
                vec!["perf".into()],
                vec![],
            ]),
        ])
        .unwrap()
    }

    #[test]
    fn csv_roundtrip() {
        let df = sample();
        let csv = df.to_csv();
        let back = DataFrame::from_csv(
            &csv,
            &[("text", DType::Str), ("score", DType::Float), ("topics", DType::StrList)],
        )
        .unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.cell(1, "text").unwrap(), Value::str("has,comma"));
        assert_eq!(back.cell(2, "text").unwrap(), Value::str("has\"quote"));
        assert_eq!(back.cell(1, "score").unwrap(), Value::Float(-2.0));
        assert_eq!(
            back.cell(0, "topics").unwrap(),
            Value::StrList(vec!["bug".into(), "ui".into()])
        );
    }

    #[test]
    fn csv_schema_validation() {
        let csv = "a,b\n1,2\n";
        assert!(DataFrame::from_csv(csv, &[("a", DType::Int)]).is_err());
        assert!(DataFrame::from_csv(csv, &[("x", DType::Int), ("b", DType::Int)]).is_err());
        assert!(DataFrame::from_csv("a\nnot_int\n", &[("a", DType::Int)]).is_err());
    }

    #[test]
    fn csv_datetime_and_null() {
        let df = DataFrame::new(vec![Column::new(
            "ts",
            ColumnData::DateTime(vec![Some(0), None]),
        )])
        .unwrap();
        let csv = df.to_csv();
        assert!(csv.contains("1970-01-01 00:00:00"));
        let back = DataFrame::from_csv(&csv, &[("ts", DType::DateTime)]).unwrap();
        assert_eq!(back.cell(0, "ts").unwrap(), Value::DateTime(0));
        assert_eq!(back.cell(1, "ts").unwrap(), Value::Null);
    }

    #[test]
    fn json_rows() {
        let j = sample().to_json_rows();
        let first: serde_json::Value = serde_json::from_str(j.lines().next().unwrap()).unwrap();
        assert_eq!(first["text"], "plain");
        assert_eq!(first["topics"][0], "bug");
    }

    #[test]
    fn csv_split_quotes() {
        assert_eq!(
            csv_split(r#"a,"b,c",d"#).unwrap(),
            vec!["a", "b,c", "d"]
        );
        assert_eq!(csv_split(r#""he said ""hi""""#).unwrap(), vec![r#"he said "hi""#]);
        assert!(csv_split(r#""unterminated"#).is_err());
    }
}
