//! Scalar cell values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A single cell value. `StrList` exists because each feedback row carries
/// *multiple* abstractive topics (paper Sec. 3.3: "LLMs predict one or
/// multiple topics for each feedback").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    /// Epoch seconds (UTC).
    DateTime(i64),
    StrList(Vec<String>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// Is this the null value?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: Int and Float (and Bool as 0/1) coerce to f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Epoch-seconds view.
    pub fn as_datetime(&self) -> Option<i64> {
        match self {
            Value::DateTime(t) => Some(*t),
            _ => None,
        }
    }

    /// String-list view.
    pub fn as_str_list(&self) -> Option<&[String]> {
        match self {
            Value::StrList(v) => Some(v),
            _ => None,
        }
    }

    /// Total ordering used by sort and group-by: Null sorts first; numeric
    /// types compare numerically across Int/Float; lists compare
    /// lexicographically; cross-type comparisons fall back to a stable
    /// type-rank order.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (DateTime(a), DateTime(b)) => a.cmp(b),
            (StrList(a), StrList(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    /// Equality for filtering/grouping: Int/Float unify numerically.
    pub fn loose_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::DateTime(_) => 4,
            Value::Str(_) => 5,
            Value::StrList(_) => 6,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x:.4}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::DateTime(t) => {
                write!(f, "{}", crate::datetime::CivilDateTime::from_epoch(*t))
            }
            Value::StrList(v) => write!(f, "[{}]", v.join("; ")),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.loose_eq(other)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).loose_eq(&Value::Float(2.5)));
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.5).to_string(), "2.5000");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::StrList(vec!["a".into(), "b".into()]).to_string(), "[a; b]");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn nan_total_ordering_is_stable() {
        let nan = Value::Float(f64::NAN);
        // total_cmp never panics and is self-consistent.
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
    }
}
