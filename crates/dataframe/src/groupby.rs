//! Group-by/aggregate and value-counts kernels.

use crate::column::{Column, ColumnData};
use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;

/// The aggregation functions understood by [`DataFrame::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    Count,
    Sum,
    Mean,
    Min,
    Max,
    Std,
    Median,
    NUnique,
}

impl AggKind {
    /// Parse the textual name used in AQL (`count`, `sum`, `mean`/`avg`, …).
    pub fn parse(s: &str) -> Option<AggKind> {
        Some(match s.to_ascii_lowercase().as_str() {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "mean" | "avg" | "average" => AggKind::Mean,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            "std" | "stddev" => AggKind::Std,
            "median" => AggKind::Median,
            "nunique" | "n_unique" | "unique" => AggKind::NUnique,
            _ => return None,
        })
    }

    /// The canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Mean => "mean",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::Std => "std",
            AggKind::Median => "median",
            AggKind::NUnique => "nunique",
        }
    }
}

/// One aggregation to compute: `kind` of `column`, output named
/// `{column}_{kind}` (or just `count` for Count).
#[derive(Debug, Clone)]
pub struct Aggregation {
    /// Input column (ignored for `Count`).
    pub column: String,
    /// Aggregation function.
    pub kind: AggKind,
}

impl Aggregation {
    /// Construct an aggregation.
    pub fn new(column: &str, kind: AggKind) -> Self {
        Aggregation { column: column.to_string(), kind }
    }

    /// Output column name.
    pub fn output_name(&self) -> String {
        match self.kind {
            AggKind::Count => "count".to_string(),
            k => format!("{}_{}", self.column, k.name()),
        }
    }

    fn apply(&self, col: &Column) -> Value {
        match self.kind {
            AggKind::Count => Value::Int(col.len() as i64),
            AggKind::Sum => Value::Float(col.sum()),
            AggKind::Mean => col.mean().map_or(Value::Null, Value::Float),
            AggKind::Min => col.min(),
            AggKind::Max => col.max(),
            AggKind::Std => col.std().map_or(Value::Null, Value::Float),
            AggKind::Median => col.median().map_or(Value::Null, Value::Float),
            AggKind::NUnique => Value::Int(col.n_unique() as i64),
        }
    }
}

/// A group key rendered to a comparable, hashable form.
fn key_of(cols: &[&Column], row: usize) -> String {
    let mut key = String::new();
    for c in cols {
        // Debug form distinguishes Int(1) from Str("1").
        key.push_str(&format!("{:?}\u{1}", c.get(row)));
    }
    key
}

impl DataFrame {
    /// Group rows by the `keys` columns and compute `aggs` per group.
    ///
    /// The output has one row per distinct key combination (in order of
    /// first appearance), the key columns first, then one column per
    /// aggregation.
    pub fn group_by(&self, keys: &[&str], aggs: &[Aggregation]) -> Result<DataFrame> {
        if keys.is_empty() {
            return Err(FrameError::Invalid("group_by requires at least one key".into()));
        }
        let key_cols: Vec<&Column> = keys
            .iter()
            .map(|k| self.column(k))
            .collect::<Result<Vec<_>>>()?;
        for agg in aggs {
            if agg.kind != AggKind::Count {
                self.column(&agg.column)?;
            }
        }

        let mut group_rows: Vec<Vec<usize>> = Vec::new();
        let mut group_of: HashMap<String, usize> = HashMap::new();
        let mut first_row: Vec<usize> = Vec::new();
        for row in 0..self.n_rows() {
            let key = key_of(&key_cols, row);
            let g = *group_of.entry(key).or_insert_with(|| {
                group_rows.push(Vec::new());
                first_row.push(row);
                group_rows.len() - 1
            });
            group_rows[g].push(row);
        }

        // Key output columns: take the first row of each group.
        let mut out_cols: Vec<Column> = key_cols
            .iter()
            .map(|c| c.take(&first_row))
            .collect();

        for agg in aggs {
            // Resolve the input column once per aggregation (not per group):
            // Count counts rows, so any column works — use the first key.
            let input = if agg.kind == AggKind::Count {
                key_cols[0]
            } else {
                self.column(&agg.column)?
            };
            let mut data = ColumnData::empty(match agg.kind {
                AggKind::Count | AggKind::NUnique => crate::column::DType::Int,
                // Same dtype as input.
                AggKind::Min | AggKind::Max => input.dtype(),
                _ => crate::column::DType::Float,
            });
            for rows in &group_rows {
                data.push(agg.apply(&input.take(rows)))?;
            }
            out_cols.push(Column::new(&agg.output_name(), data));
        }
        DataFrame::new(out_cols)
    }

    /// Distinct values of `column` with their counts, sorted by count
    /// descending (ties by value ascending). Output columns: `column`,
    /// `count` — except when `column` is itself named `count`, in which
    /// case the value column comes back as `count_value` (the `count`
    /// name is taken by the aggregate).
    pub fn value_counts(&self, column: &str) -> Result<DataFrame> {
        // A key column literally named "count" would collide with the
        // aggregation output; route through a temporary name.
        if column == "count" {
            let renamed = self.rename("count", "__value_counts_key")?;
            let out = renamed.value_counts("__value_counts_key")?;
            return out.rename("__value_counts_key", "count_value");
        }
        let counted = self.group_by(&[column], &[Aggregation::new(column, AggKind::Count)])?;
        let mut indices: Vec<usize> = (0..counted.n_rows()).collect();
        let count_col = counted.column("count")?.clone();
        let val_col = counted.column(column)?.clone();
        indices.sort_by(|&a, &b| {
            count_col
                .get(b)
                .total_cmp(&count_col.get(a))
                .then(val_col.get(a).total_cmp(&val_col.get(b)))
        });
        Ok(counted.take(&indices))
    }

    /// Cross-tabulate: counts of `row_key` × `col_key` combinations as a
    /// wide frame — one row per `row_key` value, one Int column per
    /// `col_key` value (plus the leading key column).
    pub fn crosstab(&self, row_key: &str, col_key: &str) -> Result<DataFrame> {
        let counts = self.group_by(
            &[row_key, col_key],
            &[Aggregation::new(row_key, AggKind::Count)],
        )?;
        // Collect distinct row and column values in first-appearance order,
        // deduplicating through a keyed map rather than an O(n²)
        // `iter().any(loose_eq)` scan. Each column is uniformly typed, so a
        // per-dtype canonical key is exactly equivalent to same-dtype
        // `loose_eq` (Floats compare equal under `total_cmp` iff their bits
        // match; Int/Str/Bool/… under their exact values).
        fn cell_key(v: &Value) -> String {
            match v {
                Value::Null => "z:".to_string(),
                Value::Int(i) => format!("i:{i}"),
                Value::Float(f) => format!("f:{:016x}", f.to_bits()),
                other => format!("{other:?}"),
            }
        }
        let rk = counts.column(row_key)?;
        let ck = counts.column(col_key)?;
        let cnt = counts.column("count")?;
        let mut row_vals: Vec<Value> = Vec::new();
        let mut col_vals: Vec<Value> = Vec::new();
        let mut row_idx: HashMap<String, usize> = HashMap::new();
        let mut col_idx: HashMap<String, usize> = HashMap::new();
        for i in 0..counts.n_rows() {
            let rv = rk.get(i);
            let cv = ck.get(i);
            row_idx.entry(cell_key(&rv)).or_insert_with(|| {
                row_vals.push(rv);
                row_vals.len() - 1
            });
            col_idx.entry(cell_key(&cv)).or_insert_with(|| {
                col_vals.push(cv);
                col_vals.len() - 1
            });
        }
        // Deterministic column order. Remap indices to the sorted layout.
        let mut col_order: Vec<usize> = (0..col_vals.len()).collect();
        col_order.sort_by(|&a, &b| col_vals[a].total_cmp(&col_vals[b]));
        let mut col_rank = vec![0usize; col_vals.len()];
        for (rank, &orig) in col_order.iter().enumerate() {
            col_rank[orig] = rank;
        }
        let col_vals: Vec<Value> =
            col_order.iter().map(|&i| col_vals[i].clone()).collect();

        let mut table = vec![vec![0i64; col_vals.len()]; row_vals.len()];
        for i in 0..counts.n_rows() {
            let r = row_idx[&cell_key(&rk.get(i))];
            let c = col_rank[col_idx[&cell_key(&ck.get(i))]];
            if let Some(n) = cnt.get(i).as_f64() {
                table[r][c] = n as i64;
            }
        }
        let mut cols = vec![Column::new(
            row_key,
            {
                let mut data = ColumnData::empty(rk.dtype());
                for v in &row_vals {
                    data.push(v.clone())?;
                }
                data
            },
        )];
        let mut used: Vec<String> = vec![row_key.to_string()];
        for (j, cv) in col_vals.iter().enumerate() {
            let vals: Vec<i64> = table.iter().map(|row| row[j]).collect();
            // Data values can collide with the row-key name or each other
            // (e.g. a null and an empty string both display as ""); suffix
            // until unique so construction cannot fail.
            let mut name = cv.to_string();
            if name.is_empty() {
                name = "(null)".to_string();
            }
            while used.contains(&name) {
                name.push('_');
            }
            used.push(name.clone());
            cols.push(Column::from_i64s(&name, &vals));
        }
        DataFrame::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::new(vec![
            Column::from_strs("product", &["A", "B", "A", "B", "A"]),
            Column::from_strs("label", &["bug", "bug", "praise", "praise", "bug"]),
            Column::from_f64s("score", &[1.0, 2.0, 3.0, 4.0, 5.0]),
        ])
        .unwrap()
    }

    #[test]
    fn group_by_mean_and_count() {
        let g = sample()
            .group_by(
                &["product"],
                &[
                    Aggregation::new("score", AggKind::Mean),
                    Aggregation::new("score", AggKind::Count),
                ],
            )
            .unwrap();
        assert_eq!(g.n_rows(), 2);
        // First-appearance order: A then B.
        assert_eq!(g.cell(0, "product").unwrap(), Value::str("A"));
        assert_eq!(g.cell(0, "score_mean").unwrap(), Value::Float(3.0));
        assert_eq!(g.cell(0, "count").unwrap(), Value::Int(3));
        assert_eq!(g.cell(1, "score_mean").unwrap(), Value::Float(3.0));
    }

    #[test]
    fn group_by_multiple_keys() {
        let g = sample()
            .group_by(
                &["product", "label"],
                &[Aggregation::new("score", AggKind::Sum)],
            )
            .unwrap();
        assert_eq!(g.n_rows(), 4);
        let a_bug = g
            .filter_eq("product", &Value::str("A"))
            .unwrap()
            .filter_eq("label", &Value::str("bug"))
            .unwrap();
        assert_eq!(a_bug.cell(0, "score_sum").unwrap(), Value::Float(6.0));
    }

    #[test]
    fn min_max_keep_dtype() {
        let g = sample()
            .group_by(&["product"], &[Aggregation::new("label", AggKind::Min)])
            .unwrap();
        assert_eq!(g.cell(0, "label_min").unwrap(), Value::str("bug"));
    }

    #[test]
    fn value_counts_sorted() {
        let vc = sample().value_counts("label").unwrap();
        assert_eq!(vc.cell(0, "label").unwrap(), Value::str("bug"));
        assert_eq!(vc.cell(0, "count").unwrap(), Value::Int(3));
        assert_eq!(vc.cell(1, "count").unwrap(), Value::Int(2));
    }

    #[test]
    fn crosstab_counts() {
        let ct = sample().crosstab("product", "label").unwrap();
        assert_eq!(ct.n_rows(), 2);
        assert_eq!(ct.cell(0, "bug").unwrap(), Value::Int(2)); // A×bug
        assert_eq!(ct.cell(0, "praise").unwrap(), Value::Int(1));
        assert_eq!(ct.cell(1, "bug").unwrap(), Value::Int(1)); // B×bug
    }

    #[test]
    fn crosstab_keyed_dedup_preserves_order_and_nulls() {
        // Null cells, duplicate values and Int column keys exercise the
        // keyed-map dedup; row order must stay first-appearance, column
        // order sorted.
        let df = DataFrame::new(vec![
            Column::new(
                "r",
                ColumnData::Str(vec![
                    Some("b".into()),
                    Some("a".into()),
                    None,
                    Some("b".into()),
                    Some("a".into()),
                    Some("b".into()),
                ]),
            ),
            Column::from_i64s("c", &[2, 1, 2, 1, 2, 2]),
        ])
        .unwrap();
        let ct = df.crosstab("r", "c").unwrap();
        // First appearance: "b", "a", null.
        assert_eq!(ct.cell(0, "r").unwrap(), Value::str("b"));
        assert_eq!(ct.cell(1, "r").unwrap(), Value::str("a"));
        assert_eq!(ct.cell(2, "r").unwrap(), Value::Null);
        // Columns sorted ascending: 1 then 2.
        let names: Vec<&str> =
            ct.columns().iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["r", "1", "2"]);
        assert_eq!(ct.cell(0, "1").unwrap(), Value::Int(1)); // b×1
        assert_eq!(ct.cell(0, "2").unwrap(), Value::Int(2)); // b×2
        assert_eq!(ct.cell(1, "1").unwrap(), Value::Int(1)); // a×1
        assert_eq!(ct.cell(1, "2").unwrap(), Value::Int(1)); // a×2
        assert_eq!(ct.cell(2, "2").unwrap(), Value::Int(1)); // null×2
    }

    #[test]
    fn group_by_errors() {
        assert!(sample().group_by(&[], &[]).is_err());
        assert!(sample()
            .group_by(&["nope"], &[Aggregation::new("score", AggKind::Sum)])
            .is_err());
        assert!(sample()
            .group_by(&["product"], &[Aggregation::new("nope", AggKind::Sum)])
            .is_err());
    }

    #[test]
    fn agg_kind_parsing() {
        assert_eq!(AggKind::parse("AVG"), Some(AggKind::Mean));
        assert_eq!(AggKind::parse("nunique"), Some(AggKind::NUnique));
        assert_eq!(AggKind::parse("bogus"), None);
    }

    #[test]
    fn int_str_keys_do_not_collide() {
        let df = DataFrame::new(vec![
            Column::new(
                "k",
                ColumnData::Str(vec![Some("1".into()), Some("1".into())]),
            ),
            Column::from_i64s("v", &[1, 2]),
        ])
        .unwrap();
        let g = df
            .group_by(&["k"], &[Aggregation::new("v", AggKind::Count)])
            .unwrap();
        assert_eq!(g.n_rows(), 1);
    }
}
