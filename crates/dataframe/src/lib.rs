//! Columnar dataframe engine for AllHands.
//!
//! The paper's QA agent executes generated Python (pandas) inside a Jupyter
//! kernel. This crate is the Rust substrate that plays pandas' role: a typed
//! columnar table with the relational and analytical kernels the generated
//! analysis code needs — filter, select, group-by/aggregate, sort, join,
//! pivot-style counting, datetime decomposition, string predicates, and
//! basic statistics.
//!
//! Design notes:
//! - Columns are typed vectors with per-cell nullability ([`ColumnData`]),
//!   not `Vec<Value>`: kernels iterate natively-typed slices.
//! - All operations are immutable — they return new frames — matching how
//!   generated analysis code composes steps.
//! - Errors are values ([`FrameError`]), never panics, because generated
//!   code must be able to fail gracefully and trigger the agent's
//!   self-reflection loop.
//!
//! # Example
//!
//! ```
//! use allhands_dataframe::{DataFrame, Column, Value};
//!
//! let df = DataFrame::new(vec![
//!     Column::from_strs("product", &["WhatsApp", "Windows", "WhatsApp"]),
//!     Column::from_f64s("sentiment", &[0.8, -0.2, 0.5]),
//! ]).unwrap();
//!
//! let whatsapp = df.filter_eq("product", &Value::str("WhatsApp")).unwrap();
//! assert_eq!(whatsapp.n_rows(), 2);
//! let mean = whatsapp.column("sentiment").unwrap().mean().unwrap();
//! assert!((mean - 0.65).abs() < 1e-9);
//! ```

pub mod column;
pub mod datetime;
pub mod error;
pub mod frame;
pub mod groupby;
pub mod io;
pub mod join;
pub mod stats;
pub mod value;

pub use column::{Column, ColumnData, DType};
pub use datetime::{CivilDateTime, Weekday};
pub use error::FrameError;
pub use frame::DataFrame;
pub use groupby::{AggKind, Aggregation};
pub use join::JoinKind;
pub use stats::{pearson, zscore_anomalies};
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FrameError>;
