//! Error type for dataframe operations.
//!
//! Generated analysis code runs against this engine; failures must surface
//! as values with actionable messages, because the QA agent feeds them back
//! into the code generator's self-reflection loop (paper Sec. 3.4.2).

use crate::column::DType;

/// All the ways a dataframe operation can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// Referenced column does not exist; carries the name and the available
    /// columns (so reflection can suggest alternatives).
    UnknownColumn { name: String, available: Vec<String> },
    /// A column was used at an incompatible type.
    TypeMismatch { column: String, expected: DType, actual: DType },
    /// Columns of differing lengths were combined into one frame.
    LengthMismatch { expected: usize, actual: usize },
    /// Duplicate column name on construction or rename.
    DuplicateColumn(String),
    /// An operation that needs at least one row/column got none.
    Empty(String),
    /// Row index out of bounds.
    RowOutOfBounds { index: usize, len: usize },
    /// Invalid argument (bad aggregation for a dtype, malformed datetime
    /// string, negative window, ...).
    Invalid(String),
    /// CSV/JSON parse error with line context.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::UnknownColumn { name, available } => {
                write!(f, "unknown column '{name}'; available: {}", available.join(", "))
            }
            FrameError::TypeMismatch { column, expected, actual } => {
                write!(f, "column '{column}' has type {actual:?}, expected {expected:?}")
            }
            FrameError::LengthMismatch { expected, actual } => {
                write!(f, "column length {actual} does not match frame length {expected}")
            }
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column '{name}'"),
            FrameError::Empty(what) => write!(f, "{what} is empty"),
            FrameError::RowOutOfBounds { index, len } => {
                write!(f, "row {index} out of bounds (len {len})")
            }
            FrameError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
            FrameError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = FrameError::UnknownColumn {
            name: "sentimant".into(),
            available: vec!["sentiment".into(), "topic".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("sentimant"));
        assert!(msg.contains("sentiment"));
    }
}
