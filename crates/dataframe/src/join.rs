//! Hash joins.

use crate::column::Column;
use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;

/// Canonical join-key encoding: Int and Float unify numerically (matching
/// the loose equality used by filters/group-by); everything else keys on
/// its exact debug form.
///
/// Int keys use the exact i64 — never a lossy f64 cast — so distinct Int
/// keys above 2^53 cannot collide. A Float that round-trips through i64
/// (`f as i64 as f64 == f`) keys as that integer, which both unifies
/// integral floats with Int keys and normalizes `-0.0` to `0` (IEEE
/// `0i64 as f64 == -0.0`). Non-integral floats (including NaN, infinities
/// and magnitudes beyond i64 range) key on their exact bit pattern, which
/// matches the `total_cmp` equality used elsewhere.
fn join_key(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => {
            let i = *f as i64;
            if i as f64 == *f {
                format!("i:{i}")
            } else {
                format!("f:{:016x}", f.to_bits())
            }
        }
        other => format!("{other:?}"),
    }
}

/// Join flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep rows with matches on both sides.
    Inner,
    /// Keep every left row; unmatched right cells become null.
    Left,
}

impl DataFrame {
    /// Hash-join `self` with `other` on the equality of `on` (a column
    /// present in both frames). Right-side columns that collide with
    /// left-side names (other than the key) are suffixed `_right`.
    ///
    /// Matching uses the same key encoding as group-by, so Int/Float keys
    /// unify numerically and nulls never match (SQL semantics).
    pub fn join(&self, other: &DataFrame, on: &str, kind: JoinKind) -> Result<DataFrame> {
        let left_key = self.column(on)?;
        let right_key = other.column(on)?;

        // Build hash index over the right side.
        let mut right_index: HashMap<String, Vec<usize>> = HashMap::new();
        for i in 0..other.n_rows() {
            let v = right_key.get(i);
            if v.is_null() {
                continue;
            }
            right_index.entry(join_key(&v)).or_default().push(i);
        }

        let mut left_rows: Vec<usize> = Vec::new();
        // usize::MAX marks "no match" (left join padding).
        let mut right_rows: Vec<usize> = Vec::new();
        for i in 0..self.n_rows() {
            let v = left_key.get(i);
            let matches = if v.is_null() {
                None
            } else {
                right_index.get(&join_key(&v))
            };
            match matches {
                Some(rows) => {
                    for &r in rows {
                        left_rows.push(i);
                        right_rows.push(r);
                    }
                }
                None => {
                    if kind == JoinKind::Left {
                        left_rows.push(i);
                        right_rows.push(usize::MAX);
                    }
                }
            }
        }

        let mut cols: Vec<Column> = self.take(&left_rows).columns().to_vec();
        let left_names: Vec<String> =
            cols.iter().map(|c| c.name().to_string()).collect();
        for rc in other.columns() {
            if rc.name() == on {
                continue;
            }
            // take() maps usize::MAX out of range → null cells, which is
            // exactly the left-join padding we need.
            let taken = rc.take(&right_rows);
            let name = if left_names.iter().any(|n| n == rc.name()) {
                format!("{}_right", rc.name())
            } else {
                rc.name().to_string()
            };
            cols.push(taken.renamed(&name));
        }
        DataFrame::new(cols).map_err(|e| match e {
            FrameError::DuplicateColumn(c) => FrameError::Invalid(format!(
                "join produced duplicate column '{c}'; rename before joining"
            )),
            other => other,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn left() -> DataFrame {
        DataFrame::new(vec![
            Column::from_strs("k", &["a", "b", "c"]),
            Column::from_i64s("x", &[1, 2, 3]),
        ])
        .unwrap()
    }

    fn right() -> DataFrame {
        DataFrame::new(vec![
            Column::from_strs("k", &["a", "a", "b"]),
            Column::from_strs("y", &["p", "q", "r"]),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_multiplicity() {
        let j = left().join(&right(), "k", JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 3); // a×2 + b×1
        assert_eq!(j.cell(0, "y").unwrap(), Value::str("p"));
        assert_eq!(j.cell(1, "y").unwrap(), Value::str("q"));
        assert_eq!(j.cell(2, "k").unwrap(), Value::str("b"));
    }

    #[test]
    fn left_join_pads_nulls() {
        let j = left().join(&right(), "k", JoinKind::Left).unwrap();
        assert_eq!(j.n_rows(), 4);
        let c_row = j.filter_eq("k", &Value::str("c")).unwrap();
        assert_eq!(c_row.cell(0, "y").unwrap(), Value::Null);
    }

    #[test]
    fn name_collision_suffixed() {
        let r = DataFrame::new(vec![
            Column::from_strs("k", &["a"]),
            Column::from_i64s("x", &[99]),
        ])
        .unwrap();
        let j = left().join(&r, "k", JoinKind::Inner).unwrap();
        assert!(j.has_column("x_right"));
        assert_eq!(j.cell(0, "x").unwrap(), Value::Int(1));
        assert_eq!(j.cell(0, "x_right").unwrap(), Value::Int(99));
    }

    #[test]
    fn missing_key_errors() {
        assert!(left().join(&right(), "nope", JoinKind::Inner).is_err());
    }

    #[test]
    fn int_keys_above_2_pow_53_do_not_collide() {
        // 2^53 and 2^53 + 1 are distinct i64s but identical after an f64
        // round-trip; the old encoding joined them together.
        let big = 1i64 << 53;
        let l = DataFrame::new(vec![
            Column::from_i64s("k", &[big, big + 1]),
            Column::from_strs("side", &["l0", "l1"]),
        ])
        .unwrap();
        let r = DataFrame::new(vec![
            Column::from_i64s("k", &[big, big + 1]),
            Column::from_strs("tag", &["r0", "r1"]),
        ])
        .unwrap();
        let j = l.join(&r, "k", JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 2, "exact i64 keys must not collide: {j:?}");
        assert_eq!(j.cell(0, "tag").unwrap(), Value::str("r0"));
        assert_eq!(j.cell(1, "tag").unwrap(), Value::str("r1"));
    }

    #[test]
    fn negative_zero_unifies_with_int_zero() {
        use crate::column::ColumnData;
        let l = DataFrame::new(vec![
            Column::new("k", ColumnData::Float(vec![Some(-0.0), Some(1.5)])),
            Column::from_strs("side", &["zero", "frac"]),
        ])
        .unwrap();
        let r = DataFrame::new(vec![
            Column::from_i64s("k", &[0, 2]),
            Column::from_strs("tag", &["int-zero", "two"]),
        ])
        .unwrap();
        let j = l.join(&r, "k", JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 1, "Float(-0.0) must join Int(0): {j:?}");
        assert_eq!(j.cell(0, "tag").unwrap(), Value::str("int-zero"));
    }

    #[test]
    fn integral_floats_unify_with_ints() {
        use crate::column::ColumnData;
        let l = DataFrame::new(vec![
            Column::new("k", ColumnData::Float(vec![Some(2.0), Some(2.5)])),
            Column::from_strs("side", &["a", "b"]),
        ])
        .unwrap();
        let r = DataFrame::new(vec![
            Column::from_i64s("k", &[2]),
            Column::from_strs("tag", &["two"]),
        ])
        .unwrap();
        let j = l.join(&r, "k", JoinKind::Left).unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.cell(0, "tag").unwrap(), Value::str("two"));
        assert_eq!(j.cell(1, "tag").unwrap(), Value::Null);
    }

    #[test]
    fn nulls_never_match() {
        use crate::column::ColumnData;
        let l = DataFrame::new(vec![Column::new(
            "k",
            ColumnData::Str(vec![None, Some("a".into())]),
        )])
        .unwrap();
        let j = l.join(&right(), "k", JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 2); // only "a" matches (twice)
    }
}
