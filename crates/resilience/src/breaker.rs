//! Per-head circuit breakers.
//!
//! The breaker is deliberately time-free: cooldown is measured in *denied
//! calls*, not elapsed wall clock, so a seeded run trips and recovers at
//! exactly the same call indices every time. That keeps chaos runs
//! bit-reproducible, which the determinism tests rely on — and, because
//! the whole state is four small counters, a breaker can be snapshotted
//! into the crash journal and restored on resume ([`BreakerSnapshot`]).

use serde::{Deserialize, Serialize};

/// The three LLM task heads, one per pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Head {
    /// ICL classification (stage 1).
    Classify,
    /// Abstractive topic summarization (stage 2).
    Summarize,
    /// Natural language → AQL code generation (stage 3).
    Codegen,
}

impl Head {
    pub fn label(self) -> &'static str {
        match self {
            Head::Classify => "classify",
            Head::Summarize => "summarize",
            Head::Codegen => "codegen",
        }
    }

    pub const ALL: [Head; 3] = [Head::Classify, Head::Summarize, Head::Codegen];
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive operation failures (after retries) that open the breaker.
    pub failure_threshold: u32,
    /// Denied calls while open before a half-open probe is admitted.
    pub cooldown_denials: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown_denials: 5 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation; calls flow through.
    Closed,
    /// Failing hard; calls are denied without being attempted.
    Open,
    /// One probe call is admitted; its outcome decides open vs. closed.
    HalfOpen,
}

/// The complete dynamic state of one breaker — everything beyond its
/// (immutable) configuration. Journaled at stage boundaries so a resumed
/// run continues from exactly the breaker trajectory the crashed run left.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerSnapshot {
    pub state: BreakerState,
    pub consecutive_failures: u32,
    pub denied_while_open: u32,
    pub trips: u32,
}

/// A call-count-based circuit breaker for one head.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    denied_while_open: u32,
    /// Total number of closed→open transitions (for stats/reporting).
    trips: u32,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            denied_while_open: 0,
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Export the dynamic state for journaling.
    pub fn snapshot(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state,
            consecutive_failures: self.consecutive_failures,
            denied_while_open: self.denied_while_open,
            trips: self.trips,
        }
    }

    /// Restore dynamic state from a snapshot (configuration is unchanged).
    pub fn restore(&mut self, snap: &BreakerSnapshot) {
        self.state = snap.state;
        self.consecutive_failures = snap.consecutive_failures;
        self.denied_while_open = snap.denied_while_open;
        self.trips = snap.trips;
    }

    /// Ask to place a call. Returns `true` if the call may proceed. While
    /// open, each denial counts toward the cooldown; once enough calls have
    /// been denied the breaker admits a half-open probe.
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.denied_while_open += 1;
                if self.denied_while_open >= self.config.cooldown_denials {
                    self.state = BreakerState::HalfOpen;
                }
                false
            }
        }
    }

    /// Record that an admitted call succeeded.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Record that an admitted call failed (after its own retries).
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => {
                // Probe failed: reopen and restart the cooldown.
                self.state = BreakerState::Open;
                self.denied_while_open = 0;
                self.trips += 1;
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open;
                    self.denied_while_open = 0;
                    self.trips += 1;
                }
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_recovers_via_probe() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 2, cooldown_denials: 3 });
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Denied during cooldown.
        assert!(!b.admit());
        assert!(!b.admit());
        assert!(!b.admit());
        // Cooldown elapsed: next admit is the half-open probe.
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 1, cooldown_denials: 2 });
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit());
        assert!(!b.admit());
        assert!(b.admit()); // probe
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 3, cooldown_denials: 2 });
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "reset failures must not accumulate");
    }
}
