//! Resilience layer for the AllHands pipeline.
//!
//! The paper's pipeline calls an LLM hundreds of times per run (Sec. 3);
//! in production each of those calls can time out, get throttled, or come
//! back garbled. This crate makes that failure surface *testable*:
//!
//! - [`FaultInjector`] wraps any [`allhands_llm::LanguageModel`] and
//!   injects transient faults on a seeded schedule ([`FaultPlan`]) — same
//!   seed, same faults, bit-exact, reusing the hash-based determinism the
//!   simulated model already uses for label slips;
//! - [`RetryPolicy`] retries transient failures with exponential backoff
//!   and deterministic jitter (delays are virtual: recorded, never slept);
//! - [`CircuitBreaker`] (one per task [`Head`]) stops hammering a failing
//!   head and lets stages fall back to degraded-but-useful behaviour;
//! - [`AllHandsError`] is the unified error taxonomy every stage converges
//!   on, with a single `retryable()` classification.
//!
//! [`ResilienceCtx`] ties these together: stages share one `Arc<ResilienceCtx>`
//! and route their LLM operations through [`ResilienceCtx::call`], which does
//! breaker admission, the retry loop, backoff bookkeeping, and breaker state
//! transitions. Degradations (fallback classifier engaged, refinement
//! skipped, partial answer) are recorded as [`DegradationEvent`]s so every
//! degraded output carries an explicit, user-visible note.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod breaker;
pub mod error;
pub mod fault;
pub mod retry;

pub use breaker::{BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker, Head};
pub use error::AllHandsError;
pub use fault::{FaultInjector, FaultKind, FaultPlan, InjectedCrash, InjectionEvent};
pub use retry::RetryPolicy;

use allhands_obs::Recorder;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Knobs for the whole resilience layer. `Default` disables injection and
/// keeps conservative retry/breaker settings, so a pipeline constructed
/// without explicit chaos configuration behaves exactly like one with no
/// resilience layer at all (single attempt, nothing injected).
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Master switch for fault injection. Retries and breakers are always
    /// armed (they are inert when nothing fails).
    pub enabled: bool,
    pub fault: FaultPlan,
    pub retry: RetryPolicy,
    pub breaker: BreakerConfig,
    /// Poison-pill marker: any document whose text contains this substring
    /// panics mid-processing (via [`ResilienceCtx::check_poison`]),
    /// exercising the per-item isolation in `allhands-par`. `None` (the
    /// default) disarms the pill.
    pub poison_marker: Option<&'static str>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            enabled: false,
            fault: FaultPlan::none(),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            poison_marker: None,
        }
    }
}

impl ResilienceConfig {
    /// A chaos-test configuration: uniform faults at `total_rate` across all
    /// five transient kinds, jitter and fault schedule sharing one `seed`.
    pub fn chaos(seed: u64, total_rate: f64) -> Self {
        ResilienceConfig {
            enabled: true,
            fault: FaultPlan::uniform(seed, total_rate),
            retry: RetryPolicy { seed, ..RetryPolicy::default() },
            breaker: BreakerConfig::default(),
            poison_marker: None,
        }
    }
}

/// One recorded degradation: which stage degraded and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationEvent {
    /// Stage label: `"classification"`, `"topic-modeling"`, `"qa-agent"`.
    pub stage: String,
    /// Human-readable note, also surfaced on degraded outputs.
    pub note: String,
}

/// One quarantined document: a poison pill (or any other per-item panic)
/// that was isolated by `allhands-par` instead of taking the batch down.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Stage label: `"classification"`, `"topic-modeling"`.
    pub stage: String,
    /// The document's id.
    pub doc_id: String,
    /// The panic payload, as a string.
    pub payload: String,
}

/// Aggregate counters for a run, for reporting and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Operation attempts placed through [`ResilienceCtx::call`].
    pub attempts: u64,
    /// Attempts that were retries (attempt ≥ 2).
    pub retries: u64,
    /// Operations that ultimately failed after exhausting their budget.
    pub exhausted: u64,
    /// Calls denied by an open breaker without being attempted.
    pub breaker_denials: u64,
    /// Total virtual backoff across all retries, in milliseconds.
    pub total_backoff_ms: u64,
}

struct CtxState {
    breakers: [CircuitBreaker; 3],
    degradations: Vec<DegradationEvent>,
    stats: ResilienceStats,
    /// Attempts placed so far, used as the fault plan's call index. One
    /// counter across heads keeps the schedule a pure function of call
    /// order, which is itself deterministic.
    fault_calls: u64,
    /// Faults injected at the typed-head level (reporting).
    injected: u64,
    /// Crash points passed so far; [`ResilienceCtx::crash_point`] panics
    /// when this counter reaches `fault.crash_at`.
    crash_points: u64,
    /// Documents isolated by per-item panic quarantine, in order.
    quarantine: Vec<QuarantineRecord>,
}

/// The complete mutable state of a [`ResilienceCtx`], serialized into the
/// crash journal at every stage boundary. Fault injection is a pure
/// function of the shared call counter, so a resumed run that *skips* a
/// completed stage must restore these counters to stay on the exact fault
/// schedule the crashed run was on — that is what makes resumed transcripts
/// byte-identical to uninterrupted ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSnapshot {
    pub fault_calls: u64,
    pub injected: u64,
    pub crash_points: u64,
    pub stats: ResilienceStats,
    pub breakers: Vec<BreakerSnapshot>,
    pub degradations: Vec<DegradationEvent>,
    pub quarantine: Vec<QuarantineRecord>,
}

/// Shared resilience state for one pipeline run. Stages hold an
/// `Arc<ResilienceCtx>` and route head-level operations through [`call`].
///
/// [`call`]: ResilienceCtx::call
pub struct ResilienceCtx {
    config: ResilienceConfig,
    state: Mutex<CtxState>,
    recorder: Recorder,
}

impl ResilienceCtx {
    pub fn new(config: ResilienceConfig) -> Self {
        Self::with_recorder(config, Recorder::disabled())
    }

    /// Like [`new`](Self::new), but metrics flow into `recorder`
    /// (`resilience.*` counters, breaker transition counts).
    pub fn with_recorder(config: ResilienceConfig, recorder: Recorder) -> Self {
        let breaker = CircuitBreaker::new(config.breaker);
        ResilienceCtx {
            config,
            state: Mutex::new(CtxState {
                breakers: [breaker.clone(), breaker.clone(), breaker],
                degradations: Vec::new(),
                stats: ResilienceStats::default(),
                fault_calls: 0,
                injected: 0,
                crash_points: 0,
                quarantine: Vec::new(),
            }),
            recorder,
        }
    }

    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// The observability recorder shared with this ctx (possibly disabled).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn idx(head: Head) -> usize {
        match head {
            Head::Classify => 0,
            Head::Summarize => 1,
            Head::Codegen => 2,
        }
    }

    fn state_label(state: BreakerState) -> &'static str {
        match state {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Count a breaker state transition (deterministic: breaker state is a
    /// pure function of the sequential operation-outcome order).
    fn record_transition(&self, head: Head, before: BreakerState, after: BreakerState) {
        if before != after && self.recorder.is_enabled() {
            self.recorder.incr(&format!(
                "resilience.breaker.{}.{}_to_{}",
                head.label(),
                Self::state_label(before),
                Self::state_label(after)
            ));
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CtxState> {
        // A poisoned lock means another stage panicked; resilience state is
        // plain counters, so continuing with it is safe.
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Run `op` through the head's breaker and retry policy.
    ///
    /// `op` receives the 1-based attempt number. Transient errors are
    /// retried up to `retry.max_attempts` with recorded virtual backoff;
    /// permanent errors abort immediately. The breaker observes the
    /// *operation* outcome (post-retries), not individual attempts, so a
    /// single flaky call that recovers on retry does not count against it.
    pub fn call<T>(
        &self,
        head: Head,
        mut op: impl FnMut(u32) -> Result<T, AllHandsError>,
    ) -> Result<T, AllHandsError> {
        {
            let mut st = self.lock();
            let before = st.breakers[Self::idx(head)].state();
            let admitted = st.breakers[Self::idx(head)].admit();
            let after = st.breakers[Self::idx(head)].state();
            drop(st);
            self.record_transition(head, before, after);
            if !admitted {
                self.lock().stats.breaker_denials += 1;
                if self.recorder.is_enabled() {
                    self.recorder.incr("resilience.breaker_denials");
                    self.recorder.incr(&format!("resilience.breaker_denials.{}", head.label()));
                }
                return Err(AllHandsError::BreakerOpen { head });
            }
        }
        let policy = self.config.retry;
        let mut attempt = 1u32;
        loop {
            // Stages call typed heads rather than the raw completion API, so
            // the fault plan is consulted here too: an injected fault costs
            // the attempt without running the operation. Each attempt
            // advances the plan's call index, so retries of a faulted call
            // re-roll rather than re-fault forever.
            let injected = {
                let mut st = self.lock();
                st.stats.attempts += 1;
                if attempt > 1 {
                    st.stats.retries += 1;
                }
                if self.config.enabled {
                    let idx = st.fault_calls;
                    st.fault_calls += 1;
                    let fault = self.config.fault.decide(head, idx);
                    if fault.is_some() {
                        st.injected += 1;
                    }
                    fault
                } else {
                    None
                }
            };
            if self.recorder.is_enabled() {
                self.recorder.incr("resilience.attempts");
                if attempt > 1 {
                    self.recorder.incr("resilience.retries");
                    self.recorder.incr(&format!("resilience.retries.{}", head.label()));
                }
                if let Some(kind) = injected {
                    self.recorder.incr("resilience.injected");
                    self.recorder.incr(&format!("resilience.injected.{}", kind.label()));
                }
            }
            let outcome = match injected {
                Some(kind) => Err(AllHandsError::Llm(allhands_llm::LlmError::new(
                    kind.error_kind(),
                    format!("injected {} fault on {} head", kind.label(), head.label()),
                ))),
                None => op(attempt),
            };
            match outcome {
                Ok(value) => {
                    self.lock().breakers[Self::idx(head)].record_success();
                    return Ok(value);
                }
                Err(e) if !e.retryable() => {
                    self.lock().breakers[Self::idx(head)].record_failure();
                    return Err(e);
                }
                Err(e) => {
                    if attempt >= policy.max_attempts.max(1) {
                        let mut st = self.lock();
                        st.breakers[Self::idx(head)].record_failure();
                        st.stats.exhausted += 1;
                        drop(st);
                        self.recorder.incr("resilience.exhausted");
                        self.recorder.incr(&format!("resilience.exhausted.{}", head.label()));
                        return Err(AllHandsError::RetriesExhausted {
                            head,
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    attempt += 1;
                    let delay = policy.backoff_ms(head, attempt);
                    self.lock().stats.total_backoff_ms += delay;
                }
            }
        }
    }

    /// Current breaker state for `head`.
    pub fn breaker_state(&self, head: Head) -> BreakerState {
        self.lock().breakers[Self::idx(head)].state()
    }

    /// Whether `head`'s breaker is currently denying calls.
    pub fn breaker_open(&self, head: Head) -> bool {
        self.breaker_state(head) == BreakerState::Open
    }

    /// Total closed→open transitions for `head`.
    pub fn breaker_trips(&self, head: Head) -> u32 {
        self.lock().breakers[Self::idx(head)].trips()
    }

    /// Record a degradation; the note should be specific enough for a user
    /// reading a degraded output to understand what they lost.
    pub fn note_degradation(&self, stage: &str, note: impl Into<String>) {
        self.recorder.incr("resilience.degradations");
        self.lock()
            .degradations
            .push(DegradationEvent { stage: stage.to_string(), note: note.into() });
    }

    /// Like [`note_degradation`](Self::note_degradation), but skipped if an
    /// identical event was already recorded — for per-item fallbacks that
    /// would otherwise flood the log.
    pub fn note_degradation_once(&self, stage: &str, note: &str) {
        let mut st = self.lock();
        if !st.degradations.iter().any(|d| d.stage == stage && d.note == note) {
            st.degradations
                .push(DegradationEvent { stage: stage.to_string(), note: note.to_string() });
            drop(st);
            self.recorder.incr("resilience.degradations");
        }
    }

    /// Faults injected at the typed-head level so far.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }

    /// All degradations recorded so far, in order.
    pub fn degradations(&self) -> Vec<DegradationEvent> {
        self.lock().degradations.clone()
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> ResilienceStats {
        self.lock().stats
    }

    /// A named crash injection point. Every call advances a counter; when
    /// the counter reaches `fault.crash_at` the process "crashes" by
    /// panicking with an [`InjectedCrash`] payload. Crash points are placed
    /// on the main thread only (stage boundaries and per-question seams),
    /// never inside par-mapped items, so the panic propagates out of
    /// `analyze`/`ask` like a real abort would.
    ///
    /// Deliberately *not* gated on `config.enabled`: crash tests want to
    /// kill a run whose fault plan is otherwise clean.
    pub fn crash_point(&self, name: &str) {
        let idx = {
            let mut st = self.lock();
            let idx = st.crash_points;
            st.crash_points += 1;
            idx
        };
        self.recorder.incr("resilience.crash_points");
        if self.config.fault.crash_at == Some(idx) {
            std::panic::panic_any(InjectedCrash { point: idx, name: name.to_string() });
        }
    }

    /// Crash points passed so far. A chaos harness runs once to count them,
    /// then re-runs with `crash_at` sweeping `0..count`.
    pub fn crash_points_passed(&self) -> u64 {
        self.lock().crash_points
    }

    /// A boxed callback that forwards to [`crash_point`](Self::crash_point),
    /// for components that participate in the seeded crash schedule without
    /// depending on this crate (the journal's checkpoint/compaction seams).
    pub fn crash_hook(self: &std::sync::Arc<Self>) -> Box<dyn Fn(&str) + Send + Sync> {
        let ctx = std::sync::Arc::clone(self);
        Box::new(move |name| ctx.crash_point(name))
    }

    /// Non-panicking poison probe for sequential loops: the payload string
    /// [`check_poison`](Self::check_poison) would panic with, if `text`
    /// contains the configured marker.
    pub fn poison_payload(&self, text: &str) -> Option<String> {
        let marker = self.config.poison_marker?;
        text.contains(marker)
            .then(|| format!("poison pill: document contains {marker:?}"))
    }

    /// Panic if `text` contains the configured poison marker. Stages call
    /// this at the top of per-document work inside the isolated parallel
    /// map; the resulting panic is caught there and the document is
    /// quarantined instead of poisoning the batch.
    pub fn check_poison(&self, text: &str) {
        if let Some(payload) = self.poison_payload(text) {
            std::panic::panic_any(payload);
        }
    }

    /// Record a quarantined document.
    pub fn record_quarantine(&self, stage: &str, doc_id: &str, payload: impl Into<String>) {
        self.recorder.incr("resilience.quarantined");
        self.recorder.incr(&format!("resilience.quarantined.{stage}"));
        self.lock().quarantine.push(QuarantineRecord {
            stage: stage.to_string(),
            doc_id: doc_id.to_string(),
            payload: payload.into(),
        });
    }

    /// All quarantined documents so far, in order.
    pub fn quarantined(&self) -> Vec<QuarantineRecord> {
        self.lock().quarantine.clone()
    }

    /// Whether the run degraded anywhere (fallbacks engaged or documents
    /// quarantined).
    pub fn degraded(&self) -> bool {
        let st = self.lock();
        !st.degradations.is_empty() || !st.quarantine.is_empty()
    }

    /// Export the complete mutable state for journaling.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        let st = self.lock();
        ResilienceSnapshot {
            fault_calls: st.fault_calls,
            injected: st.injected,
            crash_points: st.crash_points,
            stats: st.stats,
            breakers: st.breakers.iter().map(CircuitBreaker::snapshot).collect(),
            degradations: st.degradations.clone(),
            quarantine: st.quarantine.clone(),
        }
    }

    /// Restore state captured by [`snapshot`](Self::snapshot). A resumed
    /// run calls this after skipping a journaled stage so the shared fault
    /// schedule, breakers, and reports continue exactly where the crashed
    /// run left them.
    pub fn restore(&self, snap: &ResilienceSnapshot) {
        let mut st = self.lock();
        st.fault_calls = snap.fault_calls;
        st.injected = snap.injected;
        st.crash_points = snap.crash_points;
        st.stats = snap.stats;
        for (b, s) in st.breakers.iter_mut().zip(snap.breakers.iter()) {
            b.restore(s);
        }
        st.degradations = snap.degradations.clone();
        st.quarantine = snap.quarantine.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allhands_llm::{LlmError, LlmErrorKind};

    fn transient() -> AllHandsError {
        AllHandsError::Llm(LlmError::new(LlmErrorKind::Timeout, "injected"))
    }

    #[test]
    fn retries_then_succeeds() {
        let ctx = ResilienceCtx::new(ResilienceConfig::default());
        let out = ctx.call(Head::Classify, |attempt| {
            if attempt < 3 { Err(transient()) } else { Ok(attempt) }
        });
        assert_eq!(out.unwrap(), 3);
        let stats = ctx.stats();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.exhausted, 0);
        assert!(stats.total_backoff_ms > 0, "backoff must be recorded");
        assert_eq!(ctx.breaker_state(Head::Classify), BreakerState::Closed);
    }

    #[test]
    fn permanent_errors_abort_immediately() {
        let ctx = ResilienceCtx::new(ResilienceConfig::default());
        let out: Result<(), _> = ctx.call(Head::Codegen, |_| {
            Err(AllHandsError::Llm(LlmError::new(LlmErrorKind::ContextOverflow, "too big")))
        });
        assert!(matches!(out, Err(AllHandsError::Llm(_))));
        assert_eq!(ctx.stats().attempts, 1, "permanent errors must not be retried");
    }

    #[test]
    fn exhaustion_trips_breaker_and_denies() {
        let mut config = ResilienceConfig::default();
        config.breaker.failure_threshold = 2;
        config.breaker.cooldown_denials = 2;
        let ctx = ResilienceCtx::new(config);
        for _ in 0..2 {
            let out: Result<(), _> = ctx.call(Head::Summarize, |_| Err(transient()));
            assert!(matches!(out, Err(AllHandsError::RetriesExhausted { attempts: 3, .. })));
        }
        assert!(ctx.breaker_open(Head::Summarize));
        assert_eq!(ctx.breaker_trips(Head::Summarize), 1);
        // Denied without attempting.
        let before = ctx.stats().attempts;
        let out: Result<(), _> = ctx.call(Head::Summarize, |_| Ok(()));
        assert!(matches!(out, Err(AllHandsError::BreakerOpen { head: Head::Summarize })));
        assert_eq!(ctx.stats().attempts, before);
        assert_eq!(ctx.stats().breaker_denials, 1);
        // Other heads are unaffected.
        assert!(ctx.call(Head::Classify, |_| Ok(1)).is_ok());
        // After the cooldown, a half-open probe is admitted and can heal.
        let _: Result<(), _> = ctx.call(Head::Summarize, |_| Ok(()));
        assert!(ctx.call(Head::Summarize, |_| Ok(())).is_ok());
        assert_eq!(ctx.breaker_state(Head::Summarize), BreakerState::Closed);
    }

    #[test]
    fn enabled_ctx_injects_head_level_faults_deterministically() {
        let run = |seed: u64| {
            let ctx = ResilienceCtx::new(ResilienceConfig::chaos(seed, 0.4));
            let mut outcomes = Vec::new();
            for i in 0..100 {
                let r = ctx.call(Head::Classify, |_| Ok(i));
                outcomes.push(r.is_ok());
            }
            (outcomes, ctx.stats(), ctx.injected())
        };
        let (a, stats_a, injected_a) = run(11);
        let (b, _, _) = run(11);
        assert_eq!(a, b, "same seed must give identical outcome sequences");
        assert!(injected_a > 0, "0.4 fault rate must inject over 100 calls");
        assert!(stats_a.retries > 0, "injected transients must trigger retries");
        let (c, _, _) = run(12);
        assert_ne!(a, c, "different seeds should diverge");
        // Disabled ctx never injects.
        let ctx = ResilienceCtx::new(ResilienceConfig::default());
        for i in 0..50 {
            assert!(ctx.call(Head::Classify, |_| Ok(i)).is_ok());
        }
        assert_eq!(ctx.injected(), 0);
        assert_eq!(ctx.stats().attempts, 50, "disabled ctx is single-attempt");
    }

    #[test]
    fn note_once_dedupes() {
        let ctx = ResilienceCtx::new(ResilienceConfig::default());
        ctx.note_degradation_once("classification", "fallback engaged");
        ctx.note_degradation_once("classification", "fallback engaged");
        ctx.note_degradation_once("classification", "other note");
        assert_eq!(ctx.degradations().len(), 2);
    }

    /// Satellite: the open → half-open → closed transition, observed at the
    /// ctx level through `call` rather than on a bare breaker.
    #[test]
    fn ctx_half_open_probe_success_closes_breaker() {
        let mut config = ResilienceConfig::default();
        config.breaker.failure_threshold = 1;
        config.breaker.cooldown_denials = 2;
        let ctx = ResilienceCtx::new(config);
        // One exhausted operation opens the breaker.
        let out: Result<(), _> = ctx.call(Head::Classify, |_| Err(transient()));
        assert!(matches!(out, Err(AllHandsError::RetriesExhausted { .. })));
        assert_eq!(ctx.breaker_state(Head::Classify), BreakerState::Open);
        // Cooldown: exactly `cooldown_denials` calls are denied unattempted.
        for _ in 0..2 {
            let out: Result<(), _> = ctx.call(Head::Classify, |_| Ok(()));
            assert!(matches!(out, Err(AllHandsError::BreakerOpen { head: Head::Classify })));
        }
        assert_eq!(ctx.stats().breaker_denials, 2);
        assert_eq!(ctx.breaker_state(Head::Classify), BreakerState::HalfOpen);
        // The probe is admitted, runs the operation, and its success closes.
        let out = ctx.call(Head::Classify, Ok);
        assert_eq!(out.unwrap(), 1);
        assert_eq!(ctx.breaker_state(Head::Classify), BreakerState::Closed);
        assert_eq!(ctx.breaker_trips(Head::Classify), 1);
    }

    /// Satellite: the open → half-open → re-open transition when the probe
    /// itself fails, again through `call`.
    #[test]
    fn ctx_half_open_probe_failure_reopens_breaker() {
        let mut config = ResilienceConfig::default();
        config.breaker.failure_threshold = 1;
        config.breaker.cooldown_denials = 1;
        let ctx = ResilienceCtx::new(config);
        let _: Result<(), _> = ctx.call(Head::Codegen, |_| Err(transient()));
        assert_eq!(ctx.breaker_state(Head::Codegen), BreakerState::Open);
        let out: Result<(), _> = ctx.call(Head::Codegen, |_| Ok(()));
        assert!(matches!(out, Err(AllHandsError::BreakerOpen { .. })));
        assert_eq!(ctx.breaker_state(Head::Codegen), BreakerState::HalfOpen);
        // Probe fails → straight back to open, with a second trip recorded,
        // and the cooldown restarts from zero.
        let out: Result<(), _> = ctx.call(Head::Codegen, |_| Err(transient()));
        assert!(matches!(out, Err(AllHandsError::RetriesExhausted { .. })));
        assert_eq!(ctx.breaker_state(Head::Codegen), BreakerState::Open);
        assert_eq!(ctx.breaker_trips(Head::Codegen), 2);
        let out: Result<(), _> = ctx.call(Head::Codegen, |_| Ok(()));
        assert!(matches!(out, Err(AllHandsError::BreakerOpen { .. })));
        assert_eq!(ctx.breaker_state(Head::Codegen), BreakerState::HalfOpen);
    }

    #[test]
    fn crash_point_panics_at_scheduled_index_only() {
        let mut config = ResilienceConfig::default();
        config.fault = config.fault.with_crash_at(2);
        let ctx = ResilienceCtx::new(config);
        ctx.crash_point("a");
        ctx.crash_point("b");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.crash_point("c");
        }))
        .expect_err("crash point 2 must panic");
        let crash = err.downcast_ref::<InjectedCrash>().expect("InjectedCrash payload");
        assert_eq!(crash.point, 2);
        assert_eq!(crash.name, "c");
        assert_eq!(ctx.crash_points_passed(), 3);
        // Without a schedule, points are free.
        let ctx = ResilienceCtx::new(ResilienceConfig::default());
        for _ in 0..10 {
            ctx.crash_point("x");
        }
        assert_eq!(ctx.crash_points_passed(), 10);
    }

    #[test]
    fn check_poison_panics_only_on_marker() {
        let config =
            ResilienceConfig { poison_marker: Some("__POISON__"), ..Default::default() };
        let ctx = ResilienceCtx::new(config);
        ctx.check_poison("a perfectly fine review");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.check_poison("bad __POISON__ doc");
        }))
        .expect_err("marker must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("poison pill"), "got: {msg}");
    }

    #[test]
    fn snapshot_restore_resumes_fault_schedule_exactly() {
        let config = ResilienceConfig::chaos(11, 0.4);
        // Uninterrupted reference: 60 calls.
        let reference = {
            let ctx = ResilienceCtx::new(config);
            (0..60).map(|i| ctx.call(Head::Classify, |_| Ok(i)).is_ok()).collect::<Vec<_>>()
        };
        // Run 30 calls, snapshot, restore into a *fresh* ctx, run the rest.
        let ctx = ResilienceCtx::new(config);
        let mut outcomes: Vec<bool> =
            (0..30).map(|i| ctx.call(Head::Classify, |_| Ok(i)).is_ok()).collect();
        ctx.note_degradation("classification", "fallback engaged");
        ctx.record_quarantine("classification", "doc-7", "poison pill");
        let snap = ctx.snapshot();
        let resumed = ResilienceCtx::new(config);
        resumed.restore(&snap);
        outcomes.extend((30..60).map(|i| resumed.call(Head::Classify, |_| Ok(i)).is_ok()));
        assert_eq!(outcomes, reference, "restored ctx must stay on the fault schedule");
        assert!(resumed.stats().attempts >= 60, "snapshot stats must carry forward");
        assert_eq!(resumed.degradations().len(), 1);
        assert_eq!(resumed.quarantined().len(), 1);
        assert!(resumed.degraded());
    }

    #[test]
    fn degradations_are_recorded_in_order() {
        let ctx = ResilienceCtx::new(ResilienceConfig::chaos(7, 0.3));
        assert!(ctx.config().enabled);
        ctx.note_degradation("classification", "fell back to lexical prior");
        ctx.note_degradation("qa-agent", "partial answer");
        let notes = ctx.degradations();
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].stage, "classification");
        assert!(notes[1].note.contains("partial"));
    }
}
