//! The unified error taxonomy for the pipeline.
//!
//! Every stage-level failure converges on [`AllHandsError`] so the retry
//! and degradation machinery can make one decision — is this transient or
//! permanent? — regardless of which subsystem produced it.

use crate::breaker::Head;
use allhands_llm::LlmError;

/// A pipeline-level error from any stage or substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum AllHandsError {
    /// LLM invocation failure (carries its own transient/permanent kind).
    Llm(LlmError),
    /// AQL lex/parse/runtime failure.
    Query(allhands_query::QueryError),
    /// Dataframe engine failure.
    Frame(allhands_dataframe::FrameError),
    /// A resource budget (steps, rows, wall clock) was exhausted.
    Budget(String),
    /// The circuit breaker for a head is open; the call was not attempted.
    BreakerOpen { head: Head },
    /// A retryable operation kept failing until its retry budget ran out.
    RetriesExhausted { head: Head, attempts: u32, last: Box<AllHandsError> },
    /// The session's durability layer tripped into read-only degraded
    /// mode (repeated storage failures): queries keep serving, but
    /// state-changing operations are refused until the session is
    /// reopened on healthy storage.
    ReadOnly(String),
    /// Anything else stage-level (invariant violations, wiring errors).
    Pipeline(String),
}

impl AllHandsError {
    /// Whether retrying the identical operation can plausibly succeed.
    /// Budget exhaustion, open breakers, and spent retry budgets are final;
    /// query/frame errors describe a wrong program, not a flaky call.
    pub fn retryable(&self) -> bool {
        match self {
            AllHandsError::Llm(e) => e.retryable(),
            AllHandsError::Query(_)
            | AllHandsError::Frame(_)
            | AllHandsError::Budget(_)
            | AllHandsError::BreakerOpen { .. }
            | AllHandsError::RetriesExhausted { .. }
            | AllHandsError::ReadOnly(_)
            | AllHandsError::Pipeline(_) => false,
        }
    }

    /// Short stable label for degradation notes and logs.
    pub fn label(&self) -> &'static str {
        match self {
            AllHandsError::Llm(e) => e.kind.label(),
            AllHandsError::Query(_) => "query",
            AllHandsError::Frame(_) => "frame",
            AllHandsError::Budget(_) => "budget",
            AllHandsError::BreakerOpen { .. } => "breaker-open",
            AllHandsError::RetriesExhausted { .. } => "retries-exhausted",
            AllHandsError::ReadOnly(_) => "read-only",
            AllHandsError::Pipeline(_) => "pipeline",
        }
    }
}

impl std::fmt::Display for AllHandsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllHandsError::Llm(e) => write!(f, "llm error: {e}"),
            AllHandsError::Query(e) => write!(f, "query error: {e}"),
            AllHandsError::Frame(e) => write!(f, "dataframe error: {e}"),
            AllHandsError::Budget(msg) => write!(f, "budget exhausted: {msg}"),
            AllHandsError::BreakerOpen { head } => {
                write!(f, "circuit breaker open for {} head", head.label())
            }
            AllHandsError::RetriesExhausted { head, attempts, last } => write!(
                f,
                "{} head failed after {attempts} attempts; last error: {last}",
                head.label()
            ),
            AllHandsError::ReadOnly(msg) => {
                write!(f, "session is read-only (degraded): {msg}")
            }
            AllHandsError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for AllHandsError {}

impl From<LlmError> for AllHandsError {
    fn from(e: LlmError) -> Self {
        AllHandsError::Llm(e)
    }
}

impl From<allhands_query::QueryError> for AllHandsError {
    fn from(e: allhands_query::QueryError) -> Self {
        // Budget exhaustion surfaces inside the interpreter as a QueryError;
        // reclassify it here so every caller sees one budget category.
        if e.message.contains("budget exhausted") || e.message.contains("cell wall-clock") {
            AllHandsError::Budget(e.message)
        } else {
            AllHandsError::Query(e)
        }
    }
}

impl From<allhands_dataframe::FrameError> for AllHandsError {
    fn from(e: allhands_dataframe::FrameError) -> Self {
        AllHandsError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allhands_llm::LlmErrorKind;

    #[test]
    fn retryability_follows_taxonomy() {
        let transient = AllHandsError::Llm(LlmError::new(LlmErrorKind::Timeout, "t"));
        assert!(transient.retryable());
        let permanent = AllHandsError::Llm(LlmError::new(LlmErrorKind::ContextOverflow, "o"));
        assert!(!permanent.retryable());
        assert!(!AllHandsError::Budget("steps".into()).retryable());
        assert!(!AllHandsError::BreakerOpen { head: Head::Classify }.retryable());
        assert!(!AllHandsError::Query(allhands_query::QueryError::runtime("bad")).retryable());
    }

    #[test]
    fn budget_query_errors_are_reclassified() {
        let e = allhands_query::QueryError::runtime(
            "step budget exhausted (50000000 steps): program too expensive",
        );
        assert!(matches!(AllHandsError::from(e), AllHandsError::Budget(_)));
        let e = allhands_query::QueryError::runtime("unknown column");
        assert!(matches!(AllHandsError::from(e), AllHandsError::Query(_)));
    }
}
