//! Seeded fault injection.
//!
//! Faults are decided the same way the simulated LLM decides label slips:
//! by hashing (seed, namespace, call index) — see `ModelSpec::slips`. No
//! mutable RNG state is consumed, so whether call #17 on the classify head
//! times out is a pure function of the plan's seed, regardless of what any
//! other component did in between. Seed ⇒ bit-exact fault sequences.

use crate::breaker::Head;
use allhands_embed::{hash64, mix64};
use allhands_llm::{ChatOptions, LanguageModel, LlmError, LlmErrorKind, ModelTier, Prompt, PromptTask};

/// The fault kinds the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The request never returns; surfaces as [`LlmErrorKind::Timeout`].
    Timeout,
    /// Provider-side throttling; surfaces as [`LlmErrorKind::RateLimited`].
    RateLimit,
    /// Completion cut off mid-output.
    Truncated,
    /// Completion garbled into something no parser accepts.
    Malformed,
    /// Completion came back empty.
    Empty,
    /// Process death at a pipeline crash point. Unlike the transient kinds
    /// this never surfaces as an error value: the run *aborts* (an
    /// [`InjectedCrash`] panic unwinds out of the pipeline), and the
    /// crash-chaos suite proves the journal makes the abort recoverable.
    /// Scheduled by [`FaultPlan::crash_at`], not by the probabilistic rates.
    Crash,
}

impl FaultKind {
    /// The transient kinds, i.e. everything the probabilistic schedule can
    /// fire on an LLM call. [`FaultKind::Crash`] is deliberately excluded:
    /// crashes kill the process at seeded crash points instead of failing a
    /// single call.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Timeout,
        FaultKind::RateLimit,
        FaultKind::Truncated,
        FaultKind::Malformed,
        FaultKind::Empty,
    ];

    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Timeout => "timeout",
            FaultKind::RateLimit => "rate-limit",
            FaultKind::Truncated => "truncated",
            FaultKind::Malformed => "malformed",
            FaultKind::Empty => "empty",
            FaultKind::Crash => "crash",
        }
    }

    /// The error kind a fault surfaces as when it cannot corrupt a payload
    /// (typed-head calls) or when it is a pure request failure.
    pub fn error_kind(self) -> LlmErrorKind {
        match self {
            FaultKind::Timeout => LlmErrorKind::Timeout,
            FaultKind::RateLimit => LlmErrorKind::RateLimited,
            FaultKind::Truncated => LlmErrorKind::Truncated,
            FaultKind::Malformed => LlmErrorKind::Malformed,
            FaultKind::Empty => LlmErrorKind::Empty,
            // Crash faults abort the run via panic at a crash point; the
            // schedule never routes them through an LLM-call error.
            FaultKind::Crash => unreachable!("crash faults never surface as call errors"),
        }
    }
}

/// The panic payload thrown at a seeded crash point — the simulated
/// process death ([`FaultKind::Crash`]). The crash-chaos suite catches it
/// with `catch_unwind` (standing in for a real kill) and then resumes the
/// run from its journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedCrash {
    /// Which crash point fired (0-based, in pass order).
    pub point: u64,
    /// The crash point's name, e.g. `"stage1:committed"`.
    pub name: String,
}

impl std::fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected crash at point #{} ({})", self.point, self.name)
    }
}

/// A deterministic fault schedule: per-kind rates plus the seed that decides
/// which call indices each kind fires on.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    pub seed: u64,
    /// Per-kind fault probabilities, indexed by `FaultKind::ALL` order.
    pub rates: [f64; 5],
    /// Crash schedule: abort the run (an [`InjectedCrash`] panic) when the
    /// pipeline passes crash point number `crash_at`. `None` disables crash
    /// injection. Deliberately exhaustive rather than probabilistic: the
    /// crash-chaos suite enumerates every point.
    pub crash_at: Option<u64>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan { seed: 0, rates: [0.0; 5], crash_at: None }
    }

    /// A plan firing all five transient kinds with equal shares of
    /// `total_rate` (e.g. `uniform(7, 0.30)` ⇒ each call faults with
    /// probability 0.30, split evenly across the five kinds).
    pub fn uniform(seed: u64, total_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&total_rate), "fault rate out of range");
        FaultPlan { seed, rates: [total_rate / 5.0; 5], crash_at: None }
    }

    /// This plan, additionally aborting the run at crash point `point`.
    pub fn with_crash_at(mut self, point: u64) -> Self {
        self.crash_at = Some(point);
        self
    }

    /// Total probability that any fault fires on a given call.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Decide whether (and which) fault fires for call `call_index` on
    /// `head`. One uniform draw per call, partitioned by cumulative rates,
    /// so kinds are mutually exclusive per call.
    pub fn decide(&self, head: Head, call_index: u64) -> Option<FaultKind> {
        if self.total_rate() <= 0.0 {
            return None;
        }
        let ns = hash64("fault-plan") ^ hash64(head.label());
        let h = mix64(ns ^ call_index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.seed.wrapping_mul(0x9E37_79B9));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let mut cumulative = 0.0;
        for (kind, rate) in FaultKind::ALL.iter().zip(self.rates) {
            cumulative += rate;
            if u < cumulative {
                return Some(*kind);
            }
        }
        None
    }
}

/// How a fault manifested at the injection site.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionEvent {
    pub call_index: u64,
    pub head: Head,
    pub kind: FaultKind,
}

/// A [`LanguageModel`] wrapper that injects faults per a [`FaultPlan`].
///
/// Request-level faults (timeout, rate limit) return errors without touching
/// the inner model; payload faults (truncated, malformed, empty) run the
/// inner model and corrupt its completion, exercising downstream output
/// validation.
pub struct FaultInjector<M> {
    inner: M,
    plan: FaultPlan,
    calls: std::sync::atomic::AtomicU64,
    log: std::sync::Mutex<Vec<InjectionEvent>>,
}

impl<M: LanguageModel> FaultInjector<M> {
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        FaultInjector {
            inner,
            plan,
            calls: std::sync::atomic::AtomicU64::new(0),
            log: std::sync::Mutex::new(Vec::new()),
        }
    }

    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Number of completions attempted through this wrapper.
    pub fn calls(&self) -> u64 {
        self.calls.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Every fault injected so far, in call order.
    pub fn injections(&self) -> Vec<InjectionEvent> {
        self.log.lock().expect("injection log lock").clone()
    }

    fn head_for(task: PromptTask) -> Head {
        match task {
            PromptTask::Classify => Head::Classify,
            PromptTask::TopicModel | PromptTask::Summarize => Head::Summarize,
            PromptTask::GenerateCode => Head::Codegen,
        }
    }
}

impl<M: LanguageModel> LanguageModel for FaultInjector<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tier(&self) -> ModelTier {
        self.inner.tier()
    }

    fn complete(&self, prompt: &Prompt, opts: &ChatOptions) -> Result<String, LlmError> {
        let call_index = self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let head = Self::head_for(prompt.task);
        let Some(kind) = self.plan.decide(head, call_index) else {
            return self.inner.complete(prompt, opts);
        };
        self.log
            .lock()
            .expect("injection log lock")
            .push(InjectionEvent { call_index, head, kind });
        match kind {
            FaultKind::Timeout => Err(LlmError::new(
                LlmErrorKind::Timeout,
                format!("injected timeout on call #{call_index} ({} head)", head.label()),
            )),
            FaultKind::RateLimit => Err(LlmError::new(
                LlmErrorKind::RateLimited,
                format!("injected rate limit on call #{call_index} ({} head)", head.label()),
            )),
            FaultKind::Truncated => {
                let full = self.inner.complete(prompt, opts)?;
                let mut cut = full.len() / 2;
                while cut > 0 && !full.is_char_boundary(cut) {
                    cut -= 1;
                }
                Ok(full[..cut].to_string())
            }
            FaultKind::Malformed => {
                let full = self.inner.complete(prompt, opts)?;
                Ok(format!("�{}", full.replace(' ', "\u{1}")))
            }
            FaultKind::Empty => {
                // Still consult the inner model so permanent errors (e.g.
                // context overflow) are not masked by the fault.
                self.inner.complete(prompt, opts)?;
                Ok(String::new())
            }
            FaultKind::Crash => {
                unreachable!("crash faults are scheduled via crash_at, not the probabilistic plan")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allhands_llm::SimLlm;

    #[test]
    fn plan_is_deterministic_and_rate_accurate() {
        let plan = FaultPlan::uniform(42, 0.3);
        let a: Vec<_> = (0..200).map(|i| plan.decide(Head::Classify, i)).collect();
        let b: Vec<_> = (0..200).map(|i| plan.decide(Head::Classify, i)).collect();
        assert_eq!(a, b, "same seed must give identical fault sequences");
        let fired = (0..20_000).filter(|&i| plan.decide(Head::Codegen, i).is_some()).count();
        let rate = fired as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "empirical fault rate {rate}");
        assert!(FaultPlan::none().decide(Head::Classify, 7).is_none());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::uniform(1, 0.3);
        let b = FaultPlan::uniform(2, 0.3);
        let seq_a: Vec<_> = (0..300).map(|i| a.decide(Head::Summarize, i)).collect();
        let seq_b: Vec<_> = (0..300).map(|i| b.decide(Head::Summarize, i)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn all_kinds_eventually_fire() {
        let plan = FaultPlan::uniform(9, 0.5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2_000 {
            if let Some(k) = plan.decide(Head::Classify, i) {
                seen.insert(k);
            }
        }
        assert_eq!(seen.len(), FaultKind::ALL.len(), "kinds seen: {seen:?}");
    }

    #[test]
    fn injector_wraps_complete() {
        use allhands_llm::PromptTask;
        let llm = FaultInjector::new(SimLlm::gpt4(), FaultPlan::uniform(3, 0.6));
        let prompt = Prompt::new(PromptTask::Summarize, "Summarize.", "short document text");
        let mut errors = 0;
        let mut corrupted = 0;
        for _ in 0..60 {
            match llm.complete(&prompt, &ChatOptions::default()) {
                Err(e) => {
                    assert!(e.retryable(), "injected faults must be transient: {e}");
                    errors += 1;
                }
                Ok(s) if s.is_empty() || s.contains('\u{1}') || s.contains('�') => corrupted += 1,
                Ok(_) => {}
            }
        }
        assert!(errors > 0, "no request-level faults in 60 calls at 60% rate");
        assert!(corrupted > 0, "no payload faults in 60 calls at 60% rate");
        assert_eq!(llm.calls(), 60);
        // Truncated faults look like clean-but-short output, so the log can
        // exceed the visibly-corrupted count.
        assert!(llm.injections().len() >= errors + corrupted);
        // Clean wrapper passes everything through.
        let clean = FaultInjector::new(SimLlm::gpt4(), FaultPlan::none());
        assert!(clean.complete(&prompt, &ChatOptions::default()).is_ok());
        assert!(clean.injections().is_empty());
    }
}
