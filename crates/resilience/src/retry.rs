//! Retry with exponential backoff and deterministic jitter.
//!
//! Backoff delays are *virtual*: they are computed and recorded but never
//! slept, because the substrate is a simulation — what matters for the
//! paper-style experiments is that the schedule is reproducible and
//! inspectable, not that wall clock actually elapses. Jitter comes from
//! hashing (seed, head, attempt), the same scheme the fault planner uses,
//! so two runs with the same seed produce identical backoff traces.

use crate::breaker::Head;
use allhands_embed::{hash64, mix64};

/// Retry tuning for one head.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay, in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Cap on any single backoff delay.
    pub max_delay_ms: u64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a deterministic
    /// factor drawn from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter hash (shared with the fault plan in chaos runs).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_delay_ms: 100, max_delay_ms: 2000, jitter: 0.25, seed: 0 }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn no_retries() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The virtual backoff delay before retry attempt `attempt` (the first
    /// retry is attempt 2). Exponential in the attempt number, capped at
    /// `max_delay_ms`, scaled by deterministic jitter.
    pub fn backoff_ms(&self, head: Head, attempt: u32) -> u64 {
        debug_assert!(attempt >= 2, "attempt 1 is the initial try, not a retry");
        let exp = attempt.saturating_sub(2).min(20);
        let raw = self.base_delay_ms.saturating_mul(1u64 << exp).min(self.max_delay_ms);
        if self.jitter <= 0.0 {
            return raw;
        }
        let ns = hash64("retry-jitter") ^ hash64(head.label());
        let h = mix64(
            ns ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.seed.wrapping_mul(0x9E37_79B9),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // in [0, 1)
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * u;
        ((raw as f64) * factor).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        assert_eq!(p.backoff_ms(Head::Classify, 2), 100);
        assert_eq!(p.backoff_ms(Head::Classify, 3), 200);
        assert_eq!(p.backoff_ms(Head::Classify, 4), 400);
        assert_eq!(p.backoff_ms(Head::Classify, 8), 2000, "capped at max_delay_ms");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy { seed: 42, ..RetryPolicy::default() };
        for attempt in 2..8 {
            let a = p.backoff_ms(Head::Codegen, attempt);
            let b = p.backoff_ms(Head::Codegen, attempt);
            assert_eq!(a, b, "same (seed, head, attempt) must give the same delay");
            let raw = p.base_delay_ms * (1u64 << (attempt - 2)).min(p.max_delay_ms / p.base_delay_ms);
            let raw = raw.min(p.max_delay_ms) as f64;
            assert!((a as f64) >= raw * 0.74 && (a as f64) <= raw * 1.26, "delay {a} outside jitter band of {raw}");
        }
        let other = RetryPolicy { seed: 43, ..RetryPolicy::default() };
        let same: Vec<u64> = (2..10).map(|n| p.backoff_ms(Head::Summarize, n)).collect();
        let diff: Vec<u64> = (2..10).map(|n| other.backoff_ms(Head::Summarize, n)).collect();
        assert_ne!(same, diff, "different seeds should jitter differently");
    }
}
