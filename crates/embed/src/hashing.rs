//! Deterministic 64-bit hashing primitives (FNV-1a + splitmix64 mixing).
//!
//! `std`'s default hasher is randomized per process, which would break the
//! reproducibility guarantees of the embedder; these are stable across runs
//! and platforms.

/// FNV-1a hash of a string.
#[inline]
pub fn hash64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 finalizer — a fast, high-quality 64-bit mixer used to derive
/// pseudo-random streams from a hash seed.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_values() {
        // Pin exact values so accidental algorithm changes are caught.
        assert_eq!(hash64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash64("a"), hash64("a"));
        assert_ne!(hash64("a"), hash64("b"));
    }

    #[test]
    fn mix_changes_bits() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert_ne!(a, 1);
        // Avalanche sanity: flipping one input bit flips many output bits.
        let diff = (mix64(0x1234) ^ mix64(0x1235)).count_ones();
        assert!(diff > 16, "poor avalanche: {diff} bits");
    }
}
