//! Deterministic sentence-embedding substrate for AllHands.
//!
//! Stands in for the sentence-transformer the paper uses for demonstration
//! retrieval, topic clustering, and coherence scoring. The embedder maps a
//! sentence to a dense unit vector by pooling deterministic pseudo-random
//! token directions (random indexing) weighted by smooth inverse frequency
//! (SIF, Arora et al. 2017), optionally augmented with word bigrams and
//! character n-grams for typo and cross-lingual robustness.
//!
//! Properties the rest of the workspace relies on:
//! - **Deterministic**: same text, same config → bit-identical vector.
//! - **Similarity-preserving**: texts sharing (sub)tokens land close in
//!   cosine space; paraphrases of the same complaint cluster together.
//! - **Tiered**: [`EmbedderConfig`] controls dimensionality and feature
//!   richness, which is how the simulated GPT-4 sees a better space than
//!   the simulated GPT-3.5.
//!
//! # Example
//!
//! ```
//! use allhands_embed::{SentenceEmbedder, EmbedderConfig};
//!
//! let embedder = SentenceEmbedder::new(EmbedderConfig::default());
//! let a = embedder.embed("the app crashes on startup");
//! let b = embedder.embed("app crashing at launch");
//! let c = embedder.embed("please add a dark mode theme");
//! assert!(a.cosine(&b) > a.cosine(&c));
//! ```

pub mod hashing;
pub mod vector;

pub use hashing::{hash64, mix64};
pub use vector::{dot_slices, norm_slice, sq_dist_slices, Embedding};

use allhands_obs::Recorder;
use allhands_text::{char_ngrams, detect_language, light_preprocess, Language};
use std::collections::HashMap;

/// Configuration for [`SentenceEmbedder`].
#[derive(Debug, Clone)]
pub struct EmbedderConfig {
    /// Output dimensionality.
    pub dims: usize,
    /// Include adjacent-word bigram features.
    pub use_bigrams: bool,
    /// Include character n-gram features of this size (0 disables). Gives
    /// typo robustness and cross-lingual subword overlap.
    pub char_ngram: usize,
    /// Weight of character-n-gram features relative to word features.
    pub char_weight: f32,
    /// SIF smoothing constant `a` in `a / (a + p(w))`.
    pub sif_a: f32,
    /// Seed namespace: embedders with different seeds produce unrelated
    /// spaces (used to decorrelate model tiers).
    pub seed: u64,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        EmbedderConfig {
            dims: 256,
            use_bigrams: true,
            char_ngram: 3,
            char_weight: 0.3,
            sif_a: 1e-3,
            seed: 0x5EED_A114_A4D5,
        }
    }
}

impl EmbedderConfig {
    /// A compact, word-only configuration (the "small model" tier).
    pub fn small() -> Self {
        EmbedderConfig { dims: 128, use_bigrams: false, char_ngram: 0, ..Self::default() }
    }

    /// A rich configuration (the "large model" tier).
    pub fn large() -> Self {
        EmbedderConfig { dims: 512, char_ngram: 3, ..Self::default() }
    }
}

/// Deterministic sentence embedder. See crate docs.
#[derive(Debug, Clone)]
pub struct SentenceEmbedder {
    config: EmbedderConfig,
    /// Corpus unigram frequencies for SIF weighting (token → probability);
    /// empty until [`SentenceEmbedder::fit`] is called, in which case all
    /// tokens get uniform weight.
    unigram: HashMap<String, f64>,
    /// Observability sink (disabled by default). Embed computes are counted
    /// as **volatile** metrics: cache layers above ([`EmbedMemo`], the gloss
    /// cache) race on misses, so the raw compute count is thread-dependent.
    rec: Recorder,
}

impl SentenceEmbedder {
    /// Create an embedder with the given configuration (unfitted: uniform
    /// token weights until [`fit`](Self::fit) is called).
    pub fn new(config: EmbedderConfig) -> Self {
        assert!(config.dims > 0, "embedding dims must be positive");
        SentenceEmbedder { config, unigram: HashMap::new(), rec: Recorder::disabled() }
    }

    /// Route embed metrics into `rec` (see the `rec` field for why they are
    /// volatile).
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// The recorder metrics flow into (possibly disabled).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// The configured output dimensionality.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// The configuration this embedder was built with.
    pub fn config(&self) -> &EmbedderConfig {
        &self.config
    }

    /// Estimate corpus unigram probabilities for SIF weighting. Calling
    /// `fit` sharpens the space (frequent filler words get down-weighted)
    /// but is optional.
    pub fn fit<S: AsRef<str>>(&mut self, corpus: &[S]) {
        let mut counts: HashMap<String, u64> = HashMap::new();
        let mut total = 0u64;
        for doc in corpus {
            for tok in light_preprocess(doc.as_ref()) {
                *counts.entry(tok).or_insert(0) += 1;
                total += 1;
            }
        }
        if total == 0 {
            return;
        }
        self.unigram = counts
            .into_iter()
            .map(|(t, c)| (t, c as f64 / total as f64))
            .collect();
    }

    /// SIF weight for a token: `a / (a + p(w))`, 1.0 when unfitted.
    fn sif_weight(&self, token: &str) -> f32 {
        match self.unigram.get(token) {
            Some(&p) => {
                let a = self.config.sif_a as f64;
                (a / (a + p)) as f32
            }
            None => 1.0,
        }
    }

    /// Add a feature's pseudo-random direction into `acc` with `weight`.
    fn add_feature(&self, acc: &mut [f32], feature: &str, weight: f32) {
        if weight == 0.0 {
            return;
        }
        let base = hash64(feature) ^ self.config.seed;
        // Generate `dims` pseudo-random values in [-1, 1] from a splitmix
        // chain; two values per 64-bit output.
        let mut state = base;
        let mut i = 0;
        while i < acc.len() {
            state = mix64(state);
            let lo = (state & 0xFFFF_FFFF) as u32;
            let hi = (state >> 32) as u32;
            acc[i] += weight * to_unit(lo);
            if i + 1 < acc.len() {
                acc[i + 1] += weight * to_unit(hi);
            }
            i += 2;
        }
    }

    /// Embed a sentence into a unit vector. Empty/degenerate input yields
    /// the zero vector (cosine with anything = 0).
    pub fn embed(&self, text: &str) -> Embedding {
        self.rec.vincr("embed.computes");
        let tokens = light_preprocess(text);
        let mut acc = vec![0.0f32; self.config.dims];
        if tokens.is_empty() {
            return Embedding::new(acc);
        }
        for tok in &tokens {
            let w = self.sif_weight(tok);
            self.add_feature(&mut acc, tok, w);
            if self.config.char_ngram > 0 && !tok.starts_with('<') {
                let grams = char_ngrams(tok, self.config.char_ngram);
                let gw = w * self.config.char_weight / grams.len().max(1) as f32;
                for g in &grams {
                    self.add_feature(&mut acc, g, gw);
                }
            }
        }
        if self.config.use_bigrams {
            for pair in tokens.windows(2) {
                let bigram = format!("{}+{}", pair[0], pair[1]);
                self.add_feature(&mut acc, &bigram, 0.5);
            }
        }
        let inv = 1.0 / tokens.len() as f32;
        for v in &mut acc {
            *v *= inv;
        }
        let mut e = Embedding::new(acc);
        e.normalize();
        e
    }

    /// Embed a batch of texts.
    pub fn embed_batch<S: AsRef<str>>(&self, texts: &[S]) -> Vec<Embedding> {
        texts.iter().map(|t| self.embed(t.as_ref())).collect()
    }
}

/// Map a u32 to [-1, 1).
fn to_unit(x: u32) -> f32 {
    (x as f32 / u32::MAX as f32) * 2.0 - 1.0
}

/// A memoizing view over a [`SentenceEmbedder`]: identical input text is
/// embedded once and served from a cache thereafter.
///
/// The embedder is pure (same text → bit-identical vector), so memoization
/// is observationally invisible — outputs cannot change, only redundant
/// work disappears. Hot loops that repeatedly embed the same strings (label
/// glosses per classification call, the topic list per document in
/// progressive topic modeling) hold one `EmbedMemo` for the loop's
/// lifetime. Thread-safe: the cache is split into [`MEMO_SHARDS`]
/// independently-locked shards keyed by the text's hash, so a memo shared
/// by a parallel scoring loop serves hits from different shards without
/// contending on one global mutex (the single-mutex version was a measured
/// scaling bottleneck for batch classification); concurrent misses on the
/// same key simply compute the same bits twice and agree.
#[derive(Debug)]
pub struct EmbedMemo<'a> {
    embedder: &'a SentenceEmbedder,
    shards: [std::sync::Mutex<HashMap<String, Embedding>>; MEMO_SHARDS],
}

/// Lock shards in the memo cache. Power of two so the shard pick is a mask.
const MEMO_SHARDS: usize = 8;

impl<'a> EmbedMemo<'a> {
    /// Wrap an embedder with an empty cache.
    pub fn new(embedder: &'a SentenceEmbedder) -> Self {
        EmbedMemo { embedder, shards: std::array::from_fn(|_| std::sync::Mutex::new(HashMap::new())) }
    }

    /// The underlying embedder.
    pub fn embedder(&self) -> &'a SentenceEmbedder {
        self.embedder
    }

    fn shard(&self, key: &str) -> std::sync::MutexGuard<'_, HashMap<String, Embedding>> {
        let idx = (hash64(key) as usize) & (MEMO_SHARDS - 1);
        match self.shards[idx].lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Embed `text`, reusing the cached vector when available.
    pub fn embed(&self, text: &str) -> Embedding {
        if let Some(hit) = self.shard(text).get(text) {
            // Hit/miss splits are volatile: two threads can race the same
            // key and both miss, so the split depends on the interleaving.
            self.embedder.rec.vincr("embed.memo.hits");
            return hit.clone();
        }
        self.embedder.rec.vincr("embed.memo.misses");
        // Compute outside the lock: long embeds must not serialize other
        // threads' cache hits. A racing miss computes identical bits.
        let fresh = self.embedder.embed(text);
        self.shard(text).entry(text.to_string()).or_insert(fresh).clone()
    }

    /// Cache an embedding under an arbitrary `key`, computing it with
    /// `build` on the first miss. For callers that embed a *derived* form
    /// of the key (e.g. a stemmed phrase) and want to skip recomputing the
    /// derivation as well. `build` must be deterministic in `key`.
    pub fn embed_keyed(&self, key: &str, build: impl FnOnce(&SentenceEmbedder) -> Embedding) -> Embedding {
        if let Some(hit) = self.shard(key).get(key) {
            self.embedder.rec.vincr("embed.memo.hits");
            return hit.clone();
        }
        self.embedder.rec.vincr("embed.memo.misses");
        let fresh = build(self.embedder);
        self.shard(key).entry(key.to_string()).or_insert(fresh).clone()
    }

    /// Number of distinct texts cached so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| match s.lock() {
            Ok(g) => g.len(),
            Err(p) => p.into_inner().len(),
        }).sum()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A multilingual embedder: routes text through diacritic folding and adds a
/// language tag feature, so that translations of the same complaint overlap
/// via shared char-n-grams and cognates while languages remain separable.
///
/// Stands in for XLM-R-style multilingual encoders.
#[derive(Debug, Clone)]
pub struct MultilingualEmbedder {
    inner: SentenceEmbedder,
    /// How strongly the detected-language feature pulls same-language texts
    /// together (0 disables).
    pub lang_weight: f32,
}

impl MultilingualEmbedder {
    /// Create a multilingual embedder; `config.char_ngram` should be ≥ 3
    /// for useful cross-lingual overlap.
    pub fn new(mut config: EmbedderConfig) -> Self {
        if config.char_ngram == 0 {
            config.char_ngram = 3;
        }
        MultilingualEmbedder { inner: SentenceEmbedder::new(config), lang_weight: 0.2 }
    }

    /// Output dimensionality.
    pub fn dims(&self) -> usize {
        self.inner.dims()
    }

    /// Fit SIF weights on a corpus (diacritics folded).
    pub fn fit<S: AsRef<str>>(&mut self, corpus: &[S]) {
        let folded: Vec<String> = corpus
            .iter()
            .map(|s| allhands_text::fold_diacritics(s.as_ref()))
            .collect();
        self.inner.fit(&folded);
    }

    /// Embed with diacritic folding and a language feature.
    pub fn embed(&self, text: &str) -> Embedding {
        let folded = allhands_text::fold_diacritics(text);
        let mut e = self.inner.embed(&folded);
        let lang = detect_language(text);
        if self.lang_weight > 0.0 && lang != Language::Other {
            let mut lang_dir = vec![0.0f32; self.inner.dims()];
            self.inner
                .add_feature(&mut lang_dir, &format!("<lang:{lang}>"), self.lang_weight);
            e.add_scaled(&Embedding::new(lang_dir), 1.0);
            e.normalize();
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let e = SentenceEmbedder::new(EmbedderConfig::default());
        assert_eq!(e.embed("hello world").as_slice(), e.embed("hello world").as_slice());
    }

    #[test]
    fn unit_norm() {
        let e = SentenceEmbedder::new(EmbedderConfig::default());
        let v = e.embed("some text here");
        assert!((v.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_is_zero() {
        let e = SentenceEmbedder::new(EmbedderConfig::default());
        assert_eq!(e.embed("").norm(), 0.0);
        assert_eq!(e.embed("!!!").norm(), 0.0);
    }

    #[test]
    fn similar_texts_closer() {
        let e = SentenceEmbedder::new(EmbedderConfig::default());
        let a = e.embed("the app crashes when I open it");
        let b = e.embed("app crashed after opening");
        let c = e.embed("beautiful sunset photography filter");
        assert!(a.cosine(&b) > a.cosine(&c) + 0.1);
    }

    #[test]
    fn typo_robustness_via_char_ngrams() {
        let with = SentenceEmbedder::new(EmbedderConfig { char_ngram: 3, ..Default::default() });
        let without = SentenceEmbedder::new(EmbedderConfig { char_ngram: 0, ..Default::default() });
        let sim_with = with.embed("crashing").cosine(&with.embed("crashhing"));
        let sim_without = without.embed("crashing").cosine(&without.embed("crashhing"));
        assert!(sim_with > sim_without);
    }

    #[test]
    fn fit_downweights_frequent_tokens() {
        let mut e = SentenceEmbedder::new(EmbedderConfig::default());
        let corpus: Vec<String> = (0..50)
            .map(|i| format!("filler filler filler topic{}", i % 5))
            .collect();
        e.fit(&corpus);
        assert!(e.sif_weight("filler") < e.sif_weight("topic0"));
        assert_eq!(e.sif_weight("unseen-token"), 1.0);
    }

    #[test]
    fn different_seeds_different_spaces() {
        let a = SentenceEmbedder::new(EmbedderConfig { seed: 1, ..Default::default() });
        let b = SentenceEmbedder::new(EmbedderConfig { seed: 2, ..Default::default() });
        let va = a.embed("hello world");
        let vb = b.embed("hello world");
        assert!(va.cosine(&vb).abs() < 0.5);
    }

    #[test]
    fn multilingual_translations_overlap() {
        let m = MultilingualEmbedder::new(EmbedderConfig::large());
        // Cognate-heavy pair: "results incorrect" / "resultados incorrectos".
        let en = m.embed("the results are incorrect");
        let es = m.embed("los resultados son incorrectos");
        let unrelated = m.embed("brilliant camera zoom feature");
        assert!(en.cosine(&es) > en.cosine(&unrelated));
    }

    #[test]
    fn batch_matches_single() {
        let e = SentenceEmbedder::new(EmbedderConfig::small());
        let batch = e.embed_batch(&["a b c", "d e f"]);
        assert_eq!(batch[0].as_slice(), e.embed("a b c").as_slice());
        assert_eq!(batch.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dims must be positive")]
    fn zero_dims_panics() {
        SentenceEmbedder::new(EmbedderConfig { dims: 0, ..Default::default() });
    }

    #[test]
    fn memo_matches_direct_and_caches() {
        let e = SentenceEmbedder::new(EmbedderConfig::default());
        let memo = EmbedMemo::new(&e);
        assert!(memo.is_empty());
        let a = memo.embed("the app crashes");
        assert_eq!(a.as_slice(), e.embed("the app crashes").as_slice());
        let b = memo.embed("the app crashes");
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(memo.len(), 1);
        memo.embed("different text");
        assert_eq!(memo.len(), 2);
    }
}
