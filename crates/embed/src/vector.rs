//! Dense embedding vector with the similarity kernels the workspace needs.

use serde::{Deserialize, Serialize};

/// A dense `f32` vector. Produced by the embedders; consumed by the vector
/// database, clustering, and coherence metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding(Vec<f32>);

impl Embedding {
    /// Wrap a raw vector.
    pub fn new(values: Vec<f32>) -> Self {
        Embedding(values)
    }

    /// A zero vector of dimension `dims`.
    pub fn zeros(dims: usize) -> Self {
        Embedding(vec![0.0; dims])
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Borrow the raw values.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Consume into the raw values.
    pub fn into_vec(self) -> Vec<f32> {
        self.0
    }

    /// Dot product. Panics if dimensions differ.
    pub fn dot(&self, other: &Embedding) -> f32 {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Cosine similarity in [-1, 1]; 0 when either vector is zero.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        let denom = self.norm() * other.norm();
        if denom <= f32::EPSILON {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// Squared Euclidean distance.
    pub fn sq_dist(&self, other: &Embedding) -> f32 {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Normalize in place to unit length (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > f32::EPSILON {
            for v in &mut self.0 {
                *v /= n;
            }
        }
    }

    /// `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Embedding, scale: f32) {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += scale * b;
        }
    }

    /// Element-wise mean of `vectors`; `None` if the slice is empty.
    pub fn mean(vectors: &[Embedding]) -> Option<Embedding> {
        let first = vectors.first()?;
        let mut acc = Embedding::zeros(first.dims());
        for v in vectors {
            acc.add_scaled(v, 1.0);
        }
        let inv = 1.0 / vectors.len() as f32;
        for x in &mut acc.0 {
            *x *= inv;
        }
        Some(acc)
    }
}

impl From<Vec<f32>> for Embedding {
    fn from(v: Vec<f32>) -> Self {
        Embedding(v)
    }
}

impl AsRef<[f32]> for Embedding {
    fn as_ref(&self) -> &[f32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: &[f32]) -> Embedding {
        Embedding::new(v.to_vec())
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(e(&[3.0, 4.0]).norm(), 5.0);
        assert_eq!(e(&[1.0, 2.0]).dot(&e(&[3.0, 4.0])), 11.0);
    }

    #[test]
    fn cosine_bounds() {
        let a = e(&[1.0, 0.0]);
        assert!((a.cosine(&e(&[1.0, 0.0])) - 1.0).abs() < 1e-6);
        assert!((a.cosine(&e(&[-1.0, 0.0])) + 1.0).abs() < 1e-6);
        assert_eq!(a.cosine(&e(&[0.0, 0.0])), 0.0);
    }

    #[test]
    fn normalize_unit() {
        let mut v = e(&[3.0, 4.0]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        let mut z = e(&[0.0, 0.0]);
        z.normalize(); // must not NaN
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn mean_of_vectors() {
        let m = Embedding::mean(&[e(&[0.0, 2.0]), e(&[2.0, 0.0])]).unwrap();
        assert_eq!(m.as_slice(), &[1.0, 1.0]);
        assert!(Embedding::mean(&[]).is_none());
    }

    #[test]
    fn sq_dist() {
        assert_eq!(e(&[0.0, 0.0]).sq_dist(&e(&[3.0, 4.0])), 25.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_dim_mismatch_panics() {
        e(&[1.0]).dot(&e(&[1.0, 2.0]));
    }
}
