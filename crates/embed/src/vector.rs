//! Dense embedding vector with the similarity kernels the workspace needs.
//!
//! The kernels accumulate in [`LANES`] independent lanes with a fixed
//! pairwise reduction at the end. Lane-independent accumulators are what
//! lets LLVM auto-vectorize a float reduction (strict left-to-right
//! summation is not reassociable), and the fixed lane count + reduction
//! order keeps results bit-identical across calls, inputs aside — the
//! workspace's determinism contract cares about *reproducibility*, not
//! about matching a scalar reference sum. Every norm/dot/cosine in the
//! workspace goes through these kernels, so all similarity comparisons
//! stay self-consistent.

use serde::{Deserialize, Serialize};

/// Accumulator lanes for the slice kernels: 8 f32 lanes fill a 256-bit
/// vector register and still auto-vectorize to pairs on 128-bit targets.
pub const LANES: usize = 8;

/// Dot product of two equal-length slices (lane-chunked; see module docs).
/// Panics if lengths differ.
pub fn dot_slices(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    reduce(acc) + tail
}

/// Squared Euclidean distance of two equal-length slices (lane-chunked).
/// Panics if lengths differ.
pub fn sq_dist_slices(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    reduce(acc) + tail
}

/// Euclidean norm of a slice, via the same kernel as [`dot_slices`] so a
/// norm precomputed elsewhere (e.g. the vectordb row arena) is
/// bit-identical to `Embedding::norm` on the same values.
pub fn norm_slice(a: &[f32]) -> f32 {
    dot_slices(a, a).sqrt()
}

/// Fixed pairwise lane reduction: the order is part of the determinism
/// contract (any reorder would change low bits between builds).
#[inline]
fn reduce(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// A dense `f32` vector. Produced by the embedders; consumed by the vector
/// database, clustering, and coherence metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding(Vec<f32>);

impl Embedding {
    /// Wrap a raw vector.
    pub fn new(values: Vec<f32>) -> Self {
        Embedding(values)
    }

    /// A zero vector of dimension `dims`.
    pub fn zeros(dims: usize) -> Self {
        Embedding(vec![0.0; dims])
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Borrow the raw values.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Consume into the raw values.
    pub fn into_vec(self) -> Vec<f32> {
        self.0
    }

    /// Dot product. Panics if dimensions differ.
    pub fn dot(&self, other: &Embedding) -> f32 {
        dot_slices(&self.0, &other.0)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        norm_slice(&self.0)
    }

    /// Cosine similarity in [-1, 1]; 0 when either vector is zero.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        let denom = self.norm() * other.norm();
        if denom <= f32::EPSILON {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// Squared Euclidean distance.
    pub fn sq_dist(&self, other: &Embedding) -> f32 {
        sq_dist_slices(&self.0, &other.0)
    }

    /// Normalize in place to unit length (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > f32::EPSILON {
            for v in &mut self.0 {
                *v /= n;
            }
        }
    }

    /// `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Embedding, scale: f32) {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += scale * b;
        }
    }

    /// Element-wise mean of `vectors`; `None` if the slice is empty.
    pub fn mean(vectors: &[Embedding]) -> Option<Embedding> {
        let first = vectors.first()?;
        let mut acc = Embedding::zeros(first.dims());
        for v in vectors {
            acc.add_scaled(v, 1.0);
        }
        let inv = 1.0 / vectors.len() as f32;
        for x in &mut acc.0 {
            *x *= inv;
        }
        Some(acc)
    }
}

impl From<Vec<f32>> for Embedding {
    fn from(v: Vec<f32>) -> Self {
        Embedding(v)
    }
}

impl AsRef<[f32]> for Embedding {
    fn as_ref(&self) -> &[f32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: &[f32]) -> Embedding {
        Embedding::new(v.to_vec())
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(e(&[3.0, 4.0]).norm(), 5.0);
        assert_eq!(e(&[1.0, 2.0]).dot(&e(&[3.0, 4.0])), 11.0);
    }

    #[test]
    fn cosine_bounds() {
        let a = e(&[1.0, 0.0]);
        assert!((a.cosine(&e(&[1.0, 0.0])) - 1.0).abs() < 1e-6);
        assert!((a.cosine(&e(&[-1.0, 0.0])) + 1.0).abs() < 1e-6);
        assert_eq!(a.cosine(&e(&[0.0, 0.0])), 0.0);
    }

    #[test]
    fn normalize_unit() {
        let mut v = e(&[3.0, 4.0]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        let mut z = e(&[0.0, 0.0]);
        z.normalize(); // must not NaN
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn mean_of_vectors() {
        let m = Embedding::mean(&[e(&[0.0, 2.0]), e(&[2.0, 0.0])]).unwrap();
        assert_eq!(m.as_slice(), &[1.0, 1.0]);
        assert!(Embedding::mean(&[]).is_none());
    }

    #[test]
    fn sq_dist() {
        assert_eq!(e(&[0.0, 0.0]).sq_dist(&e(&[3.0, 4.0])), 25.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_dim_mismatch_panics() {
        e(&[1.0]).dot(&e(&[1.0, 2.0]));
    }

    /// Deterministic pseudo-random values for kernel checks.
    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u32 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn lane_kernels_match_scalar_reference() {
        // Every length around the lane boundary exercises the remainder path.
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 256] {
            let a = pseudo(n, 11 + n as u64);
            let b = pseudo(n, 97 + n as u64);
            let scalar_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let scalar_sq: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((dot_slices(&a, &b) - scalar_dot).abs() < 1e-4, "dot diverged at n={n}");
            assert!((sq_dist_slices(&a, &b) - scalar_sq).abs() < 1e-4, "sq_dist diverged at n={n}");
            // Bit-identical on repeat calls: the reduction order is fixed.
            assert_eq!(dot_slices(&a, &b).to_bits(), dot_slices(&a, &b).to_bits());
        }
    }

    #[test]
    fn norm_slice_matches_embedding_norm_bitwise() {
        let v = pseudo(37, 5);
        assert_eq!(norm_slice(&v).to_bits(), Embedding::new(v.clone()).norm().to_bits());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn slice_kernel_length_mismatch_panics() {
        dot_slices(&[1.0, 2.0], &[1.0]);
    }
}
