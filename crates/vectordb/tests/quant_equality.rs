//! Property test for the quantized-scan contract: candidate pruning with
//! i8 codes plus exact f32 rescore must return *exactly* the hits of the
//! pure-f32 scan — same ids, same order, same score bits — across random
//! vectors, exact ties, filters, and every k. The exact path itself is
//! pinned against a pre-refactor reference scan (owned records, per-row
//! `cosine`, full sort), so this file is also the golden before/after
//! equality check for the arena refactor.

use allhands_embed::Embedding;
use allhands_vectordb::{
    Filter, FlatIndex, IvfIndex, Record, SearchResult, VectorIndex, QUANT_MIN_ROWS,
};
use proptest::prelude::*;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The pre-arena scan, verbatim in spirit: walk owned records, score each
/// with `Embedding::cosine`, full-sort by `(score desc, id asc)`.
fn reference_scan(
    records: &[Record],
    query: &Embedding,
    k: usize,
    filter: &Filter,
) -> Vec<SearchResult> {
    let mut scored: Vec<SearchResult> = records
        .iter()
        .filter(|r| filter.matches(r))
        .map(|r| SearchResult { id: r.id, score: query.cosine(&r.vector) })
        .collect();
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    scored.truncate(k);
    scored
}

fn assert_same_hits(a: &[SearchResult], b: &[SearchResult], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{ctx}: id order diverged");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{ctx}: score bits diverged at id {}",
            x.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn quantized_scan_equals_f32_scan(
        seed in 0u64..u64::MAX,
        dims in 8usize..25,
        k in 1usize..40,
        ties in 0usize..6,
        spread in 0.5f32..16.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = QUANT_MIN_ROWS + 40; // large enough to engage quantization
        let mut records: Vec<Record> = Vec::with_capacity(n + ties);
        for i in 0..n as u64 {
            let v = Embedding::new((0..dims).map(|_| rng.gen_range(-spread..spread)).collect());
            let label = ["bug", "praise", "other"][(i % 3) as usize];
            records.push(Record::new(i, v).with_meta("label", label));
        }
        // Exact ties: duplicate existing vectors under fresh ids, so the
        // (score desc, id asc) tie-break is exercised every case.
        for t in 0..ties {
            let src = rng.gen_range(0..records.len());
            let dup = Record::new((n + t) as u64, records[src].vector.clone())
                .with_meta("label", "bug");
            records.push(dup);
        }

        let mut quant = FlatIndex::new(dims);
        let mut exact = FlatIndex::new(dims);
        exact.set_quantization(false);
        let mut ivf_quant = IvfIndex::new(dims, 4);
        let mut ivf_exact = IvfIndex::new(dims, 4);
        ivf_exact.set_quantization(false);
        for r in &records {
            quant.insert(r.clone());
            exact.insert(r.clone());
            ivf_quant.insert(r.clone());
            ivf_exact.insert(r.clone());
        }
        ivf_quant.train(4);
        ivf_exact.train(4);

        let queries = [
            Embedding::new((0..dims).map(|_| rng.gen_range(-spread..spread)).collect()),
            // A query colliding exactly with a stored row: perfect-score ties.
            records[rng.gen_range(0..records.len())].vector.clone(),
        ];
        let filters = [Filter::none(), Filter::none().must("label", "bug")];
        for (qi, q) in queries.iter().enumerate() {
            for (fi, f) in filters.iter().enumerate() {
                let ctx = format!("seed={seed} dims={dims} k={k} q{qi} f{fi}");
                let reference = reference_scan(&records, q, k, f);
                let got_exact = exact.search_filtered(q, k, f);
                let got_quant = quant.search_filtered(q, k, f);
                assert_same_hits(&reference, &got_exact, &format!("{ctx} exact-vs-reference"));
                assert_same_hits(&got_exact, &got_quant, &format!("{ctx} quant-vs-exact"));
                // IVF probes the same partitions either way, so quantization
                // must be invisible there too.
                let ivf_e = ivf_exact.search_filtered(q, k, f);
                let ivf_q = ivf_quant.search_filtered(q, k, f);
                assert_same_hits(&ivf_e, &ivf_q, &format!("{ctx} ivf quant-vs-exact"));
            }
        }
    }
}
