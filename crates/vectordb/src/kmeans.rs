//! Seeded k-means (k-means++ initialization, Lloyd iterations).
//!
//! Used by [`crate::IvfIndex`] to partition the vector space, and by the
//! human-in-the-loop refinement pipeline indirectly through clustering.

use allhands_embed::Embedding;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Output of [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids (≤ k when there were fewer distinct points).
    pub centroids: Vec<Embedding>,
    /// Per-input centroid assignment (indexes into `centroids`).
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

/// Run k-means with k-means++ seeding for at most `max_iters` Lloyd steps.
///
/// Deterministic for a given `seed`. Panics if `points` is empty or `k == 0`.
pub fn kmeans(points: &[&Embedding], k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans requires at least one point");
    assert!(k > 0, "k must be positive");
    let k = k.min(points.len());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // k-means++ initialization.
    let mut centroids: Vec<Embedding> = Vec::with_capacity(k);
    let first = rng.gen_range(0..points.len());
    centroids.push(points[first].clone());
    let mut dists: Vec<f32> = points
        .iter()
        .map(|p| p.sq_dist(&centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().map(|&d| d as f64).sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with chosen centroids.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = p.sq_dist(centroids.last().expect("just pushed"));
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; points.len()];
    let mut inertia = f64::INFINITY;
    for _ in 0..max_iters {
        // Assignment step: per-point nearest-centroid search is pure, so it
        // runs data-parallel. Outputs come back in index order and the
        // inertia is summed sequentially over them, so the result is
        // identical at any thread count.
        let nearest = allhands_par::par_map_indexed(points, |_, p| {
            centroids
                .iter()
                .enumerate()
                .map(|(c, ctr)| (c, p.sq_dist(ctr)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("k >= 1")
        });
        let mut new_inertia = 0.0f64;
        for (i, (best, d)) in nearest.into_iter().enumerate() {
            assignments[i] = best;
            new_inertia += d as f64;
        }
        // Update step.
        let dims = points[0].dims();
        let mut sums = vec![vec![0.0f32; dims]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p.as_slice()) {
                *s += v;
            }
        }
        for (c, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f32;
                centroids[c] = Embedding::new(sum.iter().map(|s| s * inv).collect());
            }
            // Empty cluster: keep old centroid (it may capture points later).
        }
        // Converged?
        if (inertia - new_inertia).abs() < 1e-9 {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    KMeansResult { centroids, assignments, inertia }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[(f32, f32)]) -> Vec<Embedding> {
        raw.iter().map(|&(x, y)| Embedding::new(vec![x, y])).collect()
    }

    #[test]
    fn separates_two_obvious_clusters() {
        let data = pts(&[
            (0.0, 0.0), (0.1, 0.1), (0.0, 0.2),
            (5.0, 5.0), (5.1, 4.9), (4.9, 5.2),
        ]);
        let refs: Vec<&Embedding> = data.iter().collect();
        let r = kmeans(&refs, 2, 50, 1);
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[3], r.assignments[4]);
        assert_ne!(r.assignments[0], r.assignments[3]);
        assert!(r.inertia < 0.5);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (0.0, 2.0)]);
        let refs: Vec<&Embedding> = data.iter().collect();
        let a = kmeans(&refs, 2, 10, 7);
        let b = kmeans(&refs, 2, 10, 7);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_capped_at_n() {
        let data = pts(&[(0.0, 0.0), (1.0, 1.0)]);
        let refs: Vec<&Embedding> = data.iter().collect();
        let r = kmeans(&refs, 10, 5, 0);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn identical_points_ok() {
        let data = pts(&[(1.0, 1.0); 5]);
        let refs: Vec<&Embedding> = data.iter().collect();
        let r = kmeans(&refs, 3, 5, 0);
        assert!(r.inertia < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_panics() {
        kmeans(&[], 2, 5, 0);
    }
}
