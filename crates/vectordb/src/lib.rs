//! In-memory vector database for AllHands.
//!
//! The paper stores sentence-transformer embeddings of labeled feedback in a
//! vector database and retrieves the top-K most similar samples (cosine
//! similarity) to build in-context-learning prompts (Sec. 3.2), and again
//! during human-in-the-loop topic refinement (Sec. 3.3.2).
//!
//! Two index types with one API:
//! - [`FlatIndex`]: exact brute-force scan — the correctness baseline.
//! - [`IvfIndex`]: inverted-file index over k-means partitions — the
//!   realistic accuracy/latency trade-off, probing `nprobe` nearest
//!   partitions.
//!
//! Both support metadata key/value filtering at query time (e.g. restrict
//! retrieval to demonstrations from one dataset or label).
//!
//! Storage is columnar: vectors live in a contiguous cache-aligned arena
//! (see [`arena`](crate::arena) module docs) with precomputed norms and
//! scalar-quantized i8 codes. Large scans prune candidates with the cheap
//! integer kernel and rescore exactly, so results — ids, order, and score
//! bits — are always identical to a brute-force f32 scan.
//!
//! # Example
//!
//! ```
//! use allhands_vectordb::{FlatIndex, Record, VectorIndex};
//! use allhands_embed::Embedding;
//!
//! let mut index = FlatIndex::new(4);
//! index.insert(Record::new(0, Embedding::new(vec![1.0, 0.0, 0.0, 0.0]))
//!     .with_meta("label", "bug"));
//! index.insert(Record::new(1, Embedding::new(vec![0.0, 1.0, 0.0, 0.0]))
//!     .with_meta("label", "praise"));
//!
//! let hits = index.search(&Embedding::new(vec![0.9, 0.1, 0.0, 0.0]), 1);
//! assert_eq!(hits[0].id, 0);
//! ```

mod arena;
pub mod kmeans;

pub use arena::{QUANT_MIN_DIMS, QUANT_MIN_ROWS};
pub use kmeans::{kmeans, KMeansResult};

#[cfg(test)]
pub(crate) use arena::PAR_SCAN_THRESHOLD;
use arena::RowPool;

use allhands_embed::Embedding;
use allhands_obs::Recorder;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A stored record: id, embedding, and optional string metadata.
#[derive(Debug, Clone)]
pub struct Record {
    /// Caller-assigned identifier (e.g. feedback row index).
    pub id: u64,
    /// The embedding vector.
    pub vector: Embedding,
    /// Arbitrary key/value metadata used for filtered search.
    pub metadata: HashMap<String, String>,
}

impl Record {
    /// Create a record with empty metadata.
    pub fn new(id: u64, vector: Embedding) -> Self {
        Record { id, vector, metadata: HashMap::new() }
    }

    /// Builder-style metadata attachment.
    pub fn with_meta(mut self, key: &str, value: &str) -> Self {
        self.metadata.insert(key.to_string(), value.to_string());
        self
    }
}

/// One search hit: record id and cosine similarity score.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Id of the matching record.
    pub id: u64,
    /// Cosine similarity to the query, in [-1, 1].
    pub score: f32,
}

/// A metadata predicate: all listed key/value pairs must match exactly.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    conditions: Vec<(String, String)>,
}

impl Filter {
    /// The empty filter (matches everything).
    pub fn none() -> Self {
        Filter::default()
    }

    /// Require `key == value`.
    pub fn must(mut self, key: &str, value: &str) -> Self {
        self.conditions.push((key.to_string(), value.to_string()));
        self
    }

    /// Does `record` satisfy all conditions?
    pub fn matches(&self, record: &Record) -> bool {
        self.matches_meta(&record.metadata)
    }

    /// Does a bare metadata map satisfy all conditions? (The columnar scan
    /// path filters on metadata without materializing a [`Record`].)
    pub fn matches_meta(&self, metadata: &HashMap<String, String>) -> bool {
        self.conditions.iter().all(|(k, v)| metadata.get(k).is_some_and(|rv| rv == v))
    }

    /// True when the filter has no conditions.
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }
}

/// Common interface of the vector indexes.
pub trait VectorIndex {
    /// Insert one record. Panics on dimension mismatch.
    fn insert(&mut self, record: Record);

    /// Exact or approximate top-`k` cosine search.
    fn search(&self, query: &Embedding, k: usize) -> Vec<SearchResult> {
        self.search_filtered(query, k, &Filter::none())
    }

    /// Top-`k` search restricted to records matching `filter`.
    fn search_filtered(&self, query: &Embedding, k: usize, filter: &Filter) -> Vec<SearchResult>;

    /// Number of stored records.
    fn len(&self) -> usize;

    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch a record by id, reconstructed (owned) from columnar storage.
    fn get(&self, id: u64) -> Option<Record>;

    /// Remove a record by id; returns whether it existed. Removal is a
    /// mutation like insert: on [`IvfIndex`] it counts toward the staleness
    /// ratio that triggers automatic retraining.
    fn remove(&mut self, id: u64) -> bool;
}

/// Heap entry ordered worst-first (lower score, then larger id, compares
/// `Greater`), so the max-heap root is always the weakest survivor and
/// `pop` evicts it. Because record ids are unique, `(score desc, id asc)`
/// is a total order and k-selection matches a full stable sort exactly.
struct HeapEntry(SearchResult);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: a NaN score
        // (e.g. a zero-norm or NaN-bearing vector) must still occupy one
        // fixed place in the order — treating it as equal to everything
        // makes the heap's result depend on insertion order.
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

/// Keep the best `k` results from a scored candidate stream, ties broken by
/// ascending id for determinism. O(n log k) bounded-heap selection instead
/// of a full O(n log n) sort — `k` is tiny (demo retrieval asks for ~4-24)
/// while the candidate pool is the whole index.
pub(crate) fn top_k(candidates: Vec<SearchResult>, k: usize) -> Vec<SearchResult> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
    for c in candidates {
        heap.push(HeapEntry(c));
        if heap.len() > k {
            heap.pop();
        }
    }
    // Ascending by worst-first Ord = best-first output.
    heap.into_sorted_vec().into_iter().map(|e| e.0).collect()
}

/// Exact brute-force index over one columnar row pool.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    dims: usize,
    pool: RowPool,
    by_id: HashMap<u64, usize>,
    rec: Recorder,
    quant: bool,
}

impl FlatIndex {
    /// Create an empty index for `dims`-dimensional vectors.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        FlatIndex {
            dims,
            pool: RowPool::new(dims),
            by_id: HashMap::new(),
            rec: Recorder::disabled(),
            quant: true,
        }
    }

    /// Attach a metrics recorder (counts searches and scanned records).
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Enable/disable the quantized candidate-pruning scan (on by default).
    /// Results are byte-identical either way — this is a speed toggle, used
    /// by the benches to A/B the exact and quantized paths.
    pub fn set_quantization(&mut self, enabled: bool) {
        self.quant = enabled;
    }

    /// Iterate all records (owned; reconstructed from columnar storage).
    pub fn iter(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.pool.len()).map(|slot| self.pool.record(slot))
    }
}

impl VectorIndex for FlatIndex {
    fn insert(&mut self, record: Record) {
        assert_eq!(record.vector.dims(), self.dims, "dimension mismatch");
        if let Some(&pos) = self.by_id.get(&record.id) {
            self.pool.fill(pos, record); // upsert in place
        } else {
            self.by_id.insert(record.id, self.pool.len());
            self.pool.push(record);
        }
    }

    fn search_filtered(&self, query: &Embedding, k: usize, filter: &Filter) -> Vec<SearchResult> {
        assert_eq!(query.dims(), self.dims, "dimension mismatch");
        self.rec.incr("vectordb.searches.flat");
        self.rec.add("vectordb.scanned.flat", self.pool.len() as u64);
        self.rec.observe("vectordb.pool_size", self.pool.len() as u64);
        self.pool.scan_top_k(query, k, filter, self.quant, &self.rec)
    }

    fn len(&self) -> usize {
        self.pool.len()
    }

    fn get(&self, id: u64) -> Option<Record> {
        self.by_id.get(&id).map(|&pos| self.pool.record(pos))
    }

    fn remove(&mut self, id: u64) -> bool {
        match self.by_id.remove(&id) {
            Some(pos) => {
                if let Some(moved) = self.pool.swap_remove(pos) {
                    self.by_id.insert(moved, pos);
                }
                true
            }
            None => false,
        }
    }
}

/// Inverted-file (IVF) index: records are partitioned by k-means over a
/// training sample; queries probe the `nprobe` nearest partitions.
///
/// Until [`IvfIndex::train`] is called (or before `train_threshold` records
/// exist), searches fall back to an exact scan, so the index is always
/// correct — training only changes the speed/recall trade-off.
/// One serialized metadata pair. The serde derive shim has no tuple
/// support, and emitting pairs sorted by key keeps the serialized form
/// deterministic regardless of `HashMap` iteration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaPair {
    /// Metadata key.
    pub key: String,
    /// Metadata value.
    pub value: String,
}

/// Serialized form of one stored [`Record`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordState {
    /// Caller-assigned identifier.
    pub id: u64,
    /// The embedding vector (f32 round-trips exactly through JSON: the
    /// shortest-round-trip float printer preserves every bit pattern).
    pub vector: Embedding,
    /// Metadata pairs, sorted by key.
    pub metadata: Vec<MetaPair>,
}

/// Complete serialized state of an [`IvfIndex`] — centroids, partition
/// contents *in storage order* (offsets are load-bearing: `by_id` indexes
/// into them), and the retrain-policy counters. Restoring this state and
/// continuing to mutate produces byte-identical behavior to the original
/// index, which is what lets journal checkpoints cover the ingest path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IvfState {
    /// Vector dimensionality.
    pub dims: u64,
    /// Partitions probed per query.
    pub nprobe: u64,
    /// K-means seed.
    pub seed: u64,
    /// Partition centroids (empty = untrained).
    pub centroids: Vec<Embedding>,
    /// Per-partition records, inner order preserved.
    pub partitions: Vec<Vec<RecordState>>,
    /// Partition count requested by the last `train` call.
    pub target_partitions: u64,
    /// Mutations since the last training.
    pub mutations: u64,
    /// Auto-retrain staleness threshold (`None` = manual only).
    pub retrain_staleness: Option<f32>,
    /// Completed k-means trainings.
    pub trains: u64,
}

#[derive(Debug, Clone)]
pub struct IvfIndex {
    dims: usize,
    /// Partition centroids (empty = untrained).
    centroids: Vec<Embedding>,
    /// Per-partition columnar record storage.
    partitions: Vec<RowPool>,
    /// id → (partition, slot)
    by_id: HashMap<u64, (usize, usize)>,
    /// Number of partitions to probe at query time.
    pub nprobe: usize,
    seed: u64,
    rec: Recorder,
    /// Partition count requested by the last [`train`](IvfIndex::train)
    /// call — remembered even when that call no-opped (too few records), so
    /// a later flood of inserts can still trigger the deferred training.
    /// `0` until `train` is first called: auto-retrain never second-guesses
    /// an index nobody asked to train.
    target_partitions: usize,
    /// Inserts + removes since the last `train` call (upserts count once).
    mutations: usize,
    /// Auto-retrain when `mutations / len` reaches this ratio
    /// (`None` = manual training only).
    retrain_staleness: Option<f32>,
    /// Completed k-means trainings (manual and automatic).
    trains: u64,
    /// Quantized candidate pruning on the scan path (on by default).
    quant: bool,
}

impl IvfIndex {
    /// Staleness ratio past which a trained-or-armed index automatically
    /// retrains (see [`IvfIndex::set_retrain_policy`]).
    pub const DEFAULT_RETRAIN_STALENESS: f32 = 0.5;

    /// Create an untrained IVF index.
    pub fn new(dims: usize, nprobe: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        IvfIndex {
            dims,
            centroids: Vec::new(),
            partitions: vec![RowPool::new(dims)],
            by_id: HashMap::new(),
            nprobe: nprobe.max(1),
            seed: 42,
            rec: Recorder::disabled(),
            target_partitions: 0,
            mutations: 0,
            retrain_staleness: Some(Self::DEFAULT_RETRAIN_STALENESS),
            trains: 0,
            quant: true,
        }
    }

    /// Attach a metrics recorder (counts searches and scanned records).
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Enable/disable the quantized candidate-pruning scan (on by default).
    /// Results are byte-identical either way.
    pub fn set_quantization(&mut self, enabled: bool) {
        self.quant = enabled;
    }

    /// Snapshot the full index state for serialization (see [`IvfState`]).
    pub fn to_state(&self) -> IvfState {
        let ser_record = |r: Record| {
            let mut metadata: Vec<MetaPair> = r
                .metadata
                .into_iter()
                .map(|(key, value)| MetaPair { key, value })
                .collect();
            metadata.sort_by(|a, b| a.key.cmp(&b.key));
            RecordState { id: r.id, vector: r.vector, metadata }
        };
        IvfState {
            dims: self.dims as u64,
            nprobe: self.nprobe as u64,
            seed: self.seed,
            centroids: self.centroids.clone(),
            partitions: self
                .partitions
                .iter()
                .map(|p| (0..p.len()).map(|slot| ser_record(p.record(slot))).collect())
                .collect(),
            target_partitions: self.target_partitions as u64,
            mutations: self.mutations as u64,
            retrain_staleness: self.retrain_staleness,
            trains: self.trains,
        }
    }

    /// Rebuild an index from a serialized snapshot. The recorder starts
    /// disabled — reattach one with [`set_recorder`](Self::set_recorder).
    pub fn from_state(state: IvfState) -> IvfIndex {
        let dims = (state.dims as usize).max(1);
        let mut centroids = state.centroids;
        let mut record_partitions: Vec<Vec<Record>> = state
            .partitions
            .into_iter()
            .map(|p| {
                p.into_iter()
                    .filter(|r| r.vector.dims() == dims) // defensive: drop corrupt rows
                    .map(|r| {
                        let mut metadata = HashMap::new();
                        for m in r.metadata {
                            metadata.insert(m.key, m.value);
                        }
                        Record { id: r.id, vector: r.vector, metadata }
                    })
                    .collect()
            })
            .collect();
        // Defensive repair of inconsistent snapshots: `assign` indexes
        // partitions by centroid position, so a count mismatch would panic.
        // Collapse to the untrained-but-correct single-partition layout.
        if centroids.len() != record_partitions.len() && !centroids.is_empty() {
            centroids.clear();
            record_partitions = vec![record_partitions.into_iter().flatten().collect()];
        }
        if record_partitions.is_empty() {
            record_partitions = vec![Vec::new()];
        }
        let partitions: Vec<RowPool> = record_partitions
            .into_iter()
            .map(|records| {
                let mut pool = RowPool::new(dims);
                for r in records {
                    pool.push(r);
                }
                pool
            })
            .collect();
        let mut idx = IvfIndex {
            dims,
            centroids,
            partitions,
            by_id: HashMap::new(),
            nprobe: (state.nprobe as usize).max(1),
            seed: state.seed,
            rec: Recorder::disabled(),
            target_partitions: state.target_partitions as usize,
            mutations: state.mutations as usize,
            retrain_staleness: state.retrain_staleness,
            trains: state.trains,
            quant: true,
        };
        idx.rebuild_id_map();
        idx
    }

    /// Train `n_partitions` k-means centroids on the current contents and
    /// re-assign every record. With fewer records than partitions the
    /// partitioning itself no-ops, but the request is remembered: once
    /// enough inserts accumulate, the staleness-ratio auto-retrain performs
    /// the deferred training with the same partition count.
    pub fn train(&mut self, n_partitions: usize) {
        self.target_partitions = n_partitions;
        self.mutations = 0;
        let all: Vec<Record> =
            self.partitions.iter_mut().flat_map(RowPool::take_records).collect();
        // Records with non-finite coordinates sit out k-means: a NaN
        // distance poisons the k-means++ seeding weights (`gen_range(0.0..NaN)`).
        // They are stored afterwards wherever `assign` deterministically
        // routes them (all-NaN distances tie-break to partition 0).
        let (finite, rest): (Vec<Record>, Vec<Record>) = all
            .into_iter()
            .partition(|r| r.vector.as_slice().iter().all(|v| v.is_finite()));
        if finite.len() < n_partitions || n_partitions < 2 {
            let mut pool = RowPool::new(self.dims);
            for r in finite.into_iter().chain(rest) {
                pool.push(r);
            }
            self.centroids.clear();
            self.partitions = vec![pool];
            self.rebuild_id_map();
            return;
        }
        let vectors: Vec<&Embedding> = finite.iter().map(|r| &r.vector).collect();
        let result = kmeans(&vectors, n_partitions, 20, self.seed);
        self.centroids = result.centroids;
        self.partitions = (0..self.centroids.len()).map(|_| RowPool::new(self.dims)).collect();
        for (record, &part) in finite.into_iter().zip(&result.assignments) {
            self.partitions[part].push(record);
        }
        for record in rest {
            let part = self.assign(&record.vector);
            self.partitions[part].push(record);
        }
        self.rebuild_id_map();
        self.trains += 1;
        self.rec.incr("vectordb.ivf_trains");
    }

    /// Fraction of the index mutated (inserted/removed) since the last
    /// `train` call; 0 for an empty index.
    pub fn staleness(&self) -> f32 {
        if self.by_id.is_empty() {
            0.0
        } else {
            self.mutations as f32 / self.by_id.len() as f32
        }
    }

    /// Inserts + removes since the last `train` call.
    pub fn mutations_since_train(&self) -> usize {
        self.mutations
    }

    /// Completed k-means trainings, manual and automatic.
    pub fn train_count(&self) -> u64 {
        self.trains
    }

    /// Set the staleness ratio that triggers automatic retraining
    /// (`None` disables it). The retrain re-runs k-means with the partition
    /// count of the last `train` call, so it only ever fires on an index
    /// whose owner asked for training at least once.
    pub fn set_retrain_policy(&mut self, staleness: Option<f32>) {
        self.retrain_staleness = staleness;
    }

    /// Retrain if armed (a `train` call happened), enough records exist for
    /// the requested partition count, and the staleness ratio has been
    /// reached. Called after every mutation.
    fn maybe_retrain(&mut self) {
        let Some(threshold) = self.retrain_staleness else { return };
        if self.target_partitions < 2 || self.by_id.len() < self.target_partitions {
            return;
        }
        if self.staleness() >= threshold {
            self.rec.incr("vectordb.ivf_auto_retrains");
            self.train(self.target_partitions);
        }
    }

    fn rebuild_id_map(&mut self) {
        self.by_id.clear();
        for (p, partition) in self.partitions.iter().enumerate() {
            for o in 0..partition.len() {
                self.by_id.insert(partition.id(o), (p, o));
            }
        }
    }

    /// Which partition should `vector` live in?
    ///
    /// `(distance asc, partition index asc)` is a total order (`total_cmp`
    /// handles NaN distances; the index breaks exact ties), so assignment
    /// agrees with the probe ranking in `search_filtered`. Without the
    /// explicit tie-break the two diverge: `min_by` keeps the *last* of
    /// equal minima while a stable sort keeps the *first*, so a record at a
    /// point equidistant from two centroids would be stored in one
    /// partition but probed in the other — unreachable at `nprobe = 1`.
    fn assign(&self, vector: &Embedding) -> usize {
        if self.centroids.is_empty() {
            return 0;
        }
        self.centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, vector.sq_dist(c)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Is the index trained (partitioned)?
    pub fn is_trained(&self) -> bool {
        !self.centroids.is_empty()
    }

    /// Number of partitions (1 when untrained).
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }
}

impl VectorIndex for IvfIndex {
    fn insert(&mut self, record: Record) {
        assert_eq!(record.vector.dims(), self.dims, "dimension mismatch");
        // Upsert: the new vector may belong to a different partition than
        // the old one, so remove the stale entry first.
        if let Some(&(p, o)) = self.by_id.get(&record.id) {
            if let Some(moved) = self.partitions[p].swap_remove(o) {
                self.by_id.insert(moved, (p, o));
            }
            self.by_id.remove(&record.id);
        }
        let part = self.assign(&record.vector);
        self.by_id.insert(record.id, (part, self.partitions[part].len()));
        self.partitions[part].push(record);
        self.mutations += 1;
        self.maybe_retrain();
    }

    fn search_filtered(&self, query: &Embedding, k: usize, filter: &Filter) -> Vec<SearchResult> {
        assert_eq!(query.dims(), self.dims, "dimension mismatch");
        let probe: Vec<usize> = if self.centroids.is_empty() {
            (0..self.partitions.len()).collect()
        } else {
            // Rank partitions by centroid distance, probe the nearest nprobe.
            let mut ranked: Vec<(usize, f32)> = self
                .centroids
                .iter()
                .enumerate()
                .map(|(i, c)| (i, query.sq_dist(c)))
                .collect();
            // Same total order as `assign`: distance asc, partition index
            // asc. `total_cmp` keeps NaN distances from collapsing the
            // ranking into insertion-order noise.
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            ranked.into_iter().take(self.nprobe).map(|(i, _)| i).collect()
        };
        let scanned: usize = probe.iter().map(|&p| self.partitions[p].len()).sum();
        self.rec.incr("vectordb.searches.ivf");
        self.rec.add("vectordb.scanned.ivf", scanned as u64);
        self.rec.observe("vectordb.pool_size", scanned as u64);
        // Per-partition top-k merged by one more top-k pass: the probed
        // partitions are disjoint, so this equals a top-k over their
        // concatenation under the `(score desc, id asc)` total order.
        let mut partials = Vec::new();
        for p in probe {
            partials.extend(self.partitions[p].scan_top_k(query, k, filter, self.quant, &self.rec));
        }
        top_k(partials, k)
    }

    fn len(&self) -> usize {
        self.by_id.len()
    }

    fn get(&self, id: u64) -> Option<Record> {
        self.by_id.get(&id).map(|&(p, o)| self.partitions[p].record(o))
    }

    fn remove(&mut self, id: u64) -> bool {
        match self.by_id.remove(&id) {
            Some((p, o)) => {
                if let Some(moved) = self.partitions[p].swap_remove(o) {
                    self.by_id.insert(moved, (p, o));
                }
                self.mutations += 1;
                self.maybe_retrain();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec2(x: f32, y: f32) -> Embedding {
        Embedding::new(vec![x, y])
    }

    #[test]
    fn flat_exact_topk() {
        let mut idx = FlatIndex::new(2);
        idx.insert(Record::new(0, vec2(1.0, 0.0)));
        idx.insert(Record::new(1, vec2(0.0, 1.0)));
        idx.insert(Record::new(2, vec2(0.7, 0.7)));
        let hits = idx.search(&vec2(1.0, 0.1), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
    }

    #[test]
    fn flat_upsert_and_remove() {
        let mut idx = FlatIndex::new(2);
        idx.insert(Record::new(7, vec2(1.0, 0.0)));
        idx.insert(Record::new(7, vec2(0.0, 1.0))); // upsert
        assert_eq!(idx.len(), 1);
        let hits = idx.search(&vec2(0.0, 1.0), 1);
        assert!(hits[0].score > 0.99);
        assert!(idx.remove(7));
        assert!(!idx.remove(7));
        assert!(idx.is_empty());
    }

    #[test]
    fn metadata_filter() {
        let mut idx = FlatIndex::new(2);
        idx.insert(Record::new(0, vec2(1.0, 0.0)).with_meta("label", "bug"));
        idx.insert(Record::new(1, vec2(0.99, 0.01)).with_meta("label", "praise"));
        let f = Filter::none().must("label", "praise");
        let hits = idx.search_filtered(&vec2(1.0, 0.0), 5, &f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn ivf_untrained_equals_flat() {
        let mut flat = FlatIndex::new(2);
        let mut ivf = IvfIndex::new(2, 1);
        for i in 0..20u64 {
            let v = vec2((i as f32).cos(), (i as f32).sin());
            flat.insert(Record::new(i, v.clone()));
            ivf.insert(Record::new(i, v));
        }
        let q = vec2(0.5, 0.5);
        assert_eq!(flat.search(&q, 5), ivf.search(&q, 5));
    }

    #[test]
    fn ivf_trained_high_recall_with_enough_probes() {
        let mut ivf = IvfIndex::new(2, 4);
        let mut flat = FlatIndex::new(2);
        for i in 0..200u64 {
            let angle = i as f32 * 0.031_415;
            let v = vec2(angle.cos(), angle.sin());
            ivf.insert(Record::new(i, v.clone()));
            flat.insert(Record::new(i, v));
        }
        ivf.train(4);
        assert!(ivf.is_trained());
        assert_eq!(ivf.len(), 200);
        let q = vec2(0.9, 0.43);
        let exact: Vec<u64> = flat.search(&q, 10).into_iter().map(|r| r.id).collect();
        let approx: Vec<u64> = ivf.search(&q, 10).into_iter().map(|r| r.id).collect();
        let recall = approx.iter().filter(|id| exact.contains(id)).count();
        assert!(recall >= 8, "recall {recall}/10 too low");
    }

    #[test]
    fn ivf_insert_after_training_routes_to_partition() {
        let mut ivf = IvfIndex::new(2, 1);
        for i in 0..50u64 {
            let v = if i % 2 == 0 { vec2(1.0, 0.0) } else { vec2(-1.0, 0.0) };
            ivf.insert(Record::new(i, v));
        }
        ivf.train(2);
        ivf.insert(Record::new(100, vec2(0.95, 0.05)));
        let hits = ivf.search(&vec2(1.0, 0.0), 1);
        // Nearest record to (1,0) must be findable with nprobe=1.
        assert!(hits[0].score > 0.99);
        assert!(ivf.get(100).is_some());
    }

    #[test]
    fn ties_break_by_id() {
        let mut idx = FlatIndex::new(2);
        idx.insert(Record::new(5, vec2(1.0, 0.0)));
        idx.insert(Record::new(3, vec2(1.0, 0.0)));
        let hits = idx.search(&vec2(1.0, 0.0), 2);
        assert_eq!(hits[0].id, 3);
    }

    #[test]
    fn ivf_state_roundtrip_preserves_structure_and_behavior() {
        let mut idx = IvfIndex::new(2, 2);
        for i in 0..12u64 {
            let angle = i as f32 * 0.5;
            idx.insert(
                Record::new(i, vec2(angle.cos(), angle.sin()))
                    .with_meta("label", if i % 2 == 0 { "even" } else { "odd" })
                    .with_meta("src", "test"),
            );
        }
        idx.train(3);
        idx.insert(Record::new(12, vec2(0.1, 0.9)));
        idx.remove(3);

        let state = idx.to_state();
        // JSON round trip: what a journal checkpoint actually stores.
        let json = serde_json::to_string(&state).unwrap();
        let state2: IvfState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, state2);

        let restored = IvfIndex::from_state(state2);
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.train_count(), idx.train_count());
        assert_eq!(restored.mutations_since_train(), idx.mutations_since_train());
        // Identical structure ⇒ identical search results…
        let q = vec2(0.6, 0.8);
        assert_eq!(restored.search(&q, 5), idx.search(&q, 5));
        // …and identical behavior under further mutations (auto-retrain
        // counters continue from the restored values).
        let mut a = idx.clone();
        let mut b = restored;
        for i in 20..40u64 {
            let angle = i as f32 * 0.31;
            a.insert(Record::new(i, vec2(angle.sin(), angle.cos())));
            b.insert(Record::new(i, vec2(angle.sin(), angle.cos())));
        }
        assert_eq!(a.train_count(), b.train_count());
        assert_eq!(a.search(&q, 8), b.search(&q, 8));
    }

    #[test]
    fn ivf_state_repairs_inconsistent_partition_layout() {
        let mut idx = IvfIndex::new(2, 1);
        for i in 0..6u64 {
            idx.insert(Record::new(i, vec2(i as f32, 1.0)));
        }
        idx.train(2);
        let mut state = idx.to_state();
        // Simulate a snapshot whose partition list lost a bucket: the
        // restore must not leave `assign` pointing past the end.
        state.partitions.pop();
        let restored = IvfIndex::from_state(state);
        assert!(restored.len() <= 6);
        let hits = restored.search(&vec2(2.0, 1.0), 3);
        assert!(!hits.is_empty());
    }

    #[test]
    fn k_larger_than_len() {
        let mut idx = FlatIndex::new(2);
        idx.insert(Record::new(0, vec2(1.0, 0.0)));
        assert_eq!(idx.search(&vec2(1.0, 0.0), 10).len(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_wrong_dims_panics() {
        let mut idx = FlatIndex::new(3);
        idx.insert(Record::new(0, vec2(1.0, 0.0)));
    }

    /// The seed's full-sort selection, kept verbatim as the oracle the
    /// heap-based `top_k` must match.
    fn top_k_by_sort(mut candidates: Vec<SearchResult>, k: usize) -> Vec<SearchResult> {
        candidates.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        candidates.truncate(k);
        candidates
    }

    #[test]
    fn heap_top_k_matches_full_sort_on_random_inputs() {
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for round in 0..50 {
            let n = rng.gen_range(0..400usize);
            // Coarse score grid so exact ties (same score, different id)
            // occur constantly and exercise the id tie-break.
            let candidates: Vec<SearchResult> = (0..n)
                .map(|id| SearchResult {
                    id: id as u64,
                    score: rng.gen_range(0..20) as f32 / 20.0,
                })
                .collect();
            for k in [0usize, 1, 3, 10, n, n + 7] {
                assert_eq!(
                    top_k(candidates.clone(), k),
                    top_k_by_sort(candidates.clone(), k),
                    "round={round} n={n} k={k}"
                );
            }
        }
    }

    /// A pool big enough to trip the parallel shard scan must return
    /// byte-identical hits at every thread count, for both index types.
    #[test]
    fn parallel_scan_identical_across_thread_counts() {
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let n = PAR_SCAN_THRESHOLD + 1500;
        let mut flat = FlatIndex::new(4);
        let mut ivf = IvfIndex::new(4, 2);
        for i in 0..n as u64 {
            let v = Embedding::new((0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
            let label = if i % 3 == 0 { "bug" } else { "other" };
            flat.insert(Record::new(i, v.clone()).with_meta("label", label));
            ivf.insert(Record::new(i, v).with_meta("label", label));
        }
        ivf.train(8);
        let query = Embedding::new(vec![0.3, -0.2, 0.9, 0.1]);
        let filter = Filter::none().must("label", "bug");
        let serial = allhands_par::with_threads(1, || {
            (
                flat.search(&query, 12),
                flat.search_filtered(&query, 12, &filter),
                ivf.search(&query, 12),
            )
        });
        for threads in [2usize, 4, 8] {
            let parallel = allhands_par::with_threads(threads, || {
                (
                    flat.search(&query, 12),
                    flat.search_filtered(&query, 12, &filter),
                    ivf.search(&query, 12),
                )
            });
            assert_eq!(serial, parallel, "threads={threads}");
        }
        // And the parallel shard path agrees with a plain full sort over
        // the pre-refactor representation (owned records, per-row cosine):
        // the golden before/after-arena equality check.
        let oracle = top_k_by_sort(
            flat.iter()
                .map(|r| SearchResult { id: r.id, score: query.cosine(&r.vector) })
                .collect(),
            12,
        );
        assert_eq!(serial.0, oracle);
    }

    /// The quantized candidate-pruning scan must be invisible: hits are
    /// byte-identical to the exact path — across ties, NaN rows, filters,
    /// serial and sharded scans, for both index types.
    #[test]
    fn quantized_scan_matches_exact_scan_bitwise() {
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        let dims = 16;
        let n = PAR_SCAN_THRESHOLD + 900; // sharded scan, quant engaged
        let mut flat = FlatIndex::new(dims);
        let mut ivf = IvfIndex::new(dims, 3);
        for i in 0..n as u64 {
            let v = Embedding::new((0..dims).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
            let label = if i % 4 == 0 { "bug" } else { "other" };
            flat.insert(Record::new(i, v.clone()).with_meta("label", label));
            ivf.insert(Record::new(i, v).with_meta("label", label));
        }
        // Exact ties and degenerate rows ride along.
        for id in [90_000u64, 90_001, 90_002] {
            let v = Embedding::new(vec![0.25; dims]);
            flat.insert(Record::new(id, v.clone()));
            ivf.insert(Record::new(id, v));
        }
        let mut nan_vals = vec![0.1f32; dims];
        nan_vals[3] = f32::NAN;
        flat.insert(Record::new(91_000, Embedding::new(nan_vals.clone())));
        ivf.insert(Record::new(91_000, Embedding::new(nan_vals)));
        flat.insert(Record::new(92_000, Embedding::zeros(dims)));
        ivf.insert(Record::new(92_000, Embedding::zeros(dims)));
        ivf.train(6);
        let mut flat_exact = flat.clone();
        flat_exact.set_quantization(false);
        let mut ivf_exact = ivf.clone();
        ivf_exact.set_quantization(false);
        let filter = Filter::none().must("label", "bug");
        let queries = [
            Embedding::new((0..dims).map(|_| rng.gen_range(-2.0f32..2.0)).collect()),
            Embedding::new(vec![0.25; dims]), // exactly a tied row
            Embedding::zeros(dims),           // degenerate query: quant disabled
            Embedding::new((0..dims).map(|d| if d == 0 { 1000.0 } else { 1e-5 }).collect()),
        ];
        for (qi, q) in queries.iter().enumerate() {
            for k in [1usize, 7, 40] {
                for threads in [1usize, 4] {
                    allhands_par::with_threads(threads, || {
                        assert_same_hits(
                            &flat_exact.search(q, k),
                            &flat.search(q, k),
                            &format!("flat q{qi} k{k} t{threads}"),
                        );
                        assert_same_hits(
                            &flat_exact.search_filtered(q, k, &filter),
                            &flat.search_filtered(q, k, &filter),
                            &format!("flat+filter q{qi} k{k} t{threads}"),
                        );
                        assert_same_hits(
                            &ivf_exact.search(q, k),
                            &ivf.search(q, k),
                            &format!("ivf q{qi} k{k} t{threads}"),
                        );
                    });
                }
            }
        }
    }

    /// Regression: a record exactly equidistant from two centroids must be
    /// stored in the same partition the probe ranking visits first.
    /// Before the `total_cmp` + index tie-break, `assign` used `min_by`
    /// (keeps the LAST of equal minima) while the probe used a stable sort
    /// (keeps the FIRST), so the record landed in one partition and
    /// `nprobe = 1` probed the other — an unreachable vector.
    #[test]
    fn equidistant_centroid_assignment_matches_probe_order() {
        let mut ivf = IvfIndex::new(2, 1);
        for i in 0..25u64 {
            ivf.insert(Record::new(i, vec2(1.0, 0.0)));
        }
        for i in 25..50u64 {
            ivf.insert(Record::new(i, vec2(-1.0, 0.0)));
        }
        ivf.train(2);
        assert_eq!(ivf.n_partitions(), 2);
        // (0, 1) is exactly sq_dist 2.0 from both centroids (1,0), (-1,0).
        ivf.insert(Record::new(100, vec2(0.0, 1.0)));
        let hits = ivf.search(&vec2(0.0, 1.0), 1);
        assert_eq!(hits[0].id, 100, "equidistant record probed in the wrong partition");
        assert!(hits[0].score > 0.99);
    }

    /// Bitwise hit comparison: `SearchResult` equality via `PartialEq`
    /// rejects NaN == NaN, which is exactly the case these fixtures pin.
    fn assert_same_hits(a: &[SearchResult], b: &[SearchResult], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: lengths differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id, "{ctx}");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{ctx} id {}", x.id);
        }
    }

    /// NaN-bearing vectors must not destabilize assignment or ranking:
    /// searches stay deterministic and keep matching the flat oracle.
    #[test]
    fn nan_vectors_keep_total_order_and_match_flat() {
        let mut flat = FlatIndex::new(2);
        // nprobe >= partition count: IVF probes everything, so any result
        // difference can only come from ordering, not from recall.
        let mut ivf = IvfIndex::new(2, 8);
        for i in 0..60u64 {
            let angle = i as f32 * 0.1;
            let v = vec2(angle.cos(), angle.sin());
            flat.insert(Record::new(i, v.clone()));
            ivf.insert(Record::new(i, v));
        }
        ivf.train(4);
        let poisoned = vec2(f32::NAN, 0.5);
        flat.insert(Record::new(500, poisoned.clone()));
        ivf.insert(Record::new(500, poisoned));
        assert!(ivf.get(500).is_some(), "NaN vector must still be stored and retrievable");
        for (qi, q) in [vec2(1.0, 0.2), vec2(-0.3, 0.9), vec2(f32::NAN, 1.0)].iter().enumerate() {
            let f = flat.search(q, 5);
            let v = ivf.search(q, 5);
            assert_same_hits(&f, &v, &format!("query {qi}"));
            // Total order ⇒ repeat searches are byte-identical.
            let again = ivf.search(q, 5);
            assert_same_hits(&v, &again, &format!("query {qi} repeat"));
        }
        // A NaN vector can survive a retrain: it sits out k-means and is
        // routed deterministically afterwards.
        ivf.train(4);
        assert!(ivf.get(500).is_some());
        assert_same_hits(&flat.search(&vec2(1.0, 0.2), 5), &ivf.search(&vec2(1.0, 0.2), 5), "post-retrain");
    }

    /// Regression for `IvfIndex::remove`: removing a non-tail record
    /// swap-removes the partition tail into its slot, and the moved
    /// record's `by_id` offset must follow it (the stale-offset case).
    #[test]
    fn ivf_remove_non_tail_fixes_moved_offset() {
        let mut ivf = IvfIndex::new(2, 1);
        // One partition (untrained): offsets are insertion order.
        for i in 0..5u64 {
            let angle = i as f32;
            ivf.insert(Record::new(i, vec2(angle.cos(), angle.sin())));
        }
        assert!(ivf.remove(1)); // tail record 4 swaps into offset 1
        assert!(!ivf.remove(1), "second remove of the same id must be a no-op");
        assert_eq!(ivf.len(), 4);
        assert!(ivf.get(1).is_none(), "removed record still resolvable");
        let moved = ivf.get(4).expect("moved tail record lost");
        assert_eq!(moved.id, 4);
        assert!((moved.vector.as_slice()[0] - (4.0f32).cos()).abs() < 1e-6);
        // And on a trained index, through the trait object.
        let mut trained = IvfIndex::new(2, 2);
        for i in 0..40u64 {
            let v = if i % 2 == 0 { vec2(1.0, i as f32 * 0.01) } else { vec2(-1.0, i as f32 * 0.01) };
            trained.insert(Record::new(i, v));
        }
        trained.train(2);
        let index: &mut dyn VectorIndex = &mut trained;
        assert!(index.remove(0));
        assert!(index.get(0).is_none());
        assert_eq!(index.len(), 39);
        for i in 1..40u64 {
            assert_eq!(index.get(i).expect("survivor lost").id, i);
        }
        assert!(index.search(&vec2(1.0, 0.0), 40).iter().all(|h| h.id != 0));
    }

    /// Upsert where the new vector stays in the *same* partition as the old
    /// one: `swap_remove` moves the partition tail into the vacated slot,
    /// then the re-insert appends — every offset in `by_id` must survive.
    #[test]
    fn ivf_upsert_same_partition_keeps_offsets_consistent() {
        let mut ivf = IvfIndex::new(2, 1);
        for i in 0..10u64 {
            ivf.insert(Record::new(i, vec2(1.0, i as f32 * 0.01)));
        }
        for i in 10..20u64 {
            ivf.insert(Record::new(i, vec2(-1.0, i as f32 * 0.01)));
        }
        ivf.train(2);
        // id 3 was not the tail of its partition; its replacement vector is
        // still nearest the (1, 0) centroid, so the round trip stays inside
        // one partition.
        ivf.insert(Record::new(3, vec2(0.9, 0.1)));
        assert_eq!(ivf.len(), 20);
        for i in 0..20u64 {
            let r = ivf.get(i).unwrap_or_else(|| panic!("id {i} lost after upsert"));
            assert_eq!(r.id, i, "by_id offset for id {i} points at the wrong record");
        }
        let hit = &ivf.search(&vec2(0.9, 0.1), 1)[0];
        assert_eq!(hit.id, 3);
        assert!(hit.score > 0.999);
    }

    /// Regression: `train` on too few records used to no-op and forget the
    /// request entirely, so an index "trained" on 3 records never
    /// partitioned no matter how many inserts followed. The request is now
    /// remembered and the staleness-ratio auto-retrain performs it.
    #[test]
    fn noop_train_arms_deferred_retraining() {
        let mut ivf = IvfIndex::new(2, 2);
        for i in 0..3u64 {
            ivf.insert(Record::new(i, vec2(i as f32, 1.0)));
        }
        ivf.train(8); // 3 < 8: partitioning no-ops, request remembered
        assert!(!ivf.is_trained());
        assert_eq!(ivf.n_partitions(), 1);
        assert_eq!(ivf.train_count(), 0);
        for i in 3..1003u64 {
            let angle = i as f32 * 0.006;
            ivf.insert(Record::new(i, vec2(angle.cos(), angle.sin())));
        }
        assert!(ivf.is_trained(), "insert flood never triggered the deferred training");
        assert_eq!(ivf.n_partitions(), 8);
        assert!(ivf.train_count() >= 1);
        // Every retrain resets the mutation counter, so the final staleness
        // sits below the trigger ratio.
        assert!(ivf.staleness() < IvfIndex::DEFAULT_RETRAIN_STALENESS);
    }

    /// `set_retrain_policy(None)` turns the automation off.
    #[test]
    fn retrain_policy_none_disables_auto_retraining() {
        let mut ivf = IvfIndex::new(2, 2);
        ivf.set_retrain_policy(None);
        for i in 0..3u64 {
            ivf.insert(Record::new(i, vec2(i as f32, 1.0)));
        }
        ivf.train(8);
        for i in 3..1003u64 {
            ivf.insert(Record::new(i, vec2((i as f32).cos(), (i as f32).sin())));
        }
        assert!(!ivf.is_trained());
        assert_eq!(ivf.train_count(), 0);
        assert!(ivf.staleness() > 0.9);
    }

    /// Acceptance fixture: a seeded (insert, upsert, remove) stream with
    /// auto-retrains firing along the way — plus NaN and exactly-tied
    /// vectors — must keep IVF search results identical to a FlatIndex
    /// oracle fed the same mutations (nprobe covers all partitions, so
    /// the comparison isolates ordering and bookkeeping, not recall).
    #[test]
    fn ivf_matches_flat_oracle_through_mutation_sequences() {
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let mut flat = FlatIndex::new(3);
        let mut ivf = IvfIndex::new(3, 64);
        let rand_vec = |rng: &mut rand_chacha::ChaCha8Rng| {
            Embedding::new((0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        };
        for i in 0..300u64 {
            let v = rand_vec(&mut rng);
            flat.insert(Record::new(i, v.clone()));
            ivf.insert(Record::new(i, v));
        }
        ivf.train(6);
        // Exactly-tied vectors (identical bytes, distinct ids) and a NaN
        // record ride along through the whole stream.
        for id in [800u64, 801, 802] {
            let v = Embedding::new(vec![0.5, -0.5, 0.5]);
            flat.insert(Record::new(id, v.clone()));
            ivf.insert(Record::new(id, v));
        }
        let nan = Embedding::new(vec![f32::NAN, 0.1, 0.2]);
        flat.insert(Record::new(900, nan.clone()));
        ivf.insert(Record::new(900, nan));
        let mut next_id = 301u64;
        let mut live: Vec<u64> = (0..300).chain([800, 801, 802, 900]).collect();
        for step in 0..600 {
            match rng.gen_range(0..3usize) {
                0 => {
                    let v = rand_vec(&mut rng);
                    flat.insert(Record::new(next_id, v.clone()));
                    ivf.insert(Record::new(next_id, v));
                    live.push(next_id);
                    next_id += 1;
                }
                1 => {
                    let id = live[rng.gen_range(0..live.len())];
                    let v = rand_vec(&mut rng);
                    flat.insert(Record::new(id, v.clone()));
                    ivf.insert(Record::new(id, v));
                }
                _ => {
                    let id = live.swap_remove(rng.gen_range(0..live.len()));
                    assert_eq!(flat.remove(id), ivf.remove(id), "step {step} id {id}");
                }
            }
            assert_eq!(flat.len(), ivf.len(), "step {step}");
            if step % 50 == 0 {
                let q = rand_vec(&mut rng);
                assert_same_hits(&flat.search(&q, 12), &ivf.search(&q, 12), &format!("step {step}"));
            }
        }
        assert!(ivf.train_count() >= 2, "mutation stream should have auto-retrained");
        for (qi, q) in [
            Embedding::new(vec![0.5, -0.5, 0.5]),
            Embedding::new(vec![f32::NAN, 0.0, 0.0]),
            rand_vec(&mut rng),
        ]
        .iter()
        .enumerate()
        {
            assert_same_hits(&flat.search(q, 20), &ivf.search(q, 20), &format!("final query {qi}"));
        }
    }
}
