//! Columnar (SoA) row storage backing the vector indexes.
//!
//! The original indexes stored `Vec<Record>` — every embedding its own
//! heap allocation, so a scan was pointer-chasing and branch-bound. The
//! [`RowPool`] packs all vectors into one contiguous `Vec<f32>` slab with
//! rows at a fixed [`ROW_ALIGN`]-float stride (rows start 64-byte aligned
//! relative to the slab base), with per-row norms precomputed by the same
//! kernel `Embedding::norm` uses, so a scan streams memory and skips the
//! two redundant norm computations the old per-row `cosine` paid.
//!
//! # Scalar quantization with exact rescore
//!
//! Rows are additionally stored as symmetric i8 codes (`code = round(v /
//! scale)`, `scale = max|v| / 127`). A quantized scan computes the cheap
//! integer dot per row, converts it into a **sound score interval**
//! `[lower, upper]` (quantization error + kernel rounding allowance, with
//! strict widening margins), keeps every row whose upper bound reaches the
//! k-th largest lower bound, and rescores those candidates with the exact
//! f32 kernel. The candidate set provably contains the true top-k, so the
//! final `top_k` output — ids, order, and score bits — is identical to the
//! pure-f32 scan. Rows that cannot be soundly quantized (non-finite
//! values, zero/subnormal scale) carry `scale = 0` and are scored exactly
//! during the bounding pass; a degenerate query (non-finite, zero norm)
//! disables quantization for the whole scan.
//!
//! Parallel scans shard the pool at a fixed [`PAR_SCAN_SHARD`] rows and
//! select candidates *per shard*, so results stay byte-identical at any
//! thread count (top-k over a disjoint union equals top-k of per-shard
//! top-ks under the `(score desc, id asc)` total order).

use std::collections::HashMap;

use allhands_embed::{dot_slices, norm_slice, Embedding};
use allhands_obs::Recorder;

use crate::{top_k, Filter, Record, SearchResult};

/// Row stride granularity in f32 lanes: 16 floats = 64 bytes, one cache
/// line, and a whole number of kernel lane-groups.
const ROW_ALIGN: usize = 16;

/// Code-row stride granularity in bytes; padding codes are zero and
/// contribute nothing to the integer dot, so the kernel can run over the
/// full padded stride with no remainder loop.
const CODE_ALIGN: usize = 16;

/// Pools below this row count skip quantization: the bounding pass only
/// pays off when the f32 scan it prunes is large.
pub const QUANT_MIN_ROWS: usize = 1024;

/// Minimum dimensionality for quantization; below this the integer path
/// saves too little per row to cover the bounding overhead.
pub const QUANT_MIN_DIMS: usize = 8;

/// Pools at or above this size are scanned in parallel shards.
pub(crate) const PAR_SCAN_THRESHOLD: usize = 4096;

/// Shard size for the parallel scan. Fixed (not derived from the thread
/// count) so shard-local top-k results — and therefore the merged result —
/// are identical at any thread count.
pub(crate) const PAR_SCAN_SHARD: usize = 2048;

/// Columnar storage for one pool of records (a flat index, or one IVF
/// partition). Slot order is insertion order and is load-bearing for the
/// callers' id → slot maps; `swap_remove` mirrors `Vec::swap_remove`.
#[derive(Debug, Clone)]
pub(crate) struct RowPool {
    dims: usize,
    /// f32 row stride (dims rounded up to [`ROW_ALIGN`]).
    stride: usize,
    /// i8 code-row stride (dims rounded up to [`CODE_ALIGN`]).
    qstride: usize,
    ids: Vec<u64>,
    metas: Vec<HashMap<String, String>>,
    /// Contiguous vector slab; row `s` occupies `data[s*stride..][..dims]`,
    /// padding lanes stay zero.
    data: Vec<f32>,
    /// Per-row Euclidean norm, bit-identical to `Embedding::norm`.
    norms: Vec<f32>,
    /// Per-row L1 norm (Σ|v|), used by the quantization error bound.
    l1: Vec<f32>,
    /// i8 codes; padding codes stay zero.
    codes: Vec<i8>,
    /// Per-row quantization scale; `0.0` marks an exact-only row
    /// (non-finite values, zero vector, or subnormal scale).
    scales: Vec<f32>,
}

/// Per-search quantized query state, built once and shared by all shards.
struct QuantQuery {
    /// Query codes padded to the pool's code stride.
    codes: Vec<i8>,
    scale: f64,
    l1: f64,
    maxabs: f64,
}

/// Per-search scan context.
struct QueryPrep {
    qnorm: f32,
    quant: Option<QuantQuery>,
}

impl RowPool {
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        RowPool {
            dims,
            stride: dims.div_ceil(ROW_ALIGN) * ROW_ALIGN,
            qstride: dims.div_ceil(CODE_ALIGN) * CODE_ALIGN,
            ids: Vec::new(),
            metas: Vec::new(),
            data: Vec::new(),
            norms: Vec::new(),
            l1: Vec::new(),
            codes: Vec::new(),
            scales: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn id(&self, slot: usize) -> u64 {
        self.ids[slot]
    }

    /// The stored vector of row `slot`, exactly `dims` long (padding
    /// excluded, so kernels see the same values `Embedding` holds).
    pub fn row(&self, slot: usize) -> &[f32] {
        &self.data[slot * self.stride..slot * self.stride + self.dims]
    }

    /// Reconstruct the owned record stored at `slot`.
    pub fn record(&self, slot: usize) -> Record {
        Record {
            id: self.ids[slot],
            vector: Embedding::new(self.row(slot).to_vec()),
            metadata: self.metas[slot].clone(),
        }
    }

    /// Append a record, returning its slot.
    pub fn push(&mut self, record: Record) -> usize {
        let slot = self.len();
        self.ids.push(0);
        self.metas.push(HashMap::new());
        self.data.resize((slot + 1) * self.stride, 0.0);
        self.norms.push(0.0);
        self.l1.push(0.0);
        self.codes.resize((slot + 1) * self.qstride, 0);
        self.scales.push(0.0);
        self.fill(slot, record);
        slot
    }

    /// Overwrite the record at an existing `slot` (upsert in place).
    pub fn fill(&mut self, slot: usize, record: Record) {
        let Record { id, vector, metadata } = record;
        let vals = vector.as_slice();
        assert_eq!(vals.len(), self.dims, "dimension mismatch");
        self.ids[slot] = id;
        self.metas[slot] = metadata;
        let base = slot * self.stride;
        self.data[base..base + self.dims].copy_from_slice(vals);
        self.norms[slot] = norm_slice(vals);
        let mut l1 = 0.0f32;
        let mut maxabs = 0.0f32;
        let mut finite = true;
        for &v in vals {
            if !v.is_finite() {
                finite = false;
            }
            l1 += v.abs();
            maxabs = maxabs.max(v.abs());
        }
        self.l1[slot] = l1;
        let scale = maxabs / 127.0;
        let qbase = slot * self.qstride;
        if finite && scale.is_normal() {
            self.scales[slot] = scale;
            for i in 0..self.dims {
                let c = (self.data[base + i] / scale).round().clamp(-127.0, 127.0);
                self.codes[qbase + i] = c as i8;
            }
            self.codes[qbase + self.dims..qbase + self.qstride].fill(0);
        } else {
            // Exact-only row: zero/subnormal scale or non-finite values.
            self.scales[slot] = 0.0;
            self.codes[qbase..qbase + self.qstride].fill(0);
        }
    }

    /// Remove row `slot`, moving the last row into its place. Returns the
    /// id of the moved row (for the caller's id → slot map), if any.
    pub fn swap_remove(&mut self, slot: usize) -> Option<u64> {
        let last = self.len() - 1;
        if slot != last {
            self.data.copy_within(last * self.stride..(last + 1) * self.stride, slot * self.stride);
            self.codes
                .copy_within(last * self.qstride..(last + 1) * self.qstride, slot * self.qstride);
        }
        self.data.truncate(last * self.stride);
        self.codes.truncate(last * self.qstride);
        self.ids.swap_remove(slot);
        self.metas.swap_remove(slot);
        self.norms.swap_remove(slot);
        self.l1.swap_remove(slot);
        self.scales.swap_remove(slot);
        if slot < self.len() {
            Some(self.ids[slot])
        } else {
            None
        }
    }

    /// Drain all rows into owned records (slot order), leaving the pool
    /// empty. Used by IVF retraining.
    pub fn take_records(&mut self) -> Vec<Record> {
        let out: Vec<Record> = (0..self.len()).map(|s| self.record(s)).collect();
        self.ids.clear();
        self.metas.clear();
        self.data.clear();
        self.norms.clear();
        self.l1.clear();
        self.codes.clear();
        self.scales.clear();
        out
    }

    /// Exact cosine of the query against row `slot`, bit-identical to
    /// `query.cosine(&record.vector)`: same dot kernel, same `query-norm ×
    /// row-norm` operand order, same epsilon guard and clamp.
    fn exact_score(&self, slot: usize, qvals: &[f32], qnorm: f32) -> f32 {
        let denom = qnorm * self.norms[slot];
        if denom <= f32::EPSILON {
            0.0
        } else {
            (dot_slices(qvals, self.row(slot)) / denom).clamp(-1.0, 1.0)
        }
    }

    /// Filter + score + top-k over the pool; quantized candidate selection
    /// when `quant` is set and the pool/query qualify, parallel shards for
    /// large pools. Output is byte-identical to a serial exact scan in
    /// every configuration.
    pub fn scan_top_k(
        &self,
        query: &Embedding,
        k: usize,
        filter: &Filter,
        quant: bool,
        rec: &Recorder,
    ) -> Vec<SearchResult> {
        let qvals = query.as_slice();
        assert_eq!(qvals.len(), self.dims, "dimension mismatch");
        let qnorm = norm_slice(qvals);
        let quant_query = if quant
            && self.len() >= QUANT_MIN_ROWS
            && self.dims >= QUANT_MIN_DIMS
            && qnorm.is_finite()
            && qnorm > f32::EPSILON
            && qvals.iter().all(|v| v.is_finite())
        {
            let mut maxabs = 0.0f32;
            let mut l1 = 0.0f64;
            for &v in qvals {
                maxabs = maxabs.max(v.abs());
                l1 += v.abs() as f64;
            }
            let scale = maxabs / 127.0;
            if scale.is_normal() {
                let mut codes = vec![0i8; self.qstride];
                for (i, &v) in qvals.iter().enumerate() {
                    codes[i] = (v / scale).round().clamp(-127.0, 127.0) as i8;
                }
                Some(QuantQuery { codes, scale: scale as f64, l1, maxabs: maxabs as f64 })
            } else {
                None
            }
        } else {
            None
        };
        if quant_query.is_some() {
            rec.vincr("vectordb.quant.scans");
        }
        let prep = QueryPrep { qnorm, quant: quant_query };
        let n = self.len();
        if n < PAR_SCAN_THRESHOLD || allhands_par::max_threads() == 1 {
            return self.scan_range(0, n, qvals, &prep, k, filter, rec);
        }
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(PAR_SCAN_SHARD)
            .map(|s| (s, (s + PAR_SCAN_SHARD).min(n)))
            .collect();
        let partials = allhands_par::par_map_indexed(&ranges, |_, &(start, end)| {
            self.scan_range(start, end, qvals, &prep, k, filter, rec)
        });
        top_k(partials.into_iter().flatten().collect(), k)
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_range(
        &self,
        start: usize,
        end: usize,
        qvals: &[f32],
        prep: &QueryPrep,
        k: usize,
        filter: &Filter,
        rec: &Recorder,
    ) -> Vec<SearchResult> {
        match &prep.quant {
            Some(q) => self.scan_range_quant(start, end, qvals, prep.qnorm, q, k, filter, rec),
            None => {
                let mut candidates = Vec::with_capacity(end - start);
                for slot in start..end {
                    if !filter.matches_meta(&self.metas[slot]) {
                        continue;
                    }
                    candidates.push(SearchResult {
                        id: self.ids[slot],
                        score: self.exact_score(slot, qvals, prep.qnorm),
                    });
                }
                top_k(candidates, k)
            }
        }
    }

    /// Quantized shard scan: bound every row's score, keep rows whose
    /// upper bound reaches the k-th largest lower bound, rescore exactly.
    /// See the soundness argument in the module docs.
    #[allow(clippy::too_many_arguments)]
    fn scan_range_quant(
        &self,
        start: usize,
        end: usize,
        qvals: &[f32],
        qnorm: f32,
        q: &QuantQuery,
        k: usize,
        filter: &Filter,
        rec: &Recorder,
    ) -> Vec<SearchResult> {
        if k == 0 {
            return Vec::new();
        }
        let n_f64 = self.dims as f64;
        // (slot, lower, upper); exact-only rows carry lower == upper ==
        // their exact score (NaN scores included — `total_cmp` gives NaN a
        // fixed rank, matching the final heap order).
        let mut bounds: Vec<(usize, f32, f32)> = Vec::with_capacity(end - start);
        for slot in start..end {
            if !filter.matches_meta(&self.metas[slot]) {
                continue;
            }
            let denom = qnorm * self.norms[slot];
            if denom <= f32::EPSILON {
                // Exact score is 0.0 by the cosine epsilon guard.
                bounds.push((slot, 0.0, 0.0));
                continue;
            }
            let rs = self.scales[slot] as f64;
            if rs == 0.0 {
                let s = self.exact_score(slot, qvals, qnorm);
                bounds.push((slot, s, s));
                continue;
            }
            let qbase = slot * self.qstride;
            let d = dot_i8(&q.codes, &self.codes[qbase..qbase + self.qstride]) as f64;
            let approx = q.scale * rs * d;
            let r_l1 = self.l1[slot] as f64;
            // |v - v̂| ≤ scale/2 per coordinate, so
            // |dot - approx| ≤ rs/2·Σ|q| + qs/2·Σ|v| + n·qs·rs/4,
            // plus an allowance for the f32 kernel's own rounding
            // (≤ 2n·ε·max|q|·Σ|v| is a generous cover for lane-chunked
            // accumulation at these dims).
            let quant_err = 0.5 * (rs * q.l1 + q.scale * r_l1) + 0.25 * n_f64 * q.scale * rs;
            let round_err = 2.0 * n_f64 * (f32::EPSILON as f64) * q.maxabs * r_l1;
            let denom = denom as f64;
            let mid = approx / denom;
            // Relative fudge + absolute slack: covers the bound's own f64
            // rounding, the f64→f32 cast, the f32 division in the exact
            // path, and the ±0.0 total_cmp edge (strictly widened bounds
            // order correctly under total_cmp).
            let e = ((quant_err + round_err) / denom) * 1.0001 + 1e-6;
            let lower = ((mid - e) as f32).clamp(-1.0, 1.0);
            let upper = ((mid + e) as f32).clamp(-1.0, 1.0);
            bounds.push((slot, lower, upper));
        }
        let mut candidates = Vec::new();
        if bounds.len() <= k {
            for &(slot, _, _) in &bounds {
                candidates.push(SearchResult {
                    id: self.ids[slot],
                    score: self.exact_score(slot, qvals, qnorm),
                });
            }
        } else {
            let mut lowers: Vec<f32> = bounds.iter().map(|b| b.1).collect();
            let (_, kth, _) = lowers.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
            let cut = *kth;
            for &(slot, _, upper) in &bounds {
                if upper.total_cmp(&cut) != std::cmp::Ordering::Less {
                    candidates.push(SearchResult {
                        id: self.ids[slot],
                        score: self.exact_score(slot, qvals, qnorm),
                    });
                }
            }
        }
        rec.vobserve("vectordb.quant.rescored", candidates.len() as u64);
        top_k(candidates, k)
    }
}

/// Integer dot product over i8 codes with i32 lane accumulators
/// (auto-vectorizable; exact, so accumulation order is irrelevant).
/// Maximum magnitude per term is 127² = 16129, so overflow needs
/// > 133k dims — far beyond any embedding here.
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    const LANES: usize = 16;
    let mut acc = [0i32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] as i32 * xb[l] as i32;
        }
    }
    let mut total: i32 = acc.iter().sum();
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        total += *x as i32 * *y as i32;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_i8_matches_scalar() {
        let a: Vec<i8> = (0..37).map(|i| ((i * 7) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..37).map(|i| ((i * 13) % 255 - 127) as i8).collect();
        let scalar: i32 = a.iter().zip(&b).map(|(x, y)| *x as i32 * *y as i32).sum();
        assert_eq!(dot_i8(&a, &b), scalar);
    }

    #[test]
    fn pool_roundtrip_and_swap_remove() {
        let mut pool = RowPool::new(3);
        for i in 0..5u64 {
            pool.push(
                Record::new(i, Embedding::new(vec![i as f32, 1.0, -0.5]))
                    .with_meta("k", &i.to_string()),
            );
        }
        assert_eq!(pool.len(), 5);
        let r2 = pool.record(2);
        assert_eq!(r2.id, 2);
        assert_eq!(r2.vector.as_slice(), &[2.0, 1.0, -0.5]);
        assert_eq!(r2.metadata.get("k").map(String::as_str), Some("2"));
        // Norm is bit-identical to Embedding::norm.
        assert_eq!(pool.norms[2].to_bits(), r2.vector.norm().to_bits());
        // swap_remove moves the tail into the hole and reports its id.
        assert_eq!(pool.swap_remove(1), Some(4));
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.id(1), 4);
        assert_eq!(pool.record(1).vector.as_slice(), &[4.0, 1.0, -0.5]);
        // Removing the tail reports no move.
        assert_eq!(pool.swap_remove(3), None);
    }

    #[test]
    fn non_finite_rows_are_exact_only() {
        let mut pool = RowPool::new(3);
        pool.push(Record::new(0, Embedding::new(vec![f32::NAN, 1.0, 0.0])));
        pool.push(Record::new(1, Embedding::new(vec![0.0, 0.0, 0.0])));
        pool.push(Record::new(2, Embedding::new(vec![0.5, -0.5, 0.5])));
        assert_eq!(pool.scales[0], 0.0);
        assert_eq!(pool.scales[1], 0.0);
        assert!(pool.scales[2] > 0.0);
    }
}
