//! Property harness for the executor's errors-as-values invariant: ANY
//! input pushed through lex → parse → interpret must come back as a
//! `CellResult` (possibly with `error` set) — never a panic. The agent's
//! self-reflection loop depends on this: a panicking executor would take
//! the whole QA turn down instead of feeding the error back into code
//! regeneration.
//!
//! Two generators (raw printable strings and AQL token soup) plus a pinned
//! set of regression fixtures — inputs that exercise historically panicky
//! seams (mismatched figure series, deep nesting, row blow-ups, budget
//! exhaustion) and keep doing so even if the generators drift.

use allhands_dataframe::{Column, DataFrame};
use allhands_query::{Session, SessionLimits};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn tiny_frame() -> DataFrame {
    DataFrame::new(vec![
        Column::from_strs("text", &["app crashes daily", "love the update", "slow sync"]),
        Column::from_strs("product", &["mail", "mail", "drive"]),
        Column::from_f64s("sentiment", &[-0.8, 0.9, -0.2]),
        Column::from_i64s("id", &[0, 1, 2]),
    ])
    .unwrap()
}

fn fuzz_limits() -> SessionLimits {
    SessionLimits {
        step_budget: 20_000,
        max_rows: 5_000,
        max_cell_duration: Some(std::time::Duration::from_secs(2)),
    }
}

/// Execute `source` in a fresh session under `catch_unwind`. Returns the
/// cell's error value; a panic fails the property with the payload.
fn assert_errors_as_values(source: &str) -> Option<String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut session = Session::new(fuzz_limits());
        session.bind_frame("feedback", tiny_frame());
        session.execute(source).error
    }));
    match result {
        Ok(error) => error,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("executor panicked on input {source:?}: {msg}");
        }
    }
}

/// AQL vocabulary for token-soup generation: keywords, operators,
/// identifiers (bound and unbound), literals, and plugin calls, combined
/// in arbitrary (mostly ill-formed) orders.
const VOCAB: &[&str] = &[
    "let", "show", "log", "feedback", "x", "nope", "=", ";", ".", ",", "(", ")", "[", "]",
    "+", "-", "*", "/", "==", "!=", "<", ">", "&&", "||", "!", "\"mail\"", "\"\"", "\"🙂\"",
    "0", "1", "-3", "2.5", "1e308", "true", "false", "filter", "derive", "group_by", "sort",
    "join", "head", "contains", "count", "mean", "sum", "\"text\"", "\"sentiment\"",
    "\"product\"", "\"inner\"", "bar_chart", "pie_chart", "histogram", "word_cloud",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn raw_strings_never_panic(source in "[ -~]{0,80}") {
        // Whatever comes back — parse error, runtime error, or success —
        // must be a value.
        let _ = assert_errors_as_values(&source);
    }

    #[test]
    fn token_soup_never_panics(
        picks in prop::collection::vec(0usize..VOCAB.len(), 0..40),
    ) {
        let source: String =
            picks.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        let _ = assert_errors_as_values(&source);
    }

    #[test]
    fn non_ascii_streams_never_panic(source in "\\PC{0,60}") {
        let _ = assert_errors_as_values(&source);
    }
}

/// Pinned inputs from fuzzing sessions and known-fixed panics. Each is a
/// seed the generators may or may not rediscover; keeping them explicit
/// makes the regression permanent.
#[test]
fn regression_fixtures_never_panic() {
    const FIXTURES: &[&str] = &[
        // Mismatched figure series length: was a panic in FigureSpec::new,
        // now a typed QueryError surfaced through the plugin `?`.
        r#"let g = feedback.group_by("product", count()); show(bar_chart(g, "product", "missing", "t"))"#,
        // Row blow-up: self-join must hit max_rows as an error.
        r#"let j = feedback.join(feedback, "product", "inner"); let jj = j.join(j, "product", "inner"); show(jj)"#,
        // Step-budget exhaustion inside a frame op chain.
        r#"let s = feedback.sort("sentiment").sort("text").sort("product").sort("id"); show(s)"#,
        // Unterminated string literal.
        r#"show("abc"#,
        // Keyword in binding position.
        "let let = 1;",
        // Deep parenthesis nesting.
        "show(((((((((((((((((1)))))))))))))))))",
        // Number-literal edge cases.
        "show(999999999999999999999999999); show(1e309); show(0.0/0.0)",
        // Unknown columns and bindings.
        r#"show(feedback.sort("nope")); show(ghost.filter(contains(text, "x")))"#,
        // Empty-ish cells.
        "", ";", ";;;", "   ", "()",
        // Unicode soup with an emoji identifier.
        "let 🙂 = 1; show(🙂 + \"ß\")",
    ];
    for src in FIXTURES {
        let _ = assert_errors_as_values(src);
    }
}
