//! Vectorized (column-batch) evaluation of lowered plan expressions.
//!
//! The contract with the row-wise interpreter is strict value identity on
//! the masked row set: for every row the row-wise engine would evaluate,
//! the batch result holds exactly the `Value` the row-wise engine would
//! produce, and the batch evaluation errors if and only if the row-wise
//! engine would error on at least one of those rows (not necessarily with
//! the same message or at the same row — the caller falls back to the
//! row-wise engine on any error, which then produces the authoritative
//! error). Rows outside the mask — short-circuited `&&`/`||` branches and
//! taken `coalesce` slots — are never evaluated, mirroring the per-row
//! short-circuiting of the tree walker.
//!
//! Typed fast paths cover the comparisons and arithmetic that dominate
//! generated programs (numeric column vs literal, string equality,
//! `contains` over a string column); everything else runs a per-masked-row
//! loop over the same scalar kernels ([`crate::rowfns`], `binary_op`) the
//! row-wise engine uses, so the semantics are shared by construction.

use crate::ast::{BinOp, UnOp};
use crate::error::QueryError;
use crate::interp::{binary_op, column_from_values, number_value, truthy, RtValue};
use crate::plan::VExpr;
use crate::rowfns;
use allhands_dataframe::{Column, ColumnData, DataFrame, Value};
use std::collections::HashMap;

/// A batch of per-row values for one expression node.
pub(crate) enum Batch<'a> {
    /// A column borrowed from the input frame.
    Col(&'a Column),
    /// A freshly computed typed column.
    Owned(ColumnData),
    /// The same scalar for every row.
    Const(Value),
    /// The same list for every row (list literals / list bindings).
    ConstList(Vec<Value>),
    /// Per-row values; slots outside the evaluation mask hold `Null` and
    /// are never read.
    Mixed(Vec<Value>),
}

impl Batch<'_> {
    /// The scalar at row `i`. Lists are not scalars — the row-wise engine
    /// rejects them with `into_scalar`, so batch evaluation refuses too
    /// (the fallback then reproduces the row-wise error).
    fn scalar_at(&self, i: usize) -> Result<Value, QueryError> {
        match self {
            Batch::Col(c) => Ok(c.get(i)),
            Batch::Owned(d) => Ok(d.get(i)),
            Batch::Const(v) => Ok(v.clone()),
            Batch::Mixed(vs) => Ok(vs[i].clone()),
            Batch::ConstList(_) => {
                Err(QueryError::runtime("expected a scalar, got list"))
            }
        }
    }
}

/// Evaluate `pred` over every row of `frame` and reduce to a truthiness
/// mask (the vectorized `filter`).
pub(crate) fn filter_mask(
    frame: &DataFrame,
    pred: &VExpr,
    bindings: &HashMap<String, RtValue>,
) -> Result<Vec<bool>, QueryError> {
    let mask = vec![true; frame.n_rows()];
    let batch = eval_batch(frame, pred, bindings, &mask)?;
    truthy_vec(&batch, &mask)
}

/// Evaluate `expr` over every row and materialize it as a column named
/// `name` (the vectorized `derive`).
pub(crate) fn derive_column(
    frame: &DataFrame,
    name: &str,
    expr: &VExpr,
    bindings: &HashMap<String, RtValue>,
) -> Result<Column, QueryError> {
    let mask = vec![true; frame.n_rows()];
    let batch = eval_batch(frame, expr, bindings, &mask)?;
    column_from_batch(name, &batch, frame.n_rows())
}

/// Materialize a batch as a typed column, reproducing the row-wise
/// `column_from_values` dtype inference. Typed batches shortcut the
/// inference — except when every value is null, where `column_from_values`
/// falls back to a Str column regardless of the source dtype, and the
/// shortcut would diverge.
fn column_from_batch(
    name: &str,
    batch: &Batch,
    n_rows: usize,
) -> Result<Column, QueryError> {
    let from_data = |data: &ColumnData| -> Result<Column, QueryError> {
        if (0..n_rows).all(|i| data.get(i).is_null()) {
            column_from_values(name, vec![Value::Null; n_rows])
        } else {
            Ok(Column::new(name, data.clone()))
        }
    };
    match batch {
        Batch::Col(c) => from_data(c.data()),
        Batch::Owned(d) => from_data(d),
        Batch::Const(v) => column_from_values(name, vec![v.clone(); n_rows]),
        Batch::Mixed(vs) => column_from_values(name, vs.clone()),
        Batch::ConstList(_) => {
            Err(QueryError::runtime("expected a scalar, got list"))
        }
    }
}

/// Truthiness of every masked row (unmasked slots are `false`).
fn truthy_vec(batch: &Batch, mask: &[bool]) -> Result<Vec<bool>, QueryError> {
    let n = mask.len();
    let mut out = vec![false; n];
    match batch {
        Batch::Col(c) => truthy_data(c.data(), mask, &mut out),
        Batch::Owned(d) => truthy_data(d, mask, &mut out),
        Batch::Const(v) => {
            let t = truthy(v);
            for i in 0..n {
                out[i] = mask[i] && t;
            }
        }
        Batch::Mixed(vs) => {
            for i in 0..n {
                if mask[i] {
                    out[i] = truthy(&vs[i]);
                }
            }
        }
        Batch::ConstList(_) => {
            return Err(QueryError::runtime("expected a scalar, got list"))
        }
    }
    Ok(out)
}

fn truthy_data(data: &ColumnData, mask: &[bool], out: &mut [bool]) {
    macro_rules! fill {
        ($vals:expr, $pred:expr) => {
            for (i, v) in $vals.iter().enumerate() {
                if mask[i] {
                    out[i] = v.as_ref().is_some_and($pred);
                }
            }
        };
    }
    match data {
        ColumnData::Int(v) => fill!(v, |x| *x != 0),
        ColumnData::Float(v) => fill!(v, |x| *x != 0.0),
        ColumnData::Str(v) => fill!(v, |s| !s.is_empty()),
        ColumnData::Bool(v) => fill!(v, |b| *b),
        ColumnData::DateTime(v) => fill!(v, |_| true),
        ColumnData::StrList(v) => fill!(v, |l| !l.is_empty()),
    }
}

/// Evaluate a lowered expression over the masked rows of `frame`.
fn eval_batch<'a>(
    frame: &'a DataFrame,
    expr: &VExpr,
    bindings: &HashMap<String, RtValue>,
    mask: &[bool],
) -> Result<Batch<'a>, QueryError> {
    match expr {
        VExpr::Lit(v) => Ok(Batch::Const(v.clone())),
        VExpr::Ident(name) => {
            // Same resolution order as the row-wise engine: column of the
            // current frame first, session binding second.
            if frame.has_column(name) {
                return Ok(Batch::Col(frame.column(name)?));
            }
            match bindings.get(name) {
                Some(RtValue::Scalar(v)) => Ok(Batch::Const(v.clone())),
                Some(RtValue::List(items)) => Ok(Batch::ConstList(items.clone())),
                // Frames/figures in scalar position error row-wise; unknown
                // names error row-wise. Fall back for the exact message.
                _ => Err(QueryError::runtime(format!("unknown name '{name}'"))),
            }
        }
        VExpr::List(items) => {
            // Only constant lists vectorize; a list item that varies per
            // row (references a column) falls back to the row-wise engine.
            let mut values = Vec::with_capacity(items.len());
            for item in items {
                match eval_batch(frame, item, bindings, mask)? {
                    Batch::Const(v) => values.push(v),
                    _ => {
                        return Err(QueryError::runtime(
                            "non-constant list in vectorized context",
                        ))
                    }
                }
            }
            Ok(Batch::ConstList(values))
        }
        VExpr::Unary { op, expr } => {
            let inner = eval_batch(frame, expr, bindings, mask)?;
            match op {
                UnOp::Not => {
                    let t = truthy_vec(&inner, mask)?;
                    let data = ColumnData::Bool(
                        mask.iter()
                            .zip(&t)
                            .map(|(m, t)| m.then_some(!t))
                            .collect(),
                    );
                    Ok(Batch::Owned(data))
                }
                UnOp::Neg => map_masked(&inner, mask, |v| match v.as_f64() {
                    Some(f) => Ok(number_value(-f)),
                    None => {
                        Err(QueryError::runtime(format!("cannot negate {v:?}")))
                    }
                }),
            }
        }
        VExpr::Binary { op, lhs, rhs } => match op {
            BinOp::And | BinOp::Or => {
                let l = eval_batch(frame, lhs, bindings, mask)?;
                let lt = truthy_vec(&l, mask)?;
                // Mirror the per-row short circuit: `&&` evaluates the rhs
                // only where the lhs is truthy, `||` only where it is falsy.
                let sub: Vec<bool> = mask
                    .iter()
                    .zip(&lt)
                    .map(|(m, t)| *m && (*t == (*op == BinOp::And)))
                    .collect();
                let mut out: Vec<Option<bool>> = mask
                    .iter()
                    .zip(&lt)
                    .map(|(m, t)| m.then_some(*t))
                    .collect();
                if sub.iter().any(|&b| b) {
                    let r = eval_batch(frame, rhs, bindings, &sub)?;
                    let rt = truthy_vec(&r, &sub)?;
                    for i in 0..mask.len() {
                        if sub[i] {
                            out[i] = Some(rt[i]);
                        }
                    }
                }
                Ok(Batch::Owned(ColumnData::Bool(out)))
            }
            _ => {
                let l = eval_batch(frame, lhs, bindings, mask)?;
                let r = eval_batch(frame, rhs, bindings, mask)?;
                binary_batch(*op, &l, &r, mask)
            }
        },
        VExpr::Call { name, args, .. } => {
            call_batch(frame, name, args, bindings, mask)
        }
    }
}

/// Apply a non-logical binary operator across two batches.
fn binary_batch<'a>(
    op: BinOp,
    l: &Batch,
    r: &Batch,
    mask: &[bool],
) -> Result<Batch<'a>, QueryError> {
    if let (Batch::Const(a), Batch::Const(b)) = (l, r) {
        return Ok(Batch::Const(binary_op(op, a, b)?));
    }
    if let Some(batch) = typed_binary(op, l, r, mask)? {
        return Ok(batch);
    }
    // Generic path: the row-wise scalar kernel per masked row.
    let mut out = vec![Value::Null; mask.len()];
    for (i, slot) in out.iter_mut().enumerate() {
        if mask[i] {
            *slot = binary_op(op, &l.scalar_at(i)?, &r.scalar_at(i)?)?;
        }
    }
    Ok(Batch::Mixed(out))
}

/// Typed fast paths for comparisons and arithmetic. Returns `Ok(None)`
/// when no fast path applies (the generic per-row loop then runs).
///
/// The numeric path accepts any mix of Int/Float columns, owned batches,
/// and constants on either side, and reproduces `binary_op` exactly:
/// Int/Int compares at i64 and does checked arithmetic (an overflow on any
/// masked row abandons the whole batch to the generic loop, which spills
/// that row to f64 like the scalar kernel); any Float operand switches the
/// pair to the same lossy `as f64` cast `total_cmp`/`arith` use. Null
/// semantics follow `binary_op`: ordered comparisons are false when either
/// side is null, `==` is `loose_eq` (so null == null is TRUE), and
/// arithmetic propagates null. Str/DateTime columns get comparison-only
/// paths against a constant.
fn typed_binary<'a>(
    op: BinOp,
    l: &Batch,
    r: &Batch,
    mask: &[bool],
) -> Result<Option<Batch<'a>>, QueryError> {
    use std::cmp::Ordering;
    let is_cmp = matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
    );
    let cmp_out = |ords: Vec<Option<Ordering>>| -> Batch<'a> {
        // Null comparisons: `<`/`>`/`<=`/`>=` are false; `==` is false and
        // `!=` true (a null never loose_eq's a non-null constant).
        let vals = ords
            .into_iter()
            .enumerate()
            .map(|(i, ord)| {
                mask[i].then(|| match (ord, op) {
                    (None, BinOp::Ne) => true,
                    (None, _) => false,
                    (Some(o), BinOp::Eq) => o == Ordering::Equal,
                    (Some(o), BinOp::Ne) => o != Ordering::Equal,
                    (Some(o), BinOp::Lt) => o == Ordering::Less,
                    (Some(o), BinOp::Gt) => o == Ordering::Greater,
                    (Some(o), BinOp::Le) => o != Ordering::Greater,
                    (Some(o), _) => o != Ordering::Less,
                })
            })
            .collect();
        Batch::Owned(ColumnData::Bool(vals))
    };

    // General numeric path: both sides viewable as Int/Float columns or
    // constants.
    if let (Some(ls), Some(rs)) = (NumSide::of(l), NumSide::of(r)) {
        if is_cmp {
            let vals = (0..mask.len())
                .map(|i| {
                    mask[i].then(|| {
                        match (ls.get(i), rs.get(i)) {
                            // loose_eq: null == null is Equal — but the
                            // ordered ops null-check BEFORE total_cmp, so
                            // even `<=` is false on a null pair.
                            (None, None) => op == BinOp::Eq,
                            (None, _) | (_, None) => op == BinOp::Ne,
                            (Some(a), Some(b)) => {
                                let o = match (a, b) {
                                    (Num::I(a), Num::I(b)) => a.cmp(&b),
                                    (a, b) => a.as_f64().total_cmp(&b.as_f64()),
                                };
                                match op {
                                    BinOp::Eq => o == Ordering::Equal,
                                    BinOp::Ne => o != Ordering::Equal,
                                    BinOp::Lt => o == Ordering::Less,
                                    BinOp::Gt => o == Ordering::Greater,
                                    BinOp::Le => o != Ordering::Greater,
                                    _ => o != Ordering::Less,
                                }
                            }
                        }
                    })
                })
                .collect();
            return Ok(Some(Batch::Owned(ColumnData::Bool(vals))));
        }
        if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) {
            if ls.is_int() && rs.is_int() {
                // Checked i64 arithmetic; one masked overflow spills that
                // row (and only that row) to f64, exactly like the scalar
                // kernel — so overflow abandons the typed batch for the
                // generic loop.
                let mut vals = Vec::with_capacity(mask.len());
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        vals.push(None);
                        continue;
                    }
                    match (ls.get(i), rs.get(i)) {
                        (Some(Num::I(a)), Some(Num::I(b))) => {
                            let v = match op {
                                BinOp::Add => a.checked_add(b),
                                BinOp::Sub => a.checked_sub(b),
                                _ => a.checked_mul(b),
                            };
                            match v {
                                Some(v) => vals.push(Some(v)),
                                None => return Ok(None),
                            }
                        }
                        _ => vals.push(None),
                    }
                }
                return Ok(Some(Batch::Owned(ColumnData::Int(vals))));
            }
            let vals = (0..mask.len())
                .map(|i| {
                    if !mask[i] {
                        return None;
                    }
                    match (ls.get(i), rs.get(i)) {
                        (Some(a), Some(b)) => {
                            let (a, b) = (a.as_f64(), b.as_f64());
                            Some(match op {
                                BinOp::Add => a + b,
                                BinOp::Sub => a - b,
                                _ => a * b,
                            })
                        }
                        _ => None,
                    }
                })
                .collect();
            return Ok(Some(Batch::Owned(ColumnData::Float(vals))));
        }
        if op == BinOp::Div {
            // Only a nonzero constant denominator: a zero (error) or null
            // (null result) in a denominator column is the generic loop's
            // business.
            let kf = match rs {
                NumSide::IntK(k) => k as f64,
                NumSide::FloatK(k) => k,
                _ => return Ok(None),
            };
            if kf == 0.0 {
                return Ok(None);
            }
            let vals = (0..mask.len())
                .map(|i| {
                    if !mask[i] {
                        return None;
                    }
                    ls.get(i).map(|a| a.as_f64() / kf)
                })
                .collect();
            return Ok(Some(Batch::Owned(ColumnData::Float(vals))));
        }
        return Ok(None);
    }

    // Str/DateTime comparisons against a constant.
    let (data, konst) = match (l, r) {
        (Batch::Col(c), Batch::Const(v)) => (c.data(), v),
        (Batch::Owned(d), Batch::Const(v)) => (d, v),
        _ => return Ok(None),
    };
    Ok(match (data, konst) {
        (ColumnData::Str(xs), Value::Str(k)) if is_cmp => Some(cmp_out(
            xs.iter().map(|x| x.as_ref().map(|x| x.as_str().cmp(k.as_str()))).collect(),
        )),
        (ColumnData::DateTime(xs), Value::DateTime(k)) if is_cmp => {
            Some(cmp_out(xs.iter().map(|x| x.map(|x| x.cmp(k))).collect()))
        }
        _ => None,
    })
}

/// One scalar of a numeric operand: i64 or f64, matching the `Value`
/// variant it came from so Int/Int pairs keep exact i64 semantics.
#[derive(Clone, Copy)]
enum Num {
    I(i64),
    F(f64),
}

impl Num {
    fn as_f64(self) -> f64 {
        match self {
            Num::I(v) => v as f64,
            Num::F(v) => v,
        }
    }
}

/// A numeric operand of a binary batch op: an Int/Float column (borrowed
/// or owned) or an Int/Float constant broadcast to every row.
enum NumSide<'b> {
    Ints(&'b [Option<i64>]),
    Floats(&'b [Option<f64>]),
    IntK(i64),
    FloatK(f64),
}

impl<'b> NumSide<'b> {
    fn of(b: &'b Batch) -> Option<NumSide<'b>> {
        match b {
            Batch::Col(c) => match c.data() {
                ColumnData::Int(xs) => Some(NumSide::Ints(xs)),
                ColumnData::Float(xs) => Some(NumSide::Floats(xs)),
                _ => None,
            },
            Batch::Owned(ColumnData::Int(xs)) => Some(NumSide::Ints(xs)),
            Batch::Owned(ColumnData::Float(xs)) => Some(NumSide::Floats(xs)),
            Batch::Const(Value::Int(k)) => Some(NumSide::IntK(*k)),
            Batch::Const(Value::Float(k)) => Some(NumSide::FloatK(*k)),
            _ => None,
        }
    }

    fn is_int(&self) -> bool {
        matches!(self, NumSide::Ints(_) | NumSide::IntK(_))
    }

    fn get(&self, i: usize) -> Option<Num> {
        match self {
            NumSide::Ints(xs) => xs[i].map(Num::I),
            NumSide::Floats(xs) => xs[i].map(Num::F),
            NumSide::IntK(k) => Some(Num::I(*k)),
            NumSide::FloatK(k) => Some(Num::F(*k)),
        }
    }
}

/// Dispatch a whitelisted row function across a batch.
fn call_batch<'a>(
    frame: &'a DataFrame,
    name: &str,
    args: &[VExpr],
    bindings: &HashMap<String, RtValue>,
    mask: &[bool],
) -> Result<Batch<'a>, QueryError> {
    // `coalesce` short-circuits per row: the fallback expression is only
    // evaluated where the first argument is null.
    if name == "coalesce" {
        let first = eval_batch(frame, &args[0], bindings, mask)?;
        let mut out = vec![Value::Null; mask.len()];
        let mut sub = vec![false; mask.len()];
        let mut any = false;
        for i in 0..mask.len() {
            if mask[i] {
                let v = first.scalar_at(i)?;
                if v.is_null() {
                    sub[i] = true;
                    any = true;
                } else {
                    out[i] = v;
                }
            }
        }
        if any {
            let second = eval_batch(frame, &args[1], bindings, &sub)?;
            for (i, slot) in out.iter_mut().enumerate() {
                if sub[i] {
                    *slot = second.scalar_at(i)?;
                }
            }
        }
        return Ok(Batch::Mixed(out));
    }

    let arg0 = eval_batch(frame, &args[0], bindings, mask)?;
    match name {
        "contains" | "starts_with" | "has_topic" => {
            let arg1 = eval_batch(frame, &args[1], bindings, mask)?;
            // Fast path: string column scanned for a constant needle, with
            // the needle lowercased once instead of per row.
            if name == "contains" {
                if let (Batch::Col(c), Batch::Const(Value::Str(needle))) =
                    (&arg0, &arg1)
                {
                    if let ColumnData::Str(xs) = c.data() {
                        let needle = needle.to_lowercase();
                        return Ok(Batch::Owned(ColumnData::Bool(
                            xs.iter()
                                .enumerate()
                                .map(|(i, x)| {
                                    mask[i].then(|| {
                                        x.as_ref().is_some_and(|s| {
                                            s.to_lowercase().contains(&needle)
                                        })
                                    })
                                })
                                .collect(),
                        )));
                    }
                }
            }
            map_masked2(&arg0, &arg1, mask, |a, b| match name {
                "contains" => rowfns::contains(a, b),
                "starts_with" => Ok(rowfns::starts_with(a, b)),
                _ => rowfns::has_topic(a, b),
            })
        }
        "lower" => map_masked(&arg0, mask, |v| Ok(rowfns::lower(v.clone()))),
        "upper" => map_masked(&arg0, mask, |v| Ok(rowfns::upper(v.clone()))),
        "length" => match &arg0 {
            // `length` of a bound list is a constant; frames don't reach
            // here (a frame-valued binding refuses to batch).
            Batch::ConstList(items) => {
                Ok(Batch::Const(Value::Int(items.len() as i64)))
            }
            _ => map_masked(&arg0, mask, rowfns::length_scalar),
        },
        "month" | "year" | "day" | "week" => {
            map_masked(&arg0, mask, |v| rowfns::datetime_part(name, v))
        }
        "weekday" => map_masked(&arg0, mask, rowfns::weekday),
        "is_weekend" => map_masked(&arg0, mask, rowfns::is_weekend),
        "date" => map_masked(&arg0, mask, rowfns::date),
        "is_null" => map_masked(&arg0, mask, |v| Ok(Value::Bool(v.is_null()))),
        "emoji_count" => map_masked(&arg0, mask, rowfns::emoji_count),
        "has_url" => map_masked(&arg0, mask, |v| Ok(rowfns::has_url(v))),
        "abs" => map_masked(&arg0, mask, |v| Ok(rowfns::abs_fn(v))),
        "round" | "percent" => {
            let arg1 = eval_batch(frame, &args[1], bindings, mask)?;
            map_masked2(&arg0, &arg1, mask, |a, b| {
                if name == "round" {
                    Ok(rowfns::round_fn(a, b))
                } else {
                    rowfns::percent(a, b)
                }
            })
        }
        "in_list" | "in_list_any" => {
            let arg1 = eval_batch(frame, &args[1], bindings, mask)?;
            let Batch::ConstList(list) = &arg1 else {
                // A non-list second argument is a row-wise type error.
                return Err(QueryError::runtime(format!(
                    "{name}() expects a list"
                )));
            };
            map_masked(&arg0, mask, |v| {
                Ok(if name == "in_list" {
                    rowfns::in_list_value(v, list)
                } else {
                    rowfns::in_list_any_value(v, list)
                })
            })
        }
        other => Err(QueryError::runtime(format!(
            "function '{other}' is not vectorized"
        ))),
    }
}

/// Apply a unary scalar kernel to every masked row.
fn map_masked<'a>(
    batch: &Batch,
    mask: &[bool],
    f: impl Fn(&Value) -> Result<Value, QueryError>,
) -> Result<Batch<'a>, QueryError> {
    if let Batch::Const(v) = batch {
        return Ok(Batch::Const(f(v)?));
    }
    let mut out = vec![Value::Null; mask.len()];
    for (i, slot) in out.iter_mut().enumerate() {
        if mask[i] {
            *slot = f(&batch.scalar_at(i)?)?;
        }
    }
    Ok(Batch::Mixed(out))
}

/// Apply a binary scalar kernel to every masked row.
fn map_masked2<'a>(
    a: &Batch,
    b: &Batch,
    mask: &[bool],
    f: impl Fn(&Value, &Value) -> Result<Value, QueryError>,
) -> Result<Batch<'a>, QueryError> {
    if let (Batch::Const(x), Batch::Const(y)) = (a, b) {
        return Ok(Batch::Const(f(x, y)?));
    }
    let mut out = vec![Value::Null; mask.len()];
    for (i, slot) in out.iter_mut().enumerate() {
        if mask[i] {
            *slot = f(&a.scalar_at(i)?, &b.scalar_at(i)?)?;
        }
    }
    Ok(Batch::Mixed(out))
}
