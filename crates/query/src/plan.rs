//! Logical-plan layer between the AQL AST and the dataframe kernels.
//!
//! Frame-method chains lower into a small [`PlanOp`] IR; a rule-based
//! optimizer applies predicate pushdown (filter before join/group_by/sort),
//! head-limit fusion into sort (top-k), and conservative projection
//! pruning. Lowering is strictly opt-in: any construct whose semantics the
//! vectorized executor cannot reproduce exactly (effects, plugins, dynamic
//! arguments, unknown functions or arities) simply does not lower and runs
//! through the row-wise interpreter unchanged.
//!
//! Optimizer legality notes live next to each rule. The overarching safety
//! net is the executor's fallback contract (see
//! `Interpreter::eval_method_chain`): a rewrite that introduces an error
//! the original evaluation order would not hit — e.g. a pushed-down
//! predicate evaluated on rows an inner join would have dropped — aborts
//! the vectorized attempt, and the row-wise engine re-runs the chain
//! authoritatively.

use crate::ast::{BinOp, Expr, UnOp};
use crate::interp::number_value;
use allhands_dataframe::{AggKind, Aggregation, JoinKind, Value};

/// A lowered, vectorizable expression: the subset of [`Expr`] whose
/// evaluation is pure and whose per-row semantics the batch evaluator
/// mirrors exactly.
#[derive(Debug, Clone)]
pub(crate) enum VExpr {
    /// A literal (numbers already normalized through `number_value`).
    Lit(Value),
    /// Column of the current frame, else session binding.
    Ident(String),
    /// A list literal.
    List(Vec<VExpr>),
    /// Unary operator.
    Unary { op: UnOp, expr: Box<VExpr> },
    /// Binary operator (And/Or keep their short-circuit row semantics via
    /// masked evaluation).
    Binary { op: BinOp, lhs: Box<VExpr>, rhs: Box<VExpr> },
    /// A pure row function from the fixed whitelist, arity pre-checked.
    Call { name: String, args: Vec<VExpr> },
}

impl VExpr {
    /// AST node count, used for bulk step charging.
    pub(crate) fn node_count(&self) -> u64 {
        match self {
            VExpr::Lit(_) | VExpr::Ident(_) => 1,
            VExpr::List(items) => 1 + items.iter().map(VExpr::node_count).sum::<u64>(),
            VExpr::Unary { expr, .. } => 1 + expr.node_count(),
            VExpr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
            VExpr::Call { args, .. } => {
                1 + args.iter().map(VExpr::node_count).sum::<u64>()
            }
        }
    }

    /// All identifier names referenced anywhere in the expression.
    fn idents_into(&self, out: &mut Vec<String>) {
        match self {
            VExpr::Lit(_) => {}
            VExpr::Ident(name) => out.push(name.clone()),
            VExpr::List(items) => items.iter().for_each(|e| e.idents_into(out)),
            VExpr::Unary { expr, .. } => expr.idents_into(out),
            VExpr::Binary { lhs, rhs, .. } => {
                lhs.idents_into(out);
                rhs.idents_into(out);
            }
            VExpr::Call { args, .. } => args.iter().for_each(|e| e.idents_into(out)),
        }
    }

    fn idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.idents_into(&mut out);
        out
    }
}

/// One lowered frame operation.
#[derive(Debug, Clone)]
pub(crate) enum PlanOp {
    /// `filter(pred)`; `pushed` marks predicates the optimizer moved
    /// earlier (their pruned row counts are reported separately).
    Filter { pred: VExpr, pushed: bool },
    /// `derive(name, expr)`.
    Derive { name: String, expr: VExpr },
    /// `select(cols...)`.
    Select { cols: Vec<String> },
    /// `group_by(keys..., aggs...)`.
    GroupBy { keys: Vec<String>, aggs: Vec<Aggregation> },
    /// `sort(col, dir)`.
    Sort { col: String, ascending: bool },
    /// Fused `sort(col, dir).head(k)`.
    TopK { col: String, ascending: bool, k: usize },
    /// `head(n)`.
    Head { n: usize },
    /// `value_counts(col)`.
    ValueCounts { col: String },
    /// `join(right_binding, on, kind)`.
    Join { right: String, on: String, kind: JoinKind },
}

/// A method call in a flattened chain, borrowing the AST.
pub(crate) struct ChainCall<'a> {
    pub(crate) name: &'a str,
    pub(crate) args: &'a [Expr],
}

/// Flatten a `Method` spine into (base expression, calls innermost-first).
pub(crate) fn flatten_chain(expr: &Expr) -> (&Expr, Vec<ChainCall<'_>>) {
    let mut calls = Vec::new();
    let mut e = expr;
    while let Expr::Method { recv, name, args, .. } = e {
        calls.push(ChainCall { name, args });
        e = recv;
    }
    calls.reverse();
    (e, calls)
}

/// Lower the longest lowerable prefix of `calls`; returns the ops and how
/// many calls they consume.
pub(crate) fn lower_ops(calls: &[ChainCall]) -> (Vec<PlanOp>, usize) {
    let mut ops = Vec::new();
    for call in calls {
        match lower_call(call) {
            Some(op) => ops.push(op),
            None => break,
        }
    }
    let consumed = ops.len();
    (ops, consumed)
}

fn lower_call(call: &ChainCall) -> Option<PlanOp> {
    let args = call.args;
    Some(match call.name {
        "filter" if args.len() == 1 => {
            PlanOp::Filter { pred: lower_vexpr(&args[0])?, pushed: false }
        }
        "derive" if args.len() == 2 => {
            let Expr::Str(name) = &args[0] else { return None };
            PlanOp::Derive { name: name.clone(), expr: lower_vexpr(&args[1])? }
        }
        "select" => {
            let mut cols = Vec::with_capacity(args.len());
            for a in args {
                let Expr::Str(s) = a else { return None };
                cols.push(s.clone());
            }
            PlanOp::Select { cols }
        }
        "group_by" => {
            let mut keys = Vec::new();
            let mut aggs = Vec::new();
            for a in args {
                match a {
                    Expr::Str(s) => keys.push(s.clone()),
                    Expr::Call { name, args: agg_args, .. } => {
                        let kind = AggKind::parse(name)?;
                        let column = match agg_args.as_slice() {
                            [] => String::new(),
                            [Expr::Str(s)] => s.clone(),
                            _ => return None,
                        };
                        // Missing column for a non-count agg is a row-wise
                        // error; don't lower it.
                        if kind != AggKind::Count && column.is_empty() {
                            return None;
                        }
                        aggs.push(Aggregation::new(&column, kind));
                    }
                    _ => return None,
                }
            }
            if aggs.is_empty() {
                aggs.push(Aggregation::new("", AggKind::Count));
            }
            PlanOp::GroupBy { keys, aggs }
        }
        "sort" if (1..=2).contains(&args.len()) => {
            let Expr::Str(col) = &args[0] else { return None };
            let ascending = match args.get(1) {
                None => true,
                Some(Expr::Str(dir)) if dir == "asc" => true,
                Some(Expr::Str(dir)) if dir == "desc" => false,
                _ => return None,
            };
            PlanOp::Sort { col: col.clone(), ascending }
        }
        "head" if args.len() == 1 => {
            let Expr::Number(n) = &args[0] else { return None };
            // Same saturating cast chain the row-wise numeric_arg takes.
            PlanOp::Head { n: *n as usize }
        }
        "value_counts" if args.len() == 1 => {
            let Expr::Str(col) = &args[0] else { return None };
            PlanOp::ValueCounts { col: col.clone() }
        }
        "join" if args.len() == 3 => {
            let Expr::Ident(right) = &args[0] else { return None };
            let Expr::Str(on) = &args[1] else { return None };
            let kind = match &args[2] {
                Expr::Str(k) if k == "inner" => JoinKind::Inner,
                Expr::Str(k) if k == "left" => JoinKind::Left,
                _ => return None,
            };
            PlanOp::Join { right: right.clone(), on: on.clone(), kind }
        }
        _ => return None,
    })
}

/// The pure row functions the batch evaluator implements, with arities.
/// Anything else — effects, plugins, unknown names, arity mismatches —
/// refuses to lower so the row-wise engine produces the behavior.
const ROW_FNS: &[(&str, usize)] = &[
    ("contains", 2),
    ("starts_with", 2),
    ("lower", 1),
    ("upper", 1),
    ("length", 1),
    ("month", 1),
    ("year", 1),
    ("day", 1),
    ("week", 1),
    ("weekday", 1),
    ("is_weekend", 1),
    ("date", 1),
    ("has_topic", 2),
    ("in_list", 2),
    ("in_list_any", 2),
    ("is_null", 1),
    ("coalesce", 2),
    ("emoji_count", 1),
    ("has_url", 1),
    ("abs", 1),
    ("round", 2),
    ("percent", 2),
];

fn lower_vexpr(e: &Expr) -> Option<VExpr> {
    Some(match e {
        Expr::Number(n) => VExpr::Lit(number_value(*n)),
        Expr::Str(s) => VExpr::Lit(Value::Str(s.clone())),
        Expr::Bool(b) => VExpr::Lit(Value::Bool(*b)),
        Expr::Ident(name) => VExpr::Ident(name.clone()),
        Expr::List(items) => VExpr::List(
            items.iter().map(lower_vexpr).collect::<Option<Vec<_>>>()?,
        ),
        Expr::Unary { op, expr } => {
            VExpr::Unary { op: *op, expr: Box::new(lower_vexpr(expr)?) }
        }
        Expr::Binary { op, lhs, rhs } => VExpr::Binary {
            op: *op,
            lhs: Box::new(lower_vexpr(lhs)?),
            rhs: Box::new(lower_vexpr(rhs)?),
        },
        Expr::Call { name, args, .. } => {
            let (_, arity) = ROW_FNS.iter().find(|(n, _)| n == name)?;
            if args.len() != *arity {
                return None;
            }
            VExpr::Call {
                name: name.clone(),
                args: args.iter().map(lower_vexpr).collect::<Option<Vec<_>>>()?,
            }
        }
        Expr::Method { .. } => return None,
    })
}

/// Cache key: the lowered (pre-optimization) ops plus every input schema
/// that optimization decisions depend on. Debug formatting is deterministic
/// and distinguishes all literal forms.
pub(crate) fn cache_key(
    ops: &[PlanOp],
    base_schema: &[String],
    right_schemas: &[(String, Vec<String>)],
) -> String {
    format!("{ops:?}|base={base_schema:?}|right={right_schemas:?}")
}

/// Optimizer statistics for obs counters.
#[derive(Debug, Default)]
pub(crate) struct OptStats {
    pub(crate) rules_fired: u64,
}

/// Apply the rewrite rules. `right_schema` resolves a join binding's column
/// names (None if unresolvable — legality checks then refuse to fire).
pub(crate) fn optimize(
    ops: Vec<PlanOp>,
    base_schema: &[String],
    right_schema: &dyn Fn(&str) -> Option<Vec<String>>,
) -> (Vec<PlanOp>, OptStats) {
    let mut stats = OptStats::default();
    let ops = fuse_heads(ops, &mut stats);
    let mut ops = push_down_filters(ops, base_schema, right_schema, &mut stats);
    if let Some(select) = prune_projection(&ops, base_schema) {
        ops.insert(0, select);
        stats.rules_fired += 1;
    }
    (ops, stats)
}

/// Rule: `sort(c).head(k)` → top-k selection; adjacent heads collapse.
fn fuse_heads(ops: Vec<PlanOp>, stats: &mut OptStats) -> Vec<PlanOp> {
    let mut out: Vec<PlanOp> = Vec::with_capacity(ops.len());
    for op in ops {
        match (&op, out.last_mut()) {
            (PlanOp::Head { n }, Some(PlanOp::Sort { col, ascending })) => {
                let fused =
                    PlanOp::TopK { col: col.clone(), ascending: *ascending, k: *n };
                *out.last_mut().expect("checked") = fused;
                stats.rules_fired += 1;
            }
            (PlanOp::Head { n }, Some(PlanOp::TopK { k, .. })) => {
                *k = (*k).min(*n);
                stats.rules_fired += 1;
            }
            (PlanOp::Head { n }, Some(PlanOp::Head { n: prev })) => {
                *prev = (*prev).min(*n);
                stats.rules_fired += 1;
            }
            _ => out.push(op),
        }
    }
    out
}

/// Rule: move filters before join/group_by/sort when every identifier the
/// predicate references keeps the same resolution and the move cannot turn
/// a row-wise error into a success.
///
/// - **Join**: legal when each predicate ident is a column of the pre-join
///   left schema (left columns keep their names — colliding right columns
///   are `_right`-suffixed) or not a column of the post-join frame at all
///   (then it resolves to a session binding either way). Filtering left
///   rows before the join produces the same pairs in the same order, for
///   both inner and left joins. The pushed predicate may evaluate on rows
///   the join would have dropped — extra errors trigger the row-wise
///   fallback; extra successes are impossible (evaluated rows are a
///   superset).
/// - **GroupBy**: legal when every predicate ident is one of the keys, or
///   a column of neither the input nor the output schema (a binding — or an
///   unknown name, which errors identically on both sides). Filtering rows
///   by a predicate on key values removes whole groups, so surviving groups
///   keep their exact member rows, aggregates and first-appearance order.
///   (For Join the `x ∉ post` escape needs no input-schema guard: the left
///   schema is a subset of the post-join schema.)
/// - **Sort**: always legal — filtering preserves relative order, so
///   sort-then-filter and filter-then-sort agree for a stable sort.
/// - Never past another filter (pointless), `head`/`top-k` (changes which
///   rows are kept), `derive` (the derive might error on rows the filter
///   would remove, turning a row-wise error into a vectorized success), or
///   `select` (could change an identifier's column-vs-binding resolution).
fn push_down_filters(
    mut ops: Vec<PlanOp>,
    base_schema: &[String],
    right_schema: &dyn Fn(&str) -> Option<Vec<String>>,
    stats: &mut OptStats,
) -> Vec<PlanOp> {
    // Input schema at each op position. Filters are schema-neutral, so
    // swapping one with a neighbor leaves every entry valid.
    let mut schemas: Vec<Option<Vec<String>>> = Vec::with_capacity(ops.len() + 1);
    schemas.push(Some(base_schema.to_vec()));
    for op in &ops {
        let next = schemas
            .last()
            .expect("non-empty")
            .as_ref()
            .and_then(|s| schema_after(op, s, right_schema));
        schemas.push(next);
    }
    for i in 1..ops.len() {
        let PlanOp::Filter { pred, .. } = &ops[i] else { continue };
        let idents = pred.idents();
        let mut j = i;
        while j > 0 {
            let Some(schema_in) = &schemas[j - 1] else { break };
            let Some(schema_out) = &schemas[j] else { break };
            let legal = match &ops[j - 1] {
                PlanOp::Sort { .. } => true,
                PlanOp::Join { .. } => idents.iter().all(|x| {
                    schema_in.contains(x) || !schema_out.contains(x)
                }),
                PlanOp::GroupBy { keys, .. } => idents.iter().all(|x| {
                    // A non-key ident must be invisible on BOTH sides of
                    // the op: if it is a column only before the group_by
                    // (e.g. an aggregated-away input), the original chain
                    // errors with "unknown name" while the pushed filter
                    // would happily read the pre-group column.
                    keys.contains(x)
                        || (!schema_out.contains(x) && !schema_in.contains(x))
                }),
                _ => false,
            };
            if !legal {
                break;
            }
            ops.swap(j - 1, j);
            if let PlanOp::Filter { pushed, .. } = &mut ops[j - 1] {
                *pushed = true;
            }
            stats.rules_fired += 1;
            j -= 1;
        }
    }
    ops
}

/// Rule: when an early op bounds the output schema (select / group_by /
/// value_counts) and no join precedes it, prepend a select of just the base
/// columns the prefix references. Conservative by construction: skipped
/// when the needed set is empty (a zero-column frame loses its row count)
/// or when nothing would be pruned.
fn prune_projection(ops: &[PlanOp], base_schema: &[String]) -> Option<PlanOp> {
    let bound = ops.iter().position(|op| {
        matches!(
            op,
            PlanOp::Select { .. } | PlanOp::GroupBy { .. } | PlanOp::ValueCounts { .. }
        )
    })?;
    if ops[..=bound].iter().any(|op| matches!(op, PlanOp::Join { .. })) {
        return None;
    }
    let mut needed: Vec<String> = Vec::new();
    for op in &ops[..=bound] {
        let mut refs: Vec<String> = Vec::new();
        match op {
            PlanOp::Filter { pred, .. } => pred.idents_into(&mut refs),
            PlanOp::Derive { expr, .. } => expr.idents_into(&mut refs),
            PlanOp::Select { cols } => refs.extend(cols.iter().cloned()),
            PlanOp::GroupBy { keys, aggs } => {
                refs.extend(keys.iter().cloned());
                refs.extend(aggs.iter().map(|a| a.column.clone()));
            }
            PlanOp::Sort { col, .. } | PlanOp::TopK { col, .. } => {
                refs.push(col.clone())
            }
            PlanOp::ValueCounts { col } => refs.push(col.clone()),
            PlanOp::Head { .. } => {}
            PlanOp::Join { .. } => unreachable!("excluded above"),
        }
        for r in refs {
            if base_schema.contains(&r) && !needed.contains(&r) {
                needed.push(r);
            }
        }
    }
    if needed.is_empty() || needed.len() == base_schema.len() {
        return None;
    }
    // Base order keeps the pruning select deterministic.
    let cols: Vec<String> =
        base_schema.iter().filter(|c| needed.contains(c)).cloned().collect();
    Some(PlanOp::Select { cols })
}

/// Column names after applying `op` to a frame with `schema`; `None` when
/// the result schema cannot be determined statically.
fn schema_after(
    op: &PlanOp,
    schema: &[String],
    right_schema: &dyn Fn(&str) -> Option<Vec<String>>,
) -> Option<Vec<String>> {
    Some(match op {
        PlanOp::Filter { .. }
        | PlanOp::Sort { .. }
        | PlanOp::TopK { .. }
        | PlanOp::Head { .. } => schema.to_vec(),
        PlanOp::Derive { name, .. } => {
            let mut s = schema.to_vec();
            if !s.contains(name) {
                s.push(name.clone());
            }
            s
        }
        PlanOp::Select { cols } => cols.clone(),
        PlanOp::GroupBy { keys, aggs } => {
            let mut s = keys.clone();
            s.extend(aggs.iter().map(Aggregation::output_name));
            s
        }
        PlanOp::ValueCounts { col } => {
            if col == "count" {
                vec!["count_value".to_string(), "count".to_string()]
            } else {
                vec![col.clone(), "count".to_string()]
            }
        }
        PlanOp::Join { right, on, .. } => {
            let rs = right_schema(right)?;
            let mut s = schema.to_vec();
            for rc in rs {
                if rc == *on {
                    continue;
                }
                if schema.contains(&rc) {
                    s.push(format!("{rc}_right"));
                } else {
                    s.push(rc);
                }
            }
            s
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn lower_src(src: &str) -> (Vec<PlanOp>, usize) {
        let program = parse_program(src).unwrap();
        let crate::ast::Stmt::Expr { expr, .. } = &program.statements[0] else {
            panic!("expected expression statement");
        };
        let (_, calls) = flatten_chain(expr);
        lower_ops(&calls)
    }

    #[test]
    fn lowers_supported_chain_fully() {
        let (ops, consumed) = lower_src(
            r#"df.filter(x > 1).select("x", "y").group_by("x", count()).sort("count", "desc").head(3)"#,
        );
        assert_eq!(consumed, 5);
        assert!(matches!(ops[0], PlanOp::Filter { .. }));
        assert!(matches!(ops[4], PlanOp::Head { n: 3 }));
    }

    #[test]
    fn stops_at_non_lowerable_call() {
        // count() is a scalar terminal, not a plan op.
        let (_, consumed) = lower_src(r#"df.filter(x > 1).count()"#);
        assert_eq!(consumed, 1);
        // Effects never lower.
        let (_, consumed) = lower_src(r#"df.filter(show(x))"#);
        assert_eq!(consumed, 0);
        // Unknown function / wrong arity never lowers.
        let (_, consumed) = lower_src(r#"df.filter(bogus(x))"#);
        assert_eq!(consumed, 0);
        let (_, consumed) = lower_src(r#"df.filter(contains(x))"#);
        assert_eq!(consumed, 0);
    }

    #[test]
    fn sort_head_fuses_to_top_k() {
        let (ops, _) = lower_src(r#"df.sort("x", "desc").head(5).head(9)"#);
        let (ops, stats) = optimize(ops, &["x".to_string()], &|_| None);
        assert_eq!(ops.len(), 1);
        assert!(
            matches!(&ops[0], PlanOp::TopK { col, ascending: false, k: 5 } if col == "x"),
            "{ops:?}"
        );
        assert_eq!(stats.rules_fired, 2);
    }

    #[test]
    fn filter_pushes_past_join_on_left_columns_only() {
        let (ops, _) = lower_src(r#"df.join(other, "k", "inner").filter(x > 1)"#);
        let schema = vec!["k".to_string(), "x".to_string()];
        let rs = |name: &str| {
            (name == "other").then(|| vec!["k".to_string(), "y".to_string()])
        };
        let (opt, stats) = optimize(ops, &schema, &rs);
        assert!(matches!(opt[0], PlanOp::Filter { pushed: true, .. }), "{opt:?}");
        assert!(matches!(opt[1], PlanOp::Join { .. }));
        assert_eq!(stats.rules_fired, 1);

        // A predicate on a right-side column must not move.
        let (ops, _) = lower_src(r#"df.join(other, "k", "inner").filter(y > 1)"#);
        let (opt, stats) = optimize(ops, &schema, &rs);
        assert!(matches!(opt[0], PlanOp::Join { .. }), "{opt:?}");
        assert_eq!(stats.rules_fired, 0);
    }

    #[test]
    fn filter_pushes_past_group_by_on_keys_only() {
        let schema = vec!["k".to_string(), "v".to_string()];
        let (ops, _) =
            lower_src(r#"df.group_by("k", sum("v")).filter(k == "a")"#);
        let (opt, _) = optimize(ops, &schema, &|_| None);
        assert!(matches!(opt[0], PlanOp::Filter { pushed: true, .. }), "{opt:?}");

        // Predicate on the aggregate output stays put.
        let (ops, _) =
            lower_src(r#"df.group_by("k", sum("v")).filter(v_sum > 1)"#);
        let (opt, _) = optimize(ops, &schema, &|_| None);
        assert!(matches!(opt[0], PlanOp::GroupBy { .. }), "{opt:?}");
    }

    #[test]
    fn filter_never_pushes_past_derive() {
        // df.derive("d", 1 / x).filter(x != 0): pushing the filter first
        // would mask the row-wise division-by-zero error.
        let schema = vec!["x".to_string()];
        let (ops, _) = lower_src(r#"df.derive("d", 1 / x).filter(x != 0)"#);
        let (opt, stats) = optimize(ops, &schema, &|_| None);
        assert!(matches!(opt[0], PlanOp::Derive { .. }), "{opt:?}");
        assert_eq!(stats.rules_fired, 0);
    }

    #[test]
    fn projection_pruning_keeps_referenced_base_columns() {
        let schema: Vec<String> =
            ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let (ops, _) =
            lower_src(r#"df.filter(a > 1).group_by("b", mean("c"))"#);
        let (opt, _) = optimize(ops, &schema, &|_| None);
        let PlanOp::Select { cols } = &opt[0] else {
            panic!("expected pruning select, got {opt:?}");
        };
        assert_eq!(cols, &["a".to_string(), "b".to_string(), "c".to_string()]);
    }

    #[test]
    fn cache_key_distinguishes_schemas() {
        let (ops, _) = lower_src(r#"df.filter(x > 1)"#);
        let k1 = cache_key(&ops, &["x".to_string()], &[]);
        let k2 = cache_key(&ops, &["x".to_string(), "y".to_string()], &[]);
        assert_ne!(k1, k2);
    }
}
