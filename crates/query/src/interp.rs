//! The AQL interpreter: expression evaluation, frame method dispatch, and
//! the builtin/row function set.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::error::QueryError;
use crate::exec;
use crate::figure::FigureSpec;
use crate::plan::{self, PlanOp};
use crate::plugins::PluginRegistry;
use crate::rowfns;
use allhands_dataframe::{
    AggKind, Aggregation, Column, ColumnData, DataFrame, JoinKind, Value,
};
use allhands_obs::Recorder;
use std::collections::HashMap;

/// Which execution strategy frame-method chains use at the top level of a
/// cell. Both engines are contractually byte-identical; `RowWise` exists as
/// an escape hatch (`ALLHANDS_QUERY_ENGINE=rowwise`) and as the reference
/// side of the differential test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryEngine {
    /// Lower method chains to a plan IR, optimize, and run column-batch
    /// kernels; any error falls back to the row-wise path transparently.
    Vectorized,
    /// The original row-at-a-time tree-walking interpreter.
    RowWise,
}

impl QueryEngine {
    /// Parse the `ALLHANDS_QUERY_ENGINE` value; anything but `rowwise`
    /// selects the vectorized engine.
    pub fn from_env_value(s: &str) -> QueryEngine {
        if s.eq_ignore_ascii_case("rowwise") {
            QueryEngine::RowWise
        } else {
            QueryEngine::Vectorized
        }
    }

    fn from_env() -> QueryEngine {
        match std::env::var("ALLHANDS_QUERY_ENGINE") {
            Ok(v) => QueryEngine::from_env_value(&v),
            Err(_) => QueryEngine::Vectorized,
        }
    }
}

/// Plan-cache counters, exposed for benches and tests (the same numbers
/// are recorded as volatile `query.plan.*` obs counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Cache hits (lowered shape seen before with the same schemas).
    pub hits: u64,
    /// Cache misses (shape lowered and optimized fresh).
    pub misses: u64,
    /// Optimizer rewrite rules applied across all misses.
    pub rules_fired: u64,
    /// Rows removed by pushed-down filters before a join/group_by.
    pub rows_pruned: u64,
    /// Lowered runs that fell back to the row-wise engine.
    pub fallbacks: u64,
}

/// Bound on remembered plan shapes per session; generated programs repeat a
/// handful of shapes, so a small cap is ample and keeps memory flat.
const PLAN_CACHE_CAP: usize = 256;

/// A runtime value.
#[derive(Debug, Clone, serde::Serialize)]
pub enum RtValue {
    /// A scalar cell value (numbers, strings, booleans, datetimes, nulls).
    Scalar(Value),
    /// A dataframe.
    Frame(DataFrame),
    /// A figure artifact produced by a plotting plugin.
    Figure(FigureSpec),
    /// A list of scalar values.
    List(Vec<Value>),
}

impl RtValue {
    /// Shorthand for a null scalar.
    pub fn null() -> RtValue {
        RtValue::Scalar(Value::Null)
    }

    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            RtValue::Scalar(_) => "scalar",
            RtValue::Frame(_) => "frame",
            RtValue::Figure(_) => "figure",
            RtValue::List(_) => "list",
        }
    }

    /// Unwrap a frame or error.
    pub fn into_frame(self) -> Result<DataFrame, QueryError> {
        match self {
            RtValue::Frame(f) => Ok(f),
            other => Err(QueryError::runtime(format!(
                "expected a frame, got {}",
                other.type_name()
            ))),
        }
    }

    /// Unwrap a scalar or error.
    pub fn into_scalar(self) -> Result<Value, QueryError> {
        match self {
            RtValue::Scalar(v) => Ok(v),
            other => Err(QueryError::runtime(format!(
                "expected a scalar, got {}",
                other.type_name()
            ))),
        }
    }

    /// Render for display in a response.
    pub fn render(&self) -> String {
        match self {
            RtValue::Scalar(v) => v.to_string(),
            RtValue::Frame(f) => f.to_table_string(20),
            RtValue::Figure(fig) => fig.render_ascii(),
            RtValue::List(items) => {
                let parts: Vec<String> = items.iter().map(Value::to_string).collect();
                format!("[{}]", parts.join(", "))
            }
        }
    }
}

/// Execution effects collected while running a program.
#[derive(Debug, Default)]
pub struct Effects {
    /// Values passed to `show(...)`, in order.
    pub shown: Vec<RtValue>,
    /// Messages passed to `log(...)`.
    pub logs: Vec<String>,
}

/// The interpreter. Holds bindings, limits, and the plugin registry.
pub struct Interpreter {
    bindings: HashMap<String, RtValue>,
    plugins: PluginRegistry,
    /// Remaining evaluation steps (sandbox budget).
    steps_left: u64,
    /// Maximum rows any produced frame may have (sandbox budget).
    max_rows: usize,
    /// Per-cell wall-clock limit and its deadline (sandbox budget).
    wall_limit: Option<std::time::Duration>,
    cell_deadline: Option<std::time::Instant>,
    /// Steps taken this cell, for the periodic clock check.
    steps_taken: u64,
    effects: Effects,
    /// Execution strategy for top-level frame-method chains.
    engine: QueryEngine,
    /// Optimized plans keyed on lowered shape + input schemas.
    plan_cache: HashMap<String, Vec<PlanOp>>,
    plan_stats: PlanCacheStats,
    /// Obs sink for `query.plan.*` volatile counters (disabled by default).
    recorder: Recorder,
}

/// Evaluation context: bindings plus an optional row scope.
struct RowCtx<'a> {
    frame: &'a DataFrame,
    row: usize,
}

impl Interpreter {
    /// Create an interpreter with the given sandbox budgets.
    pub fn new(step_budget: u64, max_rows: usize) -> Self {
        Interpreter {
            bindings: HashMap::new(),
            plugins: PluginRegistry::with_builtins(),
            steps_left: step_budget,
            max_rows,
            wall_limit: None,
            cell_deadline: None,
            steps_taken: 0,
            effects: Effects::default(),
            engine: QueryEngine::from_env(),
            plan_cache: HashMap::new(),
            plan_stats: PlanCacheStats::default(),
            recorder: Recorder::disabled(),
        }
    }

    /// Override the execution engine (tests, benches, escape hatches).
    pub fn set_engine(&mut self, engine: QueryEngine) {
        self.engine = engine;
    }

    /// The active execution engine.
    pub fn engine(&self) -> QueryEngine {
        self.engine
    }

    /// Route `query.plan.*` counters into an obs recorder. Counters go
    /// through the volatile annex only (no spans): sessions run on serve
    /// applier threads where plan-cache hit patterns legitimately differ
    /// between leader and replayed followers.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Plan-cache counters for this interpreter.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_stats
    }

    /// Bind a value (e.g. the pre-loaded `feedback` frame).
    pub fn bind(&mut self, name: &str, value: RtValue) {
        self.bindings.insert(name.to_string(), value);
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&RtValue> {
        self.bindings.get(name)
    }

    /// Register an additional plugin function.
    pub fn register_plugin(
        &mut self,
        name: &str,
        f: crate::plugins::PluginFn,
    ) {
        self.plugins.register(name, f);
    }

    /// Run a program; effects (shown values, logs) accumulate and are
    /// drained by the caller via [`Interpreter::take_effects`].
    pub fn run(&mut self, program: &Program) -> Result<(), QueryError> {
        for stmt in &program.statements {
            match stmt {
                Stmt::Let { name, expr, line } => {
                    let value = self
                        .eval(expr, None)
                        .map_err(|e| contextualize(e, *line))?;
                    self.bindings.insert(name.clone(), value);
                }
                Stmt::Expr { expr, line } => {
                    self.eval(expr, None).map_err(|e| contextualize(e, *line))?;
                }
            }
        }
        Ok(())
    }

    /// Take the accumulated effects, resetting them.
    pub fn take_effects(&mut self) -> Effects {
        std::mem::take(&mut self.effects)
    }

    /// Reset the step budget (called per cell by the session kernel).
    pub fn reset_budget(&mut self, steps: u64) {
        self.steps_left = steps;
    }

    /// Arm (or disarm, with `None`) the per-cell wall-clock budget; called
    /// per cell by the session kernel before running.
    pub fn start_cell_clock(&mut self, limit: Option<std::time::Duration>) {
        self.wall_limit = limit;
        self.cell_deadline = limit.map(|d| std::time::Instant::now() + d);
        self.steps_taken = 0;
    }

    fn step(&mut self) -> Result<(), QueryError> {
        if self.steps_left == 0 {
            return Err(QueryError::runtime(
                "step budget exhausted: program too expensive for the sandbox",
            ));
        }
        self.steps_left -= 1;
        // Clock reads are much slower than a decrement, so the wall-clock
        // budget is only checked every 4096 steps (and on the first).
        if self.steps_taken % 4096 == 0 {
            self.check_wall_clock()?;
        }
        self.steps_taken += 1;
        Ok(())
    }

    /// Unconditional wall-clock check. Frame-producing operations
    /// (join/group_by/sort) call this directly: one such call can cost as
    /// much as thousands of interpreter steps, so waiting for the
    /// every-4096-steps check in [`step`](Self::step) would let a cell
    /// overrun its budget by the full cost of an operation and keep running.
    fn check_wall_clock(&self) -> Result<(), QueryError> {
        if let (Some(deadline), Some(limit)) = (self.cell_deadline, self.wall_limit) {
            if std::time::Instant::now() >= deadline {
                return Err(QueryError::runtime(format!(
                    "cell wall-clock budget exhausted (limit {limit:?})"
                )));
            }
        }
        Ok(())
    }

    fn check_rows(&self, frame: &DataFrame) -> Result<(), QueryError> {
        if frame.n_rows() > self.max_rows {
            return Err(QueryError::runtime(format!(
                "row budget exceeded: frame has {} rows (limit {})",
                frame.n_rows(),
                self.max_rows
            )));
        }
        Ok(())
    }

    fn eval(&mut self, expr: &Expr, row: Option<&RowCtx>) -> Result<RtValue, QueryError> {
        self.step()?;
        match expr {
            Expr::Number(n) => Ok(RtValue::Scalar(number_value(*n))),
            Expr::Str(s) => Ok(RtValue::Scalar(Value::Str(s.clone()))),
            Expr::Bool(b) => Ok(RtValue::Scalar(Value::Bool(*b))),
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item, row)?.into_scalar()?);
                }
                Ok(RtValue::List(out))
            }
            Expr::Ident(name) => {
                // Row scope first: column of the current row.
                if let Some(ctx) = row {
                    if ctx.frame.has_column(name) {
                        return Ok(RtValue::Scalar(
                            ctx.frame.column(name).expect("checked").get(ctx.row),
                        ));
                    }
                }
                self.bindings.get(name).cloned().ok_or_else(|| {
                    let hint = if row.is_some() {
                        " (not a column of the current frame, nor a binding)"
                    } else {
                        ""
                    };
                    QueryError::runtime(format!("unknown name '{name}'{hint}"))
                })
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, row)?.into_scalar()?;
                Ok(RtValue::Scalar(match op {
                    UnOp::Neg => match v.as_f64() {
                        Some(f) => number_value(-f),
                        None => {
                            return Err(QueryError::runtime(format!("cannot negate {v:?}")))
                        }
                    },
                    UnOp::Not => Value::Bool(!truthy(&v)),
                }))
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, row)?.into_scalar()?;
                // Short-circuit logical ops.
                if *op == BinOp::And && !truthy(&l) {
                    return Ok(RtValue::Scalar(Value::Bool(false)));
                }
                if *op == BinOp::Or && truthy(&l) {
                    return Ok(RtValue::Scalar(Value::Bool(true)));
                }
                let r = self.eval(rhs, row)?.into_scalar()?;
                binary_op(*op, &l, &r).map(RtValue::Scalar)
            }
            Expr::Call { name, args, .. } => self.call_function(name, args, row),
            Expr::Method { recv, name, args, .. } => {
                if row.is_none() && self.engine == QueryEngine::Vectorized {
                    return self.eval_method_chain(expr);
                }
                let receiver = self.eval(recv, row)?;
                self.call_method(receiver, name, args, row)
            }
        }
    }

    // ----- vectorized chain execution --------------------------------------

    /// Evaluate a top-level frame-method chain, lowering maximal runs of
    /// plan-able calls into the vectorized executor and dispatching the
    /// rest through the ordinary row-wise [`call_method`](Self::call_method).
    ///
    /// The byte-identity contract: the vectorized path either fully
    /// succeeds (producing exactly the frame the row-wise path would) or
    /// restores the step budget to its pre-attempt snapshot and re-executes
    /// the run row-wise, whose outcome — value or error — is authoritative.
    /// Lowered constructs are pure (no `show`/`log`/plugins), so the re-run
    /// cannot duplicate effects.
    fn eval_method_chain(&mut self, expr: &Expr) -> Result<RtValue, QueryError> {
        let (base, calls) = plan::flatten_chain(expr);
        // Mirror the row-wise per-node step charges: eval() already charged
        // the outermost method node; the descent would charge one step per
        // remaining node before reaching the base.
        for _ in 1..calls.len() {
            self.step()?;
        }
        let mut current = self.eval(base, None)?;
        let mut i = 0;
        let mut row_wise_rest = false;
        while i < calls.len() {
            if !row_wise_rest {
                if let RtValue::Frame(frame) = &current {
                    let (ops, consumed) = plan::lower_ops(&calls[i..]);
                    if consumed > 0 {
                        let snapshot = (self.steps_left, self.steps_taken);
                        match self.exec_lowered(frame, ops) {
                            Ok(out) => {
                                current = RtValue::Frame(out);
                                i += consumed;
                                continue;
                            }
                            Err(_) => {
                                // Fall back: restore the budget and run the
                                // rest of the chain row-wise so any error
                                // (or success) comes from the reference
                                // engine, byte-for-byte.
                                self.steps_left = snapshot.0;
                                self.steps_taken = snapshot.1;
                                self.plan_stats.fallbacks += 1;
                                self.recorder.vincr("query.exec.fallback");
                                row_wise_rest = true;
                            }
                        }
                    }
                }
            }
            let call = &calls[i];
            let recv = std::mem::replace(&mut current, RtValue::null());
            current = self.call_method(recv, call.name, call.args, None)?;
            i += 1;
        }
        Ok(current)
    }

    /// Optimize (with plan-cache lookup) and execute a lowered run against
    /// `base`. Any `Err` is a signal to fall back, never a user-visible
    /// error.
    fn exec_lowered(
        &mut self,
        base: &DataFrame,
        ops: Vec<PlanOp>,
    ) -> Result<DataFrame, QueryError> {
        let base_schema: Vec<String> =
            base.columns().iter().map(|c| c.name().to_string()).collect();
        // Resolve the schemas of join right-hand sides up front: they are
        // part of the cache key (a re-bound right frame must not reuse a
        // stale optimized plan) and the optimizer's legality analysis.
        let mut right_schemas: Vec<(String, Vec<String>)> = Vec::new();
        for op in &ops {
            if let PlanOp::Join { right, .. } = op {
                match self.bindings.get(right) {
                    Some(RtValue::Frame(rf)) => right_schemas.push((
                        right.clone(),
                        rf.columns().iter().map(|c| c.name().to_string()).collect(),
                    )),
                    // Not a frame (or unbound): the join will error; let the
                    // row-wise engine produce that error.
                    _ => return Err(QueryError::runtime("join target is not a frame")),
                }
            }
        }
        let key = plan::cache_key(&ops, &base_schema, &right_schemas);
        let ops = if let Some(cached) = self.plan_cache.get(&key) {
            self.plan_stats.hits += 1;
            self.recorder.vincr("query.plan.cache.hits");
            cached.clone()
        } else {
            self.plan_stats.misses += 1;
            self.recorder.vincr("query.plan.cache.misses");
            let lookup = |name: &str| -> Option<Vec<String>> {
                right_schemas
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, s)| s.clone())
            };
            let (optimized, opt_stats) = plan::optimize(ops, &base_schema, &lookup);
            self.plan_stats.rules_fired += opt_stats.rules_fired;
            self.recorder.vadd("query.plan.rules.fired", opt_stats.rules_fired);
            if self.plan_cache.len() < PLAN_CACHE_CAP {
                self.plan_cache.insert(key, optimized.clone());
            }
            optimized
        };

        let mut pruned: u64 = 0;
        let mut out: Option<DataFrame> = None;
        for op in &ops {
            let f: &DataFrame = out.as_ref().unwrap_or(base);
            self.charge_steps(op_charge(op, f.n_rows()))?;
            let next = match op {
                PlanOp::Filter { pred, pushed } => {
                    let mask = exec::filter_mask(f, pred, &self.bindings)?;
                    let before = f.n_rows();
                    let nf = f.filter(&mask)?;
                    if *pushed {
                        pruned += (before - nf.n_rows()) as u64;
                    }
                    nf
                }
                PlanOp::Derive { name, expr } => {
                    let col = exec::derive_column(f, name, expr, &self.bindings)?;
                    f.with_column(col)?
                }
                PlanOp::Select { cols } => {
                    let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                    f.select(&refs)?
                }
                PlanOp::GroupBy { keys, aggs } => {
                    let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                    let nf = f.group_by(&refs, aggs)?;
                    self.check_wall_clock()?;
                    nf
                }
                PlanOp::Sort { col, ascending } => {
                    let nf = f.sort_by(col, *ascending)?;
                    self.check_wall_clock()?;
                    nf
                }
                PlanOp::TopK { col, ascending, k } => {
                    let nf = f.top_k(col, *ascending, *k)?;
                    self.check_wall_clock()?;
                    nf
                }
                PlanOp::Head { n } => f.head(*n),
                PlanOp::ValueCounts { col } => f.value_counts(col)?,
                PlanOp::Join { right, on, kind } => {
                    let Some(RtValue::Frame(rf)) = self.bindings.get(right) else {
                        return Err(QueryError::runtime("join target is not a frame"));
                    };
                    let nf = f.join(rf, on, *kind)?;
                    self.check_rows(&nf)?;
                    self.check_wall_clock()?;
                    nf
                }
            };
            out = Some(next);
        }
        self.plan_stats.rows_pruned += pruned;
        if pruned > 0 {
            self.recorder.vadd("query.plan.rows.pruned", pruned);
        }
        self.recorder.vincr("query.exec.vectorized");
        Ok(out.unwrap_or_else(|| base.clone()))
    }

    /// Bulk step charge approximating what the row-wise engine would spend
    /// on the same operation (per-row × per-expression-node for filters and
    /// derives). Exact parity is not required — on any error, including
    /// budget exhaustion, the run falls back and the row-wise engine's
    /// step-by-step accounting is authoritative.
    fn charge_steps(&mut self, n: u64) -> Result<(), QueryError> {
        if self.steps_left < n {
            self.steps_left = 0;
            return Err(QueryError::runtime(
                "step budget exhausted: program too expensive for the sandbox",
            ));
        }
        self.steps_left -= n;
        self.steps_taken += n;
        self.check_wall_clock()
    }

    // ----- free functions -------------------------------------------------

    fn call_function(
        &mut self,
        name: &str,
        args: &[Expr],
        row: Option<&RowCtx>,
    ) -> Result<RtValue, QueryError> {
        // Effectful builtins first.
        match name {
            "show" => {
                expect_arity(name, args, 1)?;
                let v = self.eval(&args[0], row)?;
                self.effects.shown.push(v);
                return Ok(RtValue::null());
            }
            "log" => {
                expect_arity(name, args, 1)?;
                let v = self.eval(&args[0], row)?;
                self.effects.logs.push(v.render());
                return Ok(RtValue::null());
            }
            _ => {}
        }

        // Pure scalar/row functions.
        if let Some(result) = self.try_row_function(name, args, row)? {
            return Ok(result);
        }

        // Plugins (figures, analyses).
        if self.plugins.contains(name) {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(self.eval(a, row)?);
            }
            return self.plugins.invoke(name, values);
        }

        Err(QueryError::runtime(format!(
            "unknown function '{name}' (available: {})",
            self.plugins.names().join(", ")
        )))
    }

    /// Scalar functions usable both at top level and inside row contexts.
    /// Returns `Ok(None)` if `name` is not one of them.
    fn try_row_function(
        &mut self,
        name: &str,
        args: &[Expr],
        row: Option<&RowCtx>,
    ) -> Result<Option<RtValue>, QueryError> {
        // The value-level semantics live in `crate::rowfns`, shared with the
        // vectorized batch evaluator — see the byte-identity contract there.
        let result = match name {
            "contains" => {
                expect_arity(name, args, 2)?;
                let hay = self.eval_scalar(&args[0], row)?;
                let needle = self.eval_scalar(&args[1], row)?;
                rowfns::contains(&hay, &needle)?
            }
            "starts_with" => {
                expect_arity(name, args, 2)?;
                let hay = self.eval_scalar(&args[0], row)?;
                let needle = self.eval_scalar(&args[1], row)?;
                rowfns::starts_with(&hay, &needle)
            }
            "lower" => {
                expect_arity(name, args, 1)?;
                rowfns::lower(self.eval_scalar(&args[0], row)?)
            }
            "upper" => {
                expect_arity(name, args, 1)?;
                rowfns::upper(self.eval_scalar(&args[0], row)?)
            }
            "length" => {
                expect_arity(name, args, 1)?;
                match self.eval(&args[0], row)? {
                    RtValue::Scalar(v) => rowfns::length_scalar(&v)?,
                    RtValue::List(l) => Value::Int(l.len() as i64),
                    RtValue::Frame(f) => Value::Int(f.n_rows() as i64),
                    other => {
                        return Err(QueryError::runtime(format!(
                            "length() not defined for {}",
                            other.type_name()
                        )))
                    }
                }
            }
            "month" | "year" | "day" | "week" => {
                expect_arity(name, args, 1)?;
                rowfns::datetime_part(name, &self.eval_scalar(&args[0], row)?)?
            }
            "weekday" => {
                expect_arity(name, args, 1)?;
                rowfns::weekday(&self.eval_scalar(&args[0], row)?)?
            }
            "is_weekend" => {
                expect_arity(name, args, 1)?;
                rowfns::is_weekend(&self.eval_scalar(&args[0], row)?)?
            }
            "date" => {
                expect_arity(name, args, 1)?;
                rowfns::date(&self.eval_scalar(&args[0], row)?)?
            }
            "has_topic" => {
                expect_arity(name, args, 2)?;
                let list = self.eval_scalar(&args[0], row)?;
                let item = self.eval_scalar(&args[1], row)?;
                rowfns::has_topic(&list, &item)?
            }
            "in_list" => {
                expect_arity(name, args, 2)?;
                let item = self.eval_scalar(&args[0], row)?;
                let list = match self.eval(&args[1], row)? {
                    RtValue::List(l) => l,
                    RtValue::Scalar(Value::StrList(l)) => {
                        l.into_iter().map(Value::Str).collect()
                    }
                    other => {
                        return Err(QueryError::runtime(format!(
                            "in_list(x, list) expects a list, got {}",
                            other.type_name()
                        )))
                    }
                };
                rowfns::in_list_value(&item, &list)
            }
            "in_list_any" => {
                // Does the StrList cell share any element with the list?
                expect_arity(name, args, 2)?;
                let cell = self.eval_scalar(&args[0], row)?;
                let list = match self.eval(&args[1], row)? {
                    RtValue::List(l) => l,
                    other => {
                        return Err(QueryError::runtime(format!(
                            "in_list_any(topics, list) expects a list, got {}",
                            other.type_name()
                        )))
                    }
                };
                rowfns::in_list_any_value(&cell, &list)
            }
            "is_null" => {
                expect_arity(name, args, 1)?;
                Value::Bool(self.eval_scalar(&args[0], row)?.is_null())
            }
            "coalesce" => {
                expect_arity(name, args, 2)?;
                let v = self.eval_scalar(&args[0], row)?;
                if v.is_null() {
                    self.eval_scalar(&args[1], row)?
                } else {
                    v
                }
            }
            "emoji_count" => {
                expect_arity(name, args, 1)?;
                rowfns::emoji_count(&self.eval_scalar(&args[0], row)?)?
            }
            "has_url" => {
                expect_arity(name, args, 1)?;
                rowfns::has_url(&self.eval_scalar(&args[0], row)?)
            }
            "abs" => {
                expect_arity(name, args, 1)?;
                rowfns::abs_fn(&self.eval_scalar(&args[0], row)?)
            }
            "round" => {
                expect_arity(name, args, 2)?;
                let x = self.eval_scalar(&args[0], row)?;
                let digits = self.eval_scalar(&args[1], row)?;
                rowfns::round_fn(&x, &digits)
            }
            "percent" => {
                expect_arity(name, args, 2)?;
                let num = self.eval_scalar(&args[0], row)?;
                let den = self.eval_scalar(&args[1], row)?;
                rowfns::percent(&num, &den)?
            }
            _ => return Ok(None),
        };
        Ok(Some(RtValue::Scalar(result)))
    }

    fn eval_scalar(&mut self, expr: &Expr, row: Option<&RowCtx>) -> Result<Value, QueryError> {
        self.eval(expr, row)?.into_scalar()
    }

    // ----- methods ---------------------------------------------------------

    fn call_method(
        &mut self,
        receiver: RtValue,
        name: &str,
        args: &[Expr],
        row: Option<&RowCtx>,
    ) -> Result<RtValue, QueryError> {
        let frame = match receiver {
            RtValue::Frame(f) => f,
            other => {
                return Err(QueryError::runtime(format!(
                    "method '{name}' requires a frame receiver, got {}",
                    other.type_name()
                )))
            }
        };
        match name {
            "filter" => {
                expect_arity(name, args, 1)?;
                let mut mask = Vec::with_capacity(frame.n_rows());
                for r in 0..frame.n_rows() {
                    let ctx = RowCtx { frame: &frame, row: r };
                    let v = self.eval(&args[0], Some(&ctx))?.into_scalar()?;
                    mask.push(truthy(&v));
                }
                let out = frame.filter(&mask)?;
                Ok(RtValue::Frame(out))
            }
            "derive" => {
                expect_arity(name, args, 2)?;
                let col_name = self.eval_scalar(&args[0], row)?;
                let Value::Str(col_name) = col_name else {
                    return Err(QueryError::runtime(
                        "derive(name, expr): first argument must be a string",
                    ));
                };
                let mut values = Vec::with_capacity(frame.n_rows());
                for r in 0..frame.n_rows() {
                    let ctx = RowCtx { frame: &frame, row: r };
                    values.push(self.eval(&args[1], Some(&ctx))?.into_scalar()?);
                }
                let column = column_from_values(&col_name, values)?;
                Ok(RtValue::Frame(frame.with_column(column)?))
            }
            "select" => {
                let names = self.string_args(args, row)?;
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                Ok(RtValue::Frame(frame.select(&refs)?))
            }
            "group_by" => {
                // String args are keys; call args are aggregations.
                let mut keys: Vec<String> = Vec::new();
                let mut aggs: Vec<Aggregation> = Vec::new();
                for a in args {
                    match a {
                        Expr::Str(s) => keys.push(s.clone()),
                        Expr::Call { name: agg_name, args: agg_args, .. } => {
                            let kind = AggKind::parse(agg_name).ok_or_else(|| {
                                QueryError::runtime(format!(
                                    "unknown aggregation '{agg_name}' (try count, mean, sum, min, max, std, median, nunique)"
                                ))
                            })?;
                            let column = if agg_args.is_empty() {
                                String::new()
                            } else {
                                match self.eval_scalar(&agg_args[0], row)? {
                                    Value::Str(s) => s,
                                    other => {
                                        return Err(QueryError::runtime(format!(
                                            "aggregation column must be a string, got {other:?}"
                                        )))
                                    }
                                }
                            };
                            if kind != AggKind::Count && column.is_empty() {
                                return Err(QueryError::runtime(format!(
                                    "aggregation '{agg_name}' needs a column argument"
                                )));
                            }
                            aggs.push(Aggregation::new(&column, kind));
                        }
                        other => {
                            return Err(QueryError::runtime(format!(
                                "group_by arguments must be key strings or aggregation calls, got {other:?}"
                            )))
                        }
                    }
                }
                if aggs.is_empty() {
                    aggs.push(Aggregation::new("", AggKind::Count));
                }
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                let out = frame.group_by(&key_refs, &aggs)?;
                self.check_wall_clock()?;
                Ok(RtValue::Frame(out))
            }
            "sort" => {
                let names = self.string_args(args, row)?;
                let col = names
                    .first()
                    .ok_or_else(|| QueryError::runtime("sort(column, [\"asc\"|\"desc\"])"))?;
                let ascending = match names.get(1).map(String::as_str) {
                    None | Some("asc") => true,
                    Some("desc") => false,
                    Some(other) => {
                        return Err(QueryError::runtime(format!(
                            "sort direction must be \"asc\" or \"desc\", got \"{other}\""
                        )))
                    }
                };
                let out = frame.sort_by(col, ascending)?;
                self.check_wall_clock()?;
                Ok(RtValue::Frame(out))
            }
            "head" => {
                expect_arity(name, args, 1)?;
                let n = self.numeric_arg(&args[0], row)?;
                Ok(RtValue::Frame(frame.head(n as usize)))
            }
            "tail" => {
                expect_arity(name, args, 1)?;
                let n = self.numeric_arg(&args[0], row)? as usize;
                let start = frame.n_rows().saturating_sub(n);
                let idx: Vec<usize> = (start..frame.n_rows()).collect();
                Ok(RtValue::Frame(frame.take(&idx)))
            }
            "explode" => {
                expect_arity(name, args, 1)?;
                let col = self.string_arg(&args[0], row)?;
                let out = frame.explode(&col)?;
                self.check_rows(&out)?;
                Ok(RtValue::Frame(out))
            }
            "value_counts" => {
                expect_arity(name, args, 1)?;
                let col = self.string_arg(&args[0], row)?;
                Ok(RtValue::Frame(frame.value_counts(&col)?))
            }
            "crosstab" => {
                expect_arity(name, args, 2)?;
                let a = self.string_arg(&args[0], row)?;
                let b = self.string_arg(&args[1], row)?;
                Ok(RtValue::Frame(frame.crosstab(&a, &b)?))
            }
            "join" => {
                expect_arity(name, args, 3)?;
                let other = self.eval(&args[0], row)?.into_frame()?;
                let key = self.string_arg(&args[1], row)?;
                let kind = match self.string_arg(&args[2], row)?.as_str() {
                    "inner" => JoinKind::Inner,
                    "left" => JoinKind::Left,
                    other => {
                        return Err(QueryError::runtime(format!(
                            "join kind must be \"inner\" or \"left\", got \"{other}\""
                        )))
                    }
                };
                let out = frame.join(&other, &key, kind)?;
                self.check_rows(&out)?;
                self.check_wall_clock()?;
                Ok(RtValue::Frame(out))
            }
            "concat" => {
                expect_arity(name, args, 1)?;
                let other = self.eval(&args[0], row)?.into_frame()?;
                let out = frame.concat(&other)?;
                // concat doubles rows per call: without this check a short
                // program bypasses the row budget exponentially.
                self.check_rows(&out)?;
                Ok(RtValue::Frame(out))
            }
            "rename" => {
                expect_arity(name, args, 2)?;
                let from = self.string_arg(&args[0], row)?;
                let to = self.string_arg(&args[1], row)?;
                Ok(RtValue::Frame(frame.rename(&from, &to)?))
            }
            "drop" => {
                expect_arity(name, args, 1)?;
                let col = self.string_arg(&args[0], row)?;
                Ok(RtValue::Frame(frame.drop_column(&col)?))
            }
            "count" => {
                expect_arity(name, args, 0)?;
                Ok(RtValue::Scalar(Value::Int(frame.n_rows() as i64)))
            }
            "mean" | "sum" | "min" | "max" | "std" | "median" | "nunique" => {
                expect_arity(name, args, 1)?;
                let col_name = self.string_arg(&args[0], row)?;
                let col = frame.column(&col_name)?;
                // Numeric aggregations over non-numeric columns are silent
                // zeros otherwise — surface them as type errors instead.
                if matches!(name, "mean" | "sum" | "std" | "median")
                    && matches!(
                        col.dtype(),
                        allhands_dataframe::DType::Str
                            | allhands_dataframe::DType::StrList
                            | allhands_dataframe::DType::DateTime
                    )
                {
                    return Err(QueryError::runtime(format!(
                        "{name}(\"{col_name}\") needs a numeric column, but '{col_name}' is {:?}",
                        col.dtype()
                    )));
                }
                Ok(RtValue::Scalar(match name {
                    "mean" => col.mean().map_or(Value::Null, Value::Float),
                    "sum" => Value::Float(col.sum()),
                    "min" => col.min(),
                    "max" => col.max(),
                    "std" => col.std().map_or(Value::Null, Value::Float),
                    "median" => col.median().map_or(Value::Null, Value::Float),
                    _ => Value::Int(col.n_unique() as i64),
                }))
            }
            "correlation" => {
                expect_arity(name, args, 2)?;
                let a = self.string_arg(&args[0], row)?;
                let b = self.string_arg(&args[1], row)?;
                Ok(RtValue::Scalar(Value::Float(frame.correlation(&a, &b)?)))
            }
            "column_values" => {
                expect_arity(name, args, 1)?;
                let col = self.string_arg(&args[0], row)?;
                let column = frame.column(&col)?;
                Ok(RtValue::List(column.iter().collect()))
            }
            "cell" => {
                expect_arity(name, args, 2)?;
                let r = self.numeric_arg(&args[0], row)? as usize;
                let col = self.string_arg(&args[1], row)?;
                Ok(RtValue::Scalar(frame.cell(r, &col)?))
            }
            other => Err(QueryError::runtime(format!(
                "unknown frame method '{other}' (try filter, derive, select, group_by, sort, head, explode, value_counts, join, count, mean, …)"
            ))),
        }
    }

    fn string_arg(&mut self, expr: &Expr, row: Option<&RowCtx>) -> Result<String, QueryError> {
        match self.eval_scalar(expr, row)? {
            Value::Str(s) => Ok(s),
            other => Err(QueryError::runtime(format!(
                "expected a string argument, got {other:?}"
            ))),
        }
    }

    fn string_args(
        &mut self,
        args: &[Expr],
        row: Option<&RowCtx>,
    ) -> Result<Vec<String>, QueryError> {
        args.iter().map(|a| self.string_arg(a, row)).collect()
    }

    fn numeric_arg(&mut self, expr: &Expr, row: Option<&RowCtx>) -> Result<f64, QueryError> {
        self.eval_scalar(expr, row)?
            .as_f64()
            .ok_or_else(|| QueryError::runtime("expected a numeric argument"))
    }
}

fn contextualize(mut e: QueryError, line: usize) -> QueryError {
    if e.line == 0 {
        e.line = line;
    }
    e
}

fn expect_arity(name: &str, args: &[Expr], n: usize) -> Result<(), QueryError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(QueryError::runtime(format!(
            "{name}() expects {n} argument(s), got {}",
            args.len()
        )))
    }
}

/// Per-op bulk step cost for the vectorized executor, sized to track the
/// row-wise engine's per-row/per-node charges.
fn op_charge(op: &PlanOp, rows: usize) -> u64 {
    match op {
        PlanOp::Filter { pred, .. } => 1 + rows as u64 * pred.node_count(),
        PlanOp::Derive { expr, .. } => 2 + rows as u64 * expr.node_count(),
        PlanOp::GroupBy { keys, aggs } => 1 + (keys.len() + aggs.len()) as u64,
        PlanOp::Select { cols } => 1 + cols.len() as u64,
        PlanOp::Sort { .. } | PlanOp::TopK { .. } => 3,
        PlanOp::Head { .. } | PlanOp::ValueCounts { .. } => 2,
        PlanOp::Join { .. } => 4,
    }
}

/// AQL numbers are f64 at parse time; integral values become Int so counts
/// behave like integers.
pub(crate) fn number_value(n: f64) -> Value {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        Value::Int(n as i64)
    } else {
        Value::Float(n)
    }
}

pub(crate) fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Null => false,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::StrList(l) => !l.is_empty(),
        Value::DateTime(_) => true,
    }
}

pub(crate) fn binary_op(op: BinOp, l: &Value, r: &Value) -> Result<Value, QueryError> {
    use BinOp::*;
    Ok(match op {
        And => Value::Bool(truthy(l) && truthy(r)),
        Or => Value::Bool(truthy(l) || truthy(r)),
        Eq => Value::Bool(l.loose_eq(r)),
        Ne => Value::Bool(!l.loose_eq(r)),
        Lt | Gt | Le | Ge => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Bool(false));
            }
            let ord = l.total_cmp(r);
            Value::Bool(match op {
                Lt => ord == std::cmp::Ordering::Less,
                Gt => ord == std::cmp::Ordering::Greater,
                Le => ord != std::cmp::Ordering::Greater,
                _ => ord != std::cmp::Ordering::Less,
            })
        }
        Add => match (l, r) {
            (Value::Str(a), Value::Str(b)) => Value::Str(format!("{a}{b}")),
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            // Checked: adversarial programs can overflow i64; spill to f64
            // like a dynamic language instead of panicking in debug builds.
            (Value::Int(a), Value::Int(b)) => a
                .checked_add(*b)
                .map_or(Value::Float(*a as f64 + *b as f64), Value::Int),
            _ => arith(l, r, |a, b| a + b)?,
        },
        Sub => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Int(a), Value::Int(b)) => a
                .checked_sub(*b)
                .map_or(Value::Float(*a as f64 - *b as f64), Value::Int),
            _ => arith(l, r, |a, b| a - b)?,
        },
        Mul => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Int(a), Value::Int(b)) => a
                .checked_mul(*b)
                .map_or(Value::Float(*a as f64 * *b as f64), Value::Int),
            _ => arith(l, r, |a, b| a * b)?,
        },
        Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let denom = r
                .as_f64()
                .ok_or_else(|| QueryError::runtime(format!("cannot divide by {r:?}")))?;
            if denom == 0.0 {
                return Err(QueryError::runtime("division by zero"));
            }
            let numer = l
                .as_f64()
                .ok_or_else(|| QueryError::runtime(format!("cannot divide {l:?}")))?;
            Value::Float(numer / denom)
        }
    })
}

fn arith(l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> Result<Value, QueryError> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok(Value::Float(f(a, b))),
        _ => Err(QueryError::runtime(format!(
            "arithmetic not defined for {l:?} and {r:?}"
        ))),
    }
}

/// Build a typed column from row-wise computed values (type inferred from
/// the non-null values; mixed Int/Float promotes to Float).
pub fn column_from_values(name: &str, values: Vec<Value>) -> Result<Column, QueryError> {
    use allhands_dataframe::DType;
    let mut dtype: Option<DType> = None;
    for v in &values {
        let t = match v {
            Value::Null => continue,
            Value::Int(_) => DType::Int,
            Value::Float(_) => DType::Float,
            Value::Str(_) => DType::Str,
            Value::Bool(_) => DType::Bool,
            Value::DateTime(_) => DType::DateTime,
            Value::StrList(_) => DType::StrList,
        };
        dtype = Some(match (dtype, t) {
            (None, t) => t,
            (Some(DType::Int), DType::Float) | (Some(DType::Float), DType::Int) => DType::Float,
            (Some(prev), t) if prev == t => prev,
            (Some(prev), t) => {
                return Err(QueryError::runtime(format!(
                    "derived column '{name}' mixes {prev:?} and {t:?}"
                )))
            }
        });
    }
    let dtype = dtype.unwrap_or(DType::Str); // all-null: arbitrary
    let mut data = ColumnData::empty(dtype);
    for v in values {
        let coerced = match (&v, dtype) {
            (Value::Int(i), DType::Float) => Value::Float(*i as f64),
            _ => v,
        };
        data.push(coerced)?;
    }
    Ok(Column::new(name, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use allhands_dataframe::CivilDateTime;

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            Column::from_strs("product", &["A", "B", "A", "C"]),
            Column::from_f64s("sentiment", &[0.5, -0.5, 1.0, 0.0]),
            Column::from_str_lists("topics", vec![
                vec!["bug".into()],
                vec!["bug".into(), "ui".into()],
                vec!["perf".into()],
                vec![],
            ]),
            Column::from_datetimes("ts", &[
                CivilDateTime::date(2023, 4, 3).to_epoch(),  // Monday
                CivilDateTime::date(2023, 4, 8).to_epoch(),  // Saturday
                CivilDateTime::date(2023, 5, 1).to_epoch(),
                CivilDateTime::date(2023, 5, 2).to_epoch(),
            ]),
        ])
        .unwrap()
    }

    fn run(src: &str) -> (Vec<RtValue>, Option<QueryError>) {
        let mut interp = Interpreter::new(1_000_000, 1_000_000);
        interp.bind("df", RtValue::Frame(frame()));
        let program = parse_program(src).unwrap();
        let err = interp.run(&program).err();
        (interp.take_effects().shown, err)
    }

    fn run_scalar(src: &str) -> Value {
        let (shown, err) = run(src);
        assert!(err.is_none(), "{err:?}");
        shown.into_iter().next().unwrap().into_scalar().unwrap()
    }

    /// A single join/group_by/sort can cost thousands of steps' worth of
    /// wall time, so those operations must consult the cell deadline
    /// directly — even between the interpreter's periodic every-4096-steps
    /// checks.
    #[test]
    fn frame_ops_check_wall_clock_between_periodic_checks() {
        for src in [
            r#"show(df.sort("sentiment"))"#,
            r#"show(df.group_by("product", count()))"#,
            r#"show(df.join(df, "product", "inner"))"#,
        ] {
            let mut interp = Interpreter::new(1_000_000, 1_000_000);
            interp.bind("df", RtValue::Frame(frame()));
            // An already-expired deadline...
            interp.start_cell_clock(Some(std::time::Duration::ZERO));
            // ...with the periodic check out of reach: the program takes a
            // handful of steps, nowhere near the next multiple of 4096.
            interp.steps_taken = 1;
            let program = parse_program(src).unwrap();
            let err = interp.run(&program).expect_err("expired deadline must stop the op");
            assert!(err.to_string().contains("wall-clock"), "{src}: {err}");
        }
    }

    #[test]
    fn filter_with_row_expr() {
        let v = run_scalar(r#"show(df.filter(product == "A").count())"#);
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn filter_with_logic_and_functions() {
        let v = run_scalar(r#"show(df.filter(has_topic(topics, "bug") && sentiment < 0).count())"#);
        assert_eq!(v, Value::Int(1));
    }

    #[test]
    fn derive_and_group() {
        let (shown, err) = run(
            r#"let g = df.derive("m", month(ts)).group_by("m", mean("sentiment"), count());
show(g)"#,
        );
        assert!(err.is_none(), "{err:?}");
        let f = shown.into_iter().next().unwrap().into_frame().unwrap();
        assert_eq!(f.n_rows(), 2);
        assert!(f.has_column("sentiment_mean"));
        assert!(f.has_column("count"));
    }

    #[test]
    fn weekend_detection() {
        let v = run_scalar(r#"show(df.filter(is_weekend(ts)).count())"#);
        assert_eq!(v, Value::Int(1));
    }

    #[test]
    fn explode_and_value_counts() {
        let (shown, _) = run(r#"show(df.explode("topics").value_counts("topics"))"#);
        let f = shown.into_iter().next().unwrap().into_frame().unwrap();
        assert_eq!(f.cell(0, "topics").unwrap(), Value::str("bug"));
        assert_eq!(f.cell(0, "count").unwrap(), Value::Int(2));
    }

    #[test]
    fn arithmetic_and_percent() {
        assert_eq!(run_scalar("show(1 + 2 * 3)"), Value::Int(7));
        assert_eq!(run_scalar("show(7 / 2)"), Value::Float(3.5));
        assert_eq!(run_scalar("show(percent(1, 8))"), Value::Float(12.5));
        let (_, err) = run("show(1 / 0)");
        assert!(err.unwrap().message.contains("division by zero"));
    }

    #[test]
    fn in_list_row_filter() {
        let v = run_scalar(r#"show(df.filter(in_list(product, ["A", "C"])).count())"#);
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn column_values_then_in_list() {
        let v = run_scalar(
            r#"let top = df.value_counts("product").head(1).column_values("product");
show(df.filter(in_list(product, top)).count())"#,
        );
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn coalesce_and_is_null_after_left_join() {
        let src = r#"let a = df.filter(product == "A").value_counts("product");
let c = df.filter(product == "C").value_counts("product");
let j = a.join(c, "product", "left");
show(j.filter(is_null(count_right)).count());
let k = j.derive("total", count + coalesce(count_right, 0));
show(k.cell(0, "total"))"#;
        let (shown, err) = run(src);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(shown[0].clone().into_scalar().unwrap(), Value::Int(1));
        assert_eq!(shown[1].clone().into_scalar().unwrap(), Value::Int(2));
    }

    #[test]
    fn unknown_names_error_helpfully() {
        let (_, err) = run("show(nonexistent)");
        assert!(err.unwrap().message.contains("unknown name"));
        let (_, err) = run("show(df.bogus_method())");
        assert!(err.unwrap().message.contains("unknown frame method"));
        let (_, err) = run("show(bogus_fn(df))");
        assert!(err.unwrap().message.contains("unknown function"));
    }

    #[test]
    fn step_budget_enforced() {
        let mut interp = Interpreter::new(10, 1_000_000);
        interp.bind("df", RtValue::Frame(frame()));
        let program = parse_program(r#"show(df.filter(sentiment > 0).count())"#).unwrap();
        let err = interp.run(&program).unwrap_err();
        assert!(err.message.contains("step budget"));
    }

    #[test]
    fn string_concat_and_compare() {
        assert_eq!(run_scalar(r#"show("a" + "b")"#), Value::str("ab"));
        assert_eq!(run_scalar(r#"show("abc" == "abc")"#), Value::Bool(true));
        assert_eq!(run_scalar(r#"show(lower("ABC"))"#), Value::str("abc"));
    }

    #[test]
    fn short_circuit_evaluation() {
        // The rhs would error (unknown name) but must not evaluate.
        assert_eq!(run_scalar("show(false && boom)"), Value::Bool(false));
        assert_eq!(run_scalar("show(true || boom)"), Value::Bool(true));
    }

    #[test]
    fn derive_infers_types() {
        let c = column_from_values("x", vec![Value::Int(1), Value::Float(2.5)]).unwrap();
        assert_eq!(c.dtype(), allhands_dataframe::DType::Float);
        let c = column_from_values("x", vec![Value::Null, Value::str("a")]).unwrap();
        assert_eq!(c.dtype(), allhands_dataframe::DType::Str);
        assert!(column_from_values("x", vec![Value::Int(1), Value::str("a")]).is_err());
    }
}
