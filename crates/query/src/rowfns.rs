//! Scalar kernels for the pure AQL row functions.
//!
//! Both execution engines route through these: the row-wise interpreter
//! ([`crate::interp`]) calls them once per row after evaluating arguments,
//! and the vectorized evaluator ([`crate::exec`]) calls them per masked row
//! on its generic path (or mirrors them exactly in a typed fast path).
//! Keeping the value-level semantics in one place is what makes the
//! byte-identity contract between the engines auditable.

use crate::error::QueryError;
use allhands_dataframe::{CivilDateTime, Value};

pub(crate) fn contains(hay: &Value, needle: &Value) -> Result<Value, QueryError> {
    match (hay, needle) {
        (Value::Null, _) => Ok(Value::Bool(false)),
        (Value::Str(h), Value::Str(n)) => {
            Ok(Value::Bool(h.to_lowercase().contains(&n.to_lowercase())))
        }
        _ => Err(QueryError::runtime(
            "contains(text, needle) expects string arguments",
        )),
    }
}

pub(crate) fn starts_with(hay: &Value, needle: &Value) -> Value {
    match (hay, needle) {
        (Value::Str(h), Value::Str(n)) => {
            Value::Bool(h.to_lowercase().starts_with(&n.to_lowercase()))
        }
        _ => Value::Bool(false),
    }
}

pub(crate) fn lower(v: Value) -> Value {
    match v {
        Value::Str(s) => Value::Str(s.to_lowercase()),
        Value::Null => Value::Null,
        other => other,
    }
}

pub(crate) fn upper(v: Value) -> Value {
    match v {
        Value::Str(s) => Value::Str(s.to_uppercase()),
        Value::Null => Value::Null,
        other => other,
    }
}

/// `length()` over a scalar cell. The interpreter additionally accepts
/// list/frame receivers before reaching this (see `try_row_function`).
pub(crate) fn length_scalar(v: &Value) -> Result<Value, QueryError> {
    match v {
        Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
        Value::StrList(l) => Ok(Value::Int(l.len() as i64)),
        Value::Null => Ok(Value::Null),
        _ => Err(QueryError::runtime("length() not defined for scalar")),
    }
}

/// `month`/`year`/`day`/`week` over a datetime cell.
pub(crate) fn datetime_part(name: &str, v: &Value) -> Result<Value, QueryError> {
    match v {
        Value::DateTime(t) => {
            let d = CivilDateTime::from_epoch(*t);
            Ok(Value::Int(match name {
                "month" => i64::from(d.month),
                "year" => i64::from(d.year),
                "day" => i64::from(d.day),
                _ => i64::from(d.iso_week()),
            }))
        }
        Value::Null => Ok(Value::Null),
        other => Err(QueryError::runtime(format!(
            "{name}() expects a datetime, got {other:?}"
        ))),
    }
}

pub(crate) fn weekday(v: &Value) -> Result<Value, QueryError> {
    match v {
        Value::DateTime(t) => Ok(Value::Str(
            CivilDateTime::from_epoch(*t).weekday().name().to_string(),
        )),
        Value::Null => Ok(Value::Null),
        other => Err(QueryError::runtime(format!(
            "weekday() expects a datetime, got {other:?}"
        ))),
    }
}

pub(crate) fn is_weekend(v: &Value) -> Result<Value, QueryError> {
    match v {
        Value::DateTime(t) => Ok(Value::Bool(
            CivilDateTime::from_epoch(*t).weekday().is_weekend(),
        )),
        Value::Null => Ok(Value::Bool(false)),
        other => Err(QueryError::runtime(format!(
            "is_weekend() expects a datetime, got {other:?}"
        ))),
    }
}

pub(crate) fn date(v: &Value) -> Result<Value, QueryError> {
    match v {
        Value::DateTime(t) => {
            let d = CivilDateTime::from_epoch(*t);
            Ok(Value::Str(format!(
                "{:04}-{:02}-{:02}",
                d.year, d.month, d.day
            )))
        }
        Value::Null => Ok(Value::Null),
        other => Err(QueryError::runtime(format!(
            "date() expects a datetime, got {other:?}"
        ))),
    }
}

pub(crate) fn has_topic(list: &Value, item: &Value) -> Result<Value, QueryError> {
    match (list, item) {
        (Value::StrList(l), Value::Str(t)) => {
            let t = t.to_lowercase();
            Ok(Value::Bool(l.iter().any(|x| x.to_lowercase() == t)))
        }
        (Value::Null, _) => Ok(Value::Bool(false)),
        _ => Err(QueryError::runtime(
            "has_topic(topics, name) expects a topic list and a string",
        )),
    }
}

/// Case-insensitive equality for strings, loose numeric equality otherwise.
pub(crate) fn scalar_eq_ci(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.to_lowercase() == y.to_lowercase(),
        _ => a.loose_eq(b),
    }
}

/// `in_list(item, list)` once the list has been materialized as values.
pub(crate) fn in_list_value(item: &Value, list: &[Value]) -> Value {
    Value::Bool(list.iter().any(|v| scalar_eq_ci(v, item)))
}

/// `in_list_any(cell, list)` once the list has been materialized.
pub(crate) fn in_list_any_value(cell: &Value, list: &[Value]) -> Value {
    match cell {
        Value::StrList(items) => Value::Bool(items.iter().any(|t| {
            list.iter().any(|v| scalar_eq_ci(v, &Value::Str(t.clone())))
        })),
        Value::Null => Value::Bool(false),
        other => Value::Bool(list.iter().any(|v| scalar_eq_ci(v, other))),
    }
}

pub(crate) fn emoji_count(v: &Value) -> Result<Value, QueryError> {
    match v {
        Value::Str(s) => Ok(Value::Int(allhands_text::extract_emoji(s).len() as i64)),
        Value::Null => Ok(Value::Int(0)),
        other => Err(QueryError::runtime(format!(
            "emoji_count() expects a string, got {other:?}"
        ))),
    }
}

pub(crate) fn has_url(v: &Value) -> Value {
    match v {
        Value::Str(s) => Value::Bool(
            s.contains("http://") || s.contains("https://") || s.contains("www."),
        ),
        _ => Value::Bool(false),
    }
}

pub(crate) fn abs_fn(v: &Value) -> Value {
    match v.as_f64() {
        Some(f) => crate::interp::number_value(f.abs()),
        None => Value::Null,
    }
}

pub(crate) fn round_fn(x: &Value, digits: &Value) -> Value {
    match (x.as_f64(), digits.as_f64()) {
        (Some(x), Some(d)) => {
            let m = 10f64.powi(d as i32);
            Value::Float((x * m).round() / m)
        }
        _ => Value::Null,
    }
}

pub(crate) fn percent(num: &Value, den: &Value) -> Result<Value, QueryError> {
    match (num.as_f64(), den.as_f64()) {
        (Some(_), Some(0.0)) => Err(QueryError::runtime("percent(): denominator is zero")),
        (Some(n), Some(d)) => Ok(Value::Float((n / d * 1000.0).round() / 10.0)),
        _ => Err(QueryError::runtime("percent(a, b) expects numeric arguments")),
    }
}
