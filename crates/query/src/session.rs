//! The stateful session kernel (the paper's Jupyter-based Code Executor,
//! Sec. 3.4.3).
//!
//! A [`Session`] executes code *cells*. Bindings persist across cells so
//! follow-up questions can reference earlier results; each cell returns a
//! [`CellResult`] carrying the executor's three feedback channels from the
//! paper — logs, outputs, artifacts — plus the error (if any) that the
//! agent's self-reflection loop consumes.

use crate::figure::FigureSpec;
use crate::interp::{Interpreter, RtValue};
use crate::parser::parse_program;
use allhands_dataframe::DataFrame;

/// Sandbox limits for a session.
#[derive(Debug, Clone, Copy)]
pub struct SessionLimits {
    /// Total expression-evaluation steps allowed per cell.
    pub step_budget: u64,
    /// Maximum rows any produced frame may have.
    pub max_rows: usize,
    /// Wall-clock limit per cell (`None` = unlimited). Checked periodically
    /// during evaluation; exceeding it fails the cell with an error — it
    /// never panics — so the agent's reflection loop sees it like any other
    /// executor failure.
    pub max_cell_duration: Option<std::time::Duration>,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits { step_budget: 50_000_000, max_rows: 5_000_000, max_cell_duration: None }
    }
}

/// The result of executing one cell.
#[derive(Debug, Default)]
pub struct CellResult {
    /// Values passed to `show(...)` — the cell's outputs.
    pub shown: Vec<RtValue>,
    /// Messages passed to `log(...)`.
    pub logs: Vec<String>,
    /// Error message, if the cell failed to parse or execute.
    pub error: Option<String>,
}

impl CellResult {
    /// Figure artifacts among the shown outputs.
    pub fn figures(&self) -> Vec<&FigureSpec> {
        self.shown
            .iter()
            .filter_map(|v| match v {
                RtValue::Figure(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    /// Did the cell succeed?
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// A stateful execution session.
pub struct Session {
    interp: Interpreter,
    limits: SessionLimits,
    /// History of executed cell sources (successful and failed).
    history: Vec<String>,
}

impl Session {
    /// Create a session with the given limits.
    pub fn new(limits: SessionLimits) -> Self {
        Session {
            interp: Interpreter::new(limits.step_budget, limits.max_rows),
            limits,
            history: Vec::new(),
        }
    }

    /// Bind a dataframe (e.g. the structured feedback table as `feedback`).
    pub fn bind_frame(&mut self, name: &str, frame: DataFrame) {
        self.interp.bind(name, RtValue::Frame(frame));
    }

    /// Bind an arbitrary value.
    pub fn bind(&mut self, name: &str, value: RtValue) {
        self.interp.bind(name, value);
    }

    /// Look up a binding (used by tests and the agent's summarizer).
    pub fn get(&self, name: &str) -> Option<&RtValue> {
        self.interp.get(name)
    }

    /// Register a custom plugin, mirroring the paper's self-defined
    /// feedback-analysis plugins.
    pub fn register_plugin(&mut self, name: &str, f: crate::plugins::PluginFn) {
        self.interp.register_plugin(name, f);
    }

    /// Override the query execution engine (defaults to the vectorized
    /// planner; `ALLHANDS_QUERY_ENGINE=rowwise` selects the row-wise
    /// reference engine).
    pub fn set_engine(&mut self, engine: crate::interp::QueryEngine) {
        self.interp.set_engine(engine);
    }

    /// The active query execution engine.
    pub fn engine(&self) -> crate::interp::QueryEngine {
        self.interp.engine()
    }

    /// Route `query.plan.*` volatile counters into an obs recorder.
    pub fn set_recorder(&mut self, recorder: allhands_obs::Recorder) {
        self.interp.set_recorder(recorder);
    }

    /// Plan-cache counters for this session (hits, misses, rules fired,
    /// rows pruned, fallbacks).
    pub fn plan_cache_stats(&self) -> crate::interp::PlanCacheStats {
        self.interp.plan_cache_stats()
    }

    /// Execute one cell. Never panics: all failures land in
    /// [`CellResult::error`].
    pub fn execute(&mut self, source: &str) -> CellResult {
        self.history.push(source.to_string());
        let program = match parse_program(source) {
            Ok(p) => p,
            Err(e) => {
                return CellResult { error: Some(format!("syntax error: {e}")), ..Default::default() }
            }
        };
        // Refresh the per-cell budgets (bindings persist, budgets reset).
        self.interp.reset_budget(self.limits.step_budget);
        self.interp.start_cell_clock(self.limits.max_cell_duration);
        let error = self.interp.run(&program).err().map(|e| e.to_string());
        let effects = self.interp.take_effects();
        CellResult { shown: effects.shown, logs: effects.logs, error }
    }

    /// The sources executed so far (the chat-history substrate the planner
    /// keeps for follow-ups).
    pub fn history(&self) -> &[String] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allhands_dataframe::Column;

    fn session() -> Session {
        let mut s = Session::new(SessionLimits::default());
        s.bind_frame(
            "feedback",
            DataFrame::new(vec![
                Column::from_strs("label", &["bug", "praise", "bug"]),
                Column::from_f64s("sentiment", &[-0.5, 0.9, -0.2]),
            ])
            .unwrap(),
        );
        s
    }

    #[test]
    fn cell_outputs_and_history() {
        let mut s = session();
        let r = s.execute(r#"show(feedback.count()); log("done")"#);
        assert!(r.ok());
        assert_eq!(r.shown.len(), 1);
        assert_eq!(r.logs, vec!["done"]);
        assert_eq!(s.history().len(), 1);
    }

    #[test]
    fn syntax_errors_reported() {
        let mut s = session();
        let r = s.execute("let = broken");
        assert!(!r.ok());
        assert!(r.error.unwrap().contains("syntax error"));
    }

    #[test]
    fn budget_resets_between_cells() {
        let mut s = Session::new(SessionLimits {
            step_budget: 2_000,
            max_rows: 1_000,
            ..SessionLimits::default()
        });
        s.bind_frame(
            "feedback",
            DataFrame::new(vec![Column::from_i64s("x", &[1, 2, 3])]).unwrap(),
        );
        for _ in 0..5 {
            let r = s.execute("show(feedback.count())");
            assert!(r.ok(), "{:?}", r.error);
        }
    }

    #[test]
    fn wall_clock_budget_errors_instead_of_panicking() {
        // A zero wall-clock budget must fail the cell on its first check —
        // as a reported error, never a panic — and leave the session usable.
        let mut s = Session::new(SessionLimits {
            max_cell_duration: Some(std::time::Duration::ZERO),
            ..SessionLimits::default()
        });
        s.bind_frame(
            "feedback",
            DataFrame::new(vec![Column::from_i64s("x", &[1, 2, 3])]).unwrap(),
        );
        let r = s.execute("show(feedback.count())");
        let err = r.error.expect("zero wall-clock budget must trip");
        assert!(err.contains("cell wall-clock"), "{err}");
        // Disarming the clock restores normal execution in the same session.
        s.limits.max_cell_duration = None;
        let r = s.execute("show(feedback.count())");
        assert!(r.ok(), "{:?}", r.error);
    }

    #[test]
    fn generous_wall_clock_budget_is_inert() {
        let mut s = Session::new(SessionLimits {
            max_cell_duration: Some(std::time::Duration::from_secs(3600)),
            ..SessionLimits::default()
        });
        s.bind_frame(
            "feedback",
            DataFrame::new(vec![Column::from_i64s("x", &[1, 2, 3])]).unwrap(),
        );
        let r = s.execute("show(feedback.count())");
        assert!(r.ok(), "{:?}", r.error);
    }

    #[test]
    fn figures_extracted() {
        let mut s = session();
        let r = s.execute(
            r#"show(bar_chart(feedback.value_counts("label"), "label", "count", "labels"))"#,
        );
        assert!(r.ok(), "{:?}", r.error);
        assert_eq!(r.figures().len(), 1);
    }

    #[test]
    fn failed_cell_keeps_session_usable() {
        let mut s = session();
        let r1 = s.execute("show(feedback.bogus())");
        assert!(!r1.ok());
        let r2 = s.execute("show(feedback.count())");
        assert!(r2.ok());
    }
}
