//! Recursive-descent parser for AQL.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::error::QueryError;
use crate::lexer::{Lexer, Token, TokenKind};

/// Parse an AQL program.
pub fn parse_program(source: &str) -> Result<Program, QueryError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, QueryError> {
        if self.peek() == kind {
            Ok(self.advance())
        } else {
            Err(QueryError::at(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn program(&mut self) -> Result<Program, QueryError> {
        let mut statements = Vec::new();
        while *self.peek() != TokenKind::Eof {
            statements.push(self.statement()?);
            // Statement separators: one or more semicolons.
            while *self.peek() == TokenKind::Semi {
                self.advance();
            }
        }
        if statements.is_empty() {
            return Err(QueryError::at(1, "empty program"));
        }
        Ok(Program { statements })
    }

    fn statement(&mut self) -> Result<Stmt, QueryError> {
        let line = self.line();
        if *self.peek() == TokenKind::Let {
            self.advance();
            let name = match self.advance().kind {
                TokenKind::Ident(n) => n,
                other => {
                    return Err(QueryError::at(line, format!("expected name after 'let', found {other:?}")))
                }
            };
            self.expect(&TokenKind::Assign, "'='")?;
            let expr = self.expr()?;
            Ok(Stmt::Let { name, expr, line })
        } else {
            let expr = self.expr()?;
            Ok(Stmt::Expr { expr, line })
        }
    }

    fn expr(&mut self) -> Result<Expr, QueryError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == TokenKind::OrOr {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == TokenKind::AndAnd {
            self.advance();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, QueryError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn add_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn unary(&mut self) -> Result<Expr, QueryError> {
        match self.peek() {
            TokenKind::Minus => {
                self.advance();
                Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(self.unary()?) })
            }
            TokenKind::Bang => {
                self.advance();
                Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(self.unary()?) })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, QueryError> {
        let mut expr = self.primary()?;
        while *self.peek() == TokenKind::Dot {
            self.advance();
            let line = self.line();
            let name = match self.advance().kind {
                TokenKind::Ident(n) => n,
                other => {
                    return Err(QueryError::at(line, format!("expected method name, found {other:?}")))
                }
            };
            self.expect(&TokenKind::LParen, "'(' after method name")?;
            let args = self.args()?;
            expr = Expr::Method { recv: Box::new(expr), name, args, line };
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, QueryError> {
        let line = self.line();
        match self.advance().kind {
            TokenKind::Number(n) => Ok(Expr::Number(n)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::Bool(b) => Ok(Expr::Bool(b)),
            TokenKind::Ident(name) => {
                if *self.peek() == TokenKind::LParen {
                    self.advance();
                    let args = self.args()?;
                    Ok(Expr::Call { name, args, line })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::LParen => {
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if *self.peek() != TokenKind::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if *self.peek() == TokenKind::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket, "']'")?;
                Ok(Expr::List(items))
            }
            other => Err(QueryError::at(line, format!("unexpected token {other:?}"))),
        }
    }

    /// Comma-separated argument list terminated by `)` (consumes the paren).
    fn args(&mut self) -> Result<Vec<Expr>, QueryError> {
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn let_and_method_chain() {
        let p = parse_program(r#"let x = df.filter(a > 1).head(3); show(x)"#).unwrap();
        assert_eq!(p.statements.len(), 2);
        match &p.statements[0] {
            Stmt::Let { name, expr, .. } => {
                assert_eq!(name, "x");
                match expr {
                    Expr::Method { name, .. } => assert_eq!(name, "head"),
                    other => panic!("expected method chain, got {other:?}"),
                }
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 == 7  parses as  (1 + (2*3)) == 7
        let p = parse_program("1 + 2 * 3 == 7").unwrap();
        match &p.statements[0] {
            Stmt::Expr { expr: Expr::Binary { op: BinOp::Eq, lhs, .. }, .. } => match &**lhs {
                Expr::Binary { op: BinOp::Add, rhs, .. } => match &**rhs {
                    Expr::Binary { op: BinOp::Mul, .. } => {}
                    other => panic!("expected mul on rhs of add, got {other:?}"),
                },
                other => panic!("expected add under eq, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn logical_precedence() {
        // a || b && c  parses as  a || (b && c)
        let p = parse_program("a || b && c").unwrap();
        match &p.statements[0] {
            Stmt::Expr { expr: Expr::Binary { op: BinOp::Or, rhs, .. }, .. } => {
                assert!(matches!(&**rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn list_literals_and_calls() {
        let p = parse_program(r#"f(["a", "b"], 3)"#).unwrap();
        match &p.statements[0] {
            Stmt::Expr { expr: Expr::Call { name, args, .. }, .. } => {
                assert_eq!(name, "f");
                assert!(matches!(args[0], Expr::List(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_ops() {
        assert!(parse_program("!is_null(x)").is_ok());
        assert!(parse_program("-3 + 4").is_ok());
    }

    #[test]
    fn parse_errors_have_lines() {
        let err = parse_program("let x =\nlet").unwrap_err();
        assert!(err.line >= 1);
        assert!(parse_program("").is_err());
        assert!(parse_program("f(").is_err());
        assert!(parse_program("df.").is_err());
    }

    #[test]
    fn multiline_with_semis() {
        let src = "let a = 1;\nlet b = a + 1;\nshow(b)";
        assert_eq!(parse_program(src).unwrap().statements.len(), 3);
    }

    #[test]
    fn reference_programs_from_benchmark_parse() {
        // A few representative reference programs from the question suite.
        let samples = [
            r#"show(feedback.explode("topics").group_by("topics", mean("sentiment")).sort("sentiment_mean", "asc").head(1))"#,
            r#"let e = feedback.explode("topics").derive("month", month(timestamp));
let apr = e.filter(month == 4).value_counts("topics");
let may = e.filter(month == 5).value_counts("topics");
let j = may.join(apr, "topics", "left").derive("increase", count - coalesce(count_right, 0));
show(j.sort("increase", "desc").head(3))"#,
            r#"let games = feedback.filter(in_list(product, ["Minecraft", "CallofDuty"]));
show(pie_chart(games.explode("topics").value_counts("topics").head(5), "topics", "count", "t"))"#,
        ];
        for s in samples {
            parse_program(s).unwrap_or_else(|e| panic!("failed to parse {s}: {e}"));
        }
    }
}
