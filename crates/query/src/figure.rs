//! Figure artifacts: the structured output of plotting plugins.
//!
//! The paper's executor returns images; here figures are structured specs
//! with a deterministic ASCII rendering, which keeps the multi-modal
//! response machinery (and the readability judge, which inspects label
//! density and title presence) fully testable.

use serde::{Deserialize, Serialize};

/// What kind of chart a [`FigureSpec`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FigureKind {
    Bar,
    GroupedBar,
    Line,
    Pie,
    Histogram,
    WordCloud,
    /// Stacked topic-frequency streams over time (Gao et al.'s issue river,
    /// cited by the paper's Case 2).
    IssueRiver,
}

/// One named data series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    pub name: String,
    pub values: Vec<f64>,
}

/// A chart specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSpec {
    pub kind: FigureKind,
    pub title: String,
    /// Category labels along the x axis (or words for a word cloud).
    pub x_labels: Vec<String>,
    /// One or more series of `x_labels.len()` values each. For word clouds,
    /// a single series of weights.
    pub series: Vec<Series>,
}

impl FigureSpec {
    /// Construct, validating shape: every series must carry exactly one
    /// value per x label. A mismatch is a typed [`QueryError`] — plotting
    /// plugins propagate it to the executor's error channel (where the
    /// agent's reflection loop can react), never a panic.
    pub fn new(
        kind: FigureKind,
        title: &str,
        x_labels: Vec<String>,
        series: Vec<Series>,
    ) -> Result<Self, crate::QueryError> {
        for s in &series {
            if s.values.len() != x_labels.len() {
                return Err(crate::QueryError::runtime(format!(
                    "figure series '{}' has {} values for {} x labels",
                    s.name,
                    s.values.len(),
                    x_labels.len()
                )));
            }
        }
        Ok(FigureSpec { kind, title: title.to_string(), x_labels, series })
    }

    /// Total number of data points.
    pub fn n_points(&self) -> usize {
        self.series.iter().map(|s| s.values.len()).sum()
    }

    /// A crude layout-quality heuristic in [0, 1]: penalizes missing
    /// titles, crowded axes (many labels), and empty data. The readability
    /// judge consumes this, mirroring the paper's observation that
    /// figure answers lose readability points to layout problems.
    pub fn layout_quality(&self) -> f64 {
        let mut q: f64 = 1.0;
        if self.title.trim().is_empty() {
            q -= 0.3;
        }
        if self.x_labels.is_empty() || self.series.iter().all(|s| s.values.is_empty()) {
            return 0.0;
        }
        if self.x_labels.len() > 25 {
            q -= 0.3; // crowded axis
        } else if self.x_labels.len() > 12 {
            q -= 0.15;
        }
        let long_labels = self.x_labels.iter().filter(|l| l.chars().count() > 18).count();
        if long_labels * 2 > self.x_labels.len() {
            q -= 0.15; // labels will overlap
        }
        q.max(0.0)
    }

    /// Deterministic ASCII rendering (the "image" in terminal contexts).
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("[{:?}] {}\n", self.kind, self.title));
        match self.kind {
            FigureKind::WordCloud => self.render_wordcloud(&mut out),
            FigureKind::Pie => self.render_pie(&mut out),
            _ => self.render_bars(&mut out),
        }
        out
    }

    fn render_bars(&self, out: &mut String) {
        let max = self
            .series
            .iter()
            .flat_map(|s| &s.values)
            .fold(0.0f64, |a, &b| a.max(b.abs()))
            .max(1e-9);
        let label_w = self.x_labels.iter().map(|l| l.chars().count()).max().unwrap_or(1).min(24);
        for (i, label) in self.x_labels.iter().enumerate() {
            for series in &self.series {
                let v = series.values.get(i).copied().unwrap_or(0.0);
                let bar_len = ((v.abs() / max) * 40.0).round() as usize;
                let tag = if self.series.len() > 1 {
                    format!("[{}] ", series.name)
                } else {
                    String::new()
                };
                let shown: String = label.chars().take(24).collect();
                out.push_str(&format!(
                    "{tag}{shown:label_w$} | {} {v:.2}\n",
                    "█".repeat(bar_len.max(if v.abs() > 0.0 { 1 } else { 0 })),
                ));
            }
        }
    }

    fn render_pie(&self, out: &mut String) {
        let Some(series) = self.series.first() else { return };
        let total: f64 = series.values.iter().sum::<f64>().max(1e-9);
        for (label, v) in self.x_labels.iter().zip(&series.values) {
            let pct = v / total * 100.0;
            let slices = (pct / 5.0).round() as usize;
            out.push_str(&format!("{label}: {} {pct:.1}%\n", "●".repeat(slices.max(1))));
        }
    }

    fn render_wordcloud(&self, out: &mut String) {
        let Some(series) = self.series.first() else { return };
        let max = series.values.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
        let mut pairs: Vec<(&String, f64)> =
            self.x_labels.iter().zip(series.values.iter().copied()).collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (word, weight) in pairs.into_iter().take(30) {
            let size = 1 + ((weight / max) * 3.0).round() as usize;
            // Font size simulated by repetition of the word's first letter
            // marker; the word itself appears once.
            out.push_str(&format!("{} {word}\n", "*".repeat(size)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar() -> FigureSpec {
        FigureSpec::new(
            FigureKind::Bar,
            "Tweets per timezone",
            vec!["ET".into(), "PT".into()],
            vec![Series { name: "count".into(), values: vec![10.0, 4.0] }],
        )
        .unwrap()
    }

    #[test]
    fn render_contains_labels_and_title() {
        let ascii = bar().render_ascii();
        assert!(ascii.contains("Tweets per timezone"));
        assert!(ascii.contains("ET"));
        assert!(ascii.contains('█'));
    }

    #[test]
    fn layout_quality_ranges() {
        assert!(bar().layout_quality() > 0.9);
        let untitled = FigureSpec::new(
            FigureKind::Bar,
            "",
            vec!["a".into()],
            vec![Series { name: "c".into(), values: vec![1.0] }],
        )
        .unwrap();
        assert!(untitled.layout_quality() < 0.9);
        let crowded = FigureSpec::new(
            FigureKind::Bar,
            "t",
            (0..30).map(|i| format!("label-{i}")).collect(),
            vec![Series { name: "c".into(), values: vec![1.0; 30] }],
        )
        .unwrap();
        assert!(crowded.layout_quality() < bar().layout_quality());
        let empty = FigureSpec::new(FigureKind::Bar, "t", vec![], vec![]).unwrap();
        assert_eq!(empty.layout_quality(), 0.0);
    }

    #[test]
    fn mismatched_series_is_a_typed_error() {
        let err = FigureSpec::new(
            FigureKind::Bar,
            "t",
            vec!["a".into()],
            vec![Series { name: "c".into(), values: vec![1.0, 2.0] }],
        )
        .expect_err("shape mismatch must be an error value");
        assert!(err.to_string().contains("2 values for 1 x labels"), "{err}");
    }

    #[test]
    fn pie_renders_percentages() {
        let pie = FigureSpec::new(
            FigureKind::Pie,
            "Labels",
            vec!["x".into(), "y".into()],
            vec![Series { name: "count".into(), values: vec![3.0, 1.0] }],
        )
        .unwrap();
        let ascii = pie.render_ascii();
        assert!(ascii.contains("75.0%"));
        assert!(ascii.contains("25.0%"));
    }

    #[test]
    fn wordcloud_sorts_by_weight() {
        let wc = FigureSpec::new(
            FigureKind::WordCloud,
            "words",
            vec!["rare".into(), "common".into()],
            vec![Series { name: "w".into(), values: vec![1.0, 9.0] }],
        )
        .unwrap();
        let ascii = wc.render_ascii();
        let common_pos = ascii.find("common").unwrap();
        let rare_pos = ascii.find("rare").unwrap();
        assert!(common_pos < rare_pos);
    }
}
