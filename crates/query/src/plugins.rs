//! Plugin registry and the built-in analysis plugins.
//!
//! The paper's agent "can utilize common Python tools or libraries, as well
//! as plugins tailored to feedback analysis" (Sec. 3.4.2) — e.g. the
//! `issue_river` function of Case 2. Here plugins are native Rust functions
//! invocable from AQL. New ones can be registered on any interpreter or
//! session, which is the extension mechanism for "self-defined plugins".

use crate::error::QueryError;
use crate::figure::{FigureKind, FigureSpec, Series};
use crate::interp::RtValue;
use allhands_dataframe::{
    pearson, zscore_anomalies, CivilDateTime, Column, DataFrame, Value,
};
use std::collections::HashMap;

/// The plugin function type: evaluated argument values in, runtime value out.
pub type PluginFn = Box<dyn Fn(Vec<RtValue>) -> Result<RtValue, QueryError> + Send + Sync>;

/// A name → function table of plugins.
pub struct PluginRegistry {
    plugins: HashMap<String, PluginFn>,
}

impl PluginRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        PluginRegistry { plugins: HashMap::new() }
    }

    /// Registry pre-loaded with every built-in analysis plugin.
    pub fn with_builtins() -> Self {
        let mut r = PluginRegistry::new();
        r.register("word_cloud", Box::new(word_cloud));
        r.register("issue_river", Box::new(issue_river));
        r.register("bar_chart", Box::new(bar_chart));
        r.register("grouped_bar_chart", Box::new(grouped_bar_chart));
        r.register("line_chart", Box::new(line_chart));
        r.register("pie_chart", Box::new(pie_chart));
        r.register("histogram", Box::new(histogram));
        r.register("co_occurrence", Box::new(co_occurrence));
        r.register("topic_correlation", Box::new(topic_correlation));
        r.register("emoji_stats", Box::new(emoji_stats));
        r.register("keyword_stats", Box::new(keyword_stats));
        r.register("anomaly_detect", Box::new(anomaly_detect));
        r.register("lump_small", Box::new(lump_small));
        r
    }

    /// Register (or replace) a plugin.
    pub fn register(&mut self, name: &str, f: PluginFn) {
        self.plugins.insert(name.to_string(), f);
    }

    /// Is `name` registered?
    pub fn contains(&self, name: &str) -> bool {
        self.plugins.contains_key(name)
    }

    /// Invoke a plugin.
    pub fn invoke(&self, name: &str, args: Vec<RtValue>) -> Result<RtValue, QueryError> {
        let f = self
            .plugins
            .get(name)
            .ok_or_else(|| QueryError::runtime(format!("unknown plugin '{name}'")))?;
        f(args)
    }

    /// Sorted plugin names (for error messages).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.plugins.keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for PluginRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

// ---- argument helpers ------------------------------------------------------

fn arg_frame(args: &[RtValue], i: usize, plugin: &str) -> Result<DataFrame, QueryError> {
    match args.get(i) {
        Some(RtValue::Frame(f)) => Ok(f.clone()),
        other => Err(QueryError::runtime(format!(
            "{plugin}: argument {} must be a frame, got {}",
            i + 1,
            other.map_or("nothing", |v| v.type_name())
        ))),
    }
}

fn arg_str(args: &[RtValue], i: usize, plugin: &str) -> Result<String, QueryError> {
    match args.get(i) {
        Some(RtValue::Scalar(Value::Str(s))) => Ok(s.clone()),
        other => Err(QueryError::runtime(format!(
            "{plugin}: argument {} must be a string, got {}",
            i + 1,
            other.map_or("nothing", |v| v.type_name())
        ))),
    }
}

fn arg_num(args: &[RtValue], i: usize, plugin: &str) -> Result<f64, QueryError> {
    match args.get(i) {
        Some(RtValue::Scalar(v)) => v.as_f64().ok_or_else(|| {
            QueryError::runtime(format!("{plugin}: argument {} must be numeric", i + 1))
        }),
        other => Err(QueryError::runtime(format!(
            "{plugin}: argument {} must be numeric, got {}",
            i + 1,
            other.map_or("nothing", |v| v.type_name())
        ))),
    }
}

/// Counts of topic-list elements across the frame, descending.
fn topic_counts(frame: &DataFrame, col: &str) -> Result<Vec<(String, usize)>, QueryError> {
    let lists = frame.column(col)?.str_lists()?;
    let mut counts: HashMap<String, usize> = HashMap::new();
    for cell in lists.iter().flatten() {
        for t in cell {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
    }
    let mut pairs: Vec<(String, usize)> = counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(pairs)
}

// ---- figure plugins ---------------------------------------------------------

/// `word_cloud(frame, text_or_topic_column)` — weighted word cloud of the
/// column's tokens (Str column: preprocessed content words; StrList column:
/// topic labels).
fn word_cloud(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "word_cloud")?;
    let col_name = arg_str(&args, 1, "word_cloud")?;
    let col = frame.column(&col_name)?;
    let mut counts: HashMap<String, usize> = HashMap::new();
    match col.dtype() {
        allhands_dataframe::DType::StrList => {
            for (word, n) in topic_counts(&frame, &col_name)? {
                counts.insert(word, n);
            }
        }
        _ => {
            for cell in col.strs()? .iter().flatten() {
                for tok in allhands_text::preprocess(cell) {
                    if tok.starts_with('<') {
                        continue; // placeholder tokens
                    }
                    *counts.entry(tok).or_insert(0) += 1;
                }
            }
        }
    }
    let mut pairs: Vec<(String, usize)> = counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(40);
    let (labels, weights): (Vec<String>, Vec<f64>) =
        pairs.into_iter().map(|(w, c)| (w, c as f64)).unzip();
    Ok(RtValue::Figure(FigureSpec::new(
        FigureKind::WordCloud,
        &format!("Word cloud of {col_name}"),
        labels,
        vec![Series { name: "weight".into(), values: weights }],
    )?))
}

/// `issue_river(frame, topics_col, timestamp_col, top_k)` — weekly
/// frequency streams of the top-k topics (the paper's Case 2 figure).
fn issue_river(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "issue_river")?;
    let topics_col = arg_str(&args, 1, "issue_river")?;
    let ts_col = arg_str(&args, 2, "issue_river")?;
    let k = arg_num(&args, 3, "issue_river")? as usize;
    if k == 0 {
        return Err(QueryError::runtime("issue_river: top_k must be >= 1"));
    }
    let top: Vec<String> = topic_counts(&frame, &topics_col)?
        .into_iter()
        .take(k)
        .map(|(t, _)| t)
        .collect();
    if top.is_empty() {
        return Err(QueryError::runtime("issue_river: no topics in frame"));
    }
    let lists = frame.column(&topics_col)?.str_lists()?.to_vec();
    let times = frame.column(&ts_col)?.datetimes()?.to_vec();

    // Weekly buckets keyed by (iso year via week's Thursday approximated by
    // year, week) — render label "Wxx".
    let mut weeks: Vec<(i32, u32)> = Vec::new();
    let mut per_topic: HashMap<&str, HashMap<(i32, u32), f64>> = HashMap::new();
    for (cell, ts) in lists.iter().zip(&times) {
        let (Some(topics), Some(ts)) = (cell, ts) else { continue };
        let d = CivilDateTime::from_epoch(*ts);
        let key = (d.year, d.iso_week());
        if !weeks.contains(&key) {
            weeks.push(key);
        }
        for t in topics {
            if let Some(name) = top.iter().find(|x| *x == t) {
                *per_topic.entry(name).or_default().entry(key).or_insert(0.0) += 1.0;
            }
        }
    }
    weeks.sort();
    let labels: Vec<String> = weeks.iter().map(|(y, w)| format!("{y}-W{w:02}")).collect();
    let series: Vec<Series> = top
        .iter()
        .map(|t| Series {
            name: t.clone(),
            values: weeks
                .iter()
                .map(|wk| {
                    per_topic
                        .get(t.as_str())
                        .and_then(|m| m.get(wk))
                        .copied()
                        .unwrap_or(0.0)
                })
                .collect(),
        })
        .collect();
    Ok(RtValue::Figure(FigureSpec::new(
        FigureKind::IssueRiver,
        &format!("Issue river: top {k} topics"),
        labels,
        series,
    )?))
}

/// Extract `(labels, values)` of two columns for simple charts.
fn chart_data(
    frame: &DataFrame,
    xcol: &str,
    ycol: &str,
) -> Result<(Vec<String>, Vec<f64>), QueryError> {
    let x = frame.column(xcol)?;
    let y = frame.column(ycol)?;
    let labels: Vec<String> = x.iter().map(|v| v.to_string()).collect();
    let values: Vec<f64> = y.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect();
    Ok((labels, values))
}

/// `bar_chart(frame, x_col, y_col, title)`.
fn bar_chart(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "bar_chart")?;
    let xcol = arg_str(&args, 1, "bar_chart")?;
    let ycol = arg_str(&args, 2, "bar_chart")?;
    let title = arg_str(&args, 3, "bar_chart")?;
    let (labels, values) = chart_data(&frame, &xcol, &ycol)?;
    Ok(RtValue::Figure(FigureSpec::new(
        FigureKind::Bar,
        &title,
        labels,
        vec![Series { name: ycol, values }],
    )?))
}

/// `line_chart(frame, x_col, y_col, title)`.
fn line_chart(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "line_chart")?;
    let xcol = arg_str(&args, 1, "line_chart")?;
    let ycol = arg_str(&args, 2, "line_chart")?;
    let title = arg_str(&args, 3, "line_chart")?;
    let (labels, values) = chart_data(&frame, &xcol, &ycol)?;
    Ok(RtValue::Figure(FigureSpec::new(
        FigureKind::Line,
        &title,
        labels,
        vec![Series { name: ycol, values }],
    )?))
}

/// `pie_chart(frame, label_col, value_col, title)`.
fn pie_chart(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "pie_chart")?;
    let lcol = arg_str(&args, 1, "pie_chart")?;
    let vcol = arg_str(&args, 2, "pie_chart")?;
    let title = arg_str(&args, 3, "pie_chart")?;
    let (labels, values) = chart_data(&frame, &lcol, &vcol)?;
    Ok(RtValue::Figure(FigureSpec::new(
        FigureKind::Pie,
        &title,
        labels,
        vec![Series { name: vcol, values }],
    )?))
}

/// `grouped_bar_chart(frame, x_col, y_col, series_col, title)` — long-format
/// input: one series per distinct `series_col` value.
fn grouped_bar_chart(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "grouped_bar_chart")?;
    let xcol = arg_str(&args, 1, "grouped_bar_chart")?;
    let ycol = arg_str(&args, 2, "grouped_bar_chart")?;
    let scol = arg_str(&args, 3, "grouped_bar_chart")?;
    let title = arg_str(&args, 4, "grouped_bar_chart")?;
    let x = frame.column(&xcol)?;
    let y = frame.column(&ycol)?;
    let s = frame.column(&scol)?;

    let mut x_labels: Vec<String> = Vec::new();
    let mut series_names: Vec<String> = Vec::new();
    for i in 0..frame.n_rows() {
        let xl = x.get(i).to_string();
        if !x_labels.contains(&xl) {
            x_labels.push(xl);
        }
        let sn = s.get(i).to_string();
        if !series_names.contains(&sn) {
            series_names.push(sn);
        }
    }
    let mut table: HashMap<(String, String), f64> = HashMap::new();
    for i in 0..frame.n_rows() {
        table.insert(
            (x.get(i).to_string(), s.get(i).to_string()),
            y.get(i).as_f64().unwrap_or(0.0),
        );
    }
    let series: Vec<Series> = series_names
        .into_iter()
        .map(|name| Series {
            values: x_labels
                .iter()
                .map(|xl| table.get(&(xl.clone(), name.clone())).copied().unwrap_or(0.0))
                .collect(),
            name,
        })
        .collect();
    Ok(RtValue::Figure(FigureSpec::new(
        FigureKind::GroupedBar,
        &title,
        x_labels,
        series,
    )?))
}

/// `histogram(frame, col, title)` — numeric columns are binned into 10
/// equal-width bins; categorical columns fall back to value counts.
fn histogram(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "histogram")?;
    let col_name = arg_str(&args, 1, "histogram")?;
    let title = arg_str(&args, 2, "histogram")?;
    let col = frame.column(&col_name)?;
    let numeric: Vec<f64> = col.f64_iter().flatten().collect();
    if numeric.len() == frame.n_rows() - col.null_count() && !numeric.is_empty() {
        let min = numeric.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = numeric.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = ((max - min) / 10.0).max(1e-9);
        let mut bins = vec![0.0f64; 10];
        for v in &numeric {
            let b = (((v - min) / width) as usize).min(9);
            bins[b] += 1.0;
        }
        let labels: Vec<String> = (0..10)
            .map(|i| format!("{:.2}..{:.2}", min + i as f64 * width, min + (i + 1) as f64 * width))
            .collect();
        return Ok(RtValue::Figure(FigureSpec::new(
            FigureKind::Histogram,
            &title,
            labels,
            vec![Series { name: col_name, values: bins }],
        )?));
    }
    // Categorical histogram = bar chart of value counts.
    let vc = frame.value_counts(&col_name)?;
    let (labels, values) = chart_data(&vc, &col_name, "count")?;
    Ok(RtValue::Figure(FigureSpec::new(
        FigureKind::Histogram,
        &title,
        labels,
        vec![Series { name: "count".into(), values }],
    )?))
}

// ---- analysis plugins --------------------------------------------------------

/// `co_occurrence(frame, topics_col)` — frame of `(topic_a, topic_b, count)`
/// pairs sorted by co-occurrence count (within the same feedback item).
fn co_occurrence(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "co_occurrence")?;
    let col = arg_str(&args, 1, "co_occurrence")?;
    let lists = frame.column(&col)?.str_lists()?;
    let mut counts: HashMap<(String, String), i64> = HashMap::new();
    for cell in lists.iter().flatten() {
        let mut sorted: Vec<&String> = cell.iter().collect();
        sorted.sort();
        sorted.dedup();
        for i in 0..sorted.len() {
            for j in i + 1..sorted.len() {
                *counts.entry((sorted[i].clone(), sorted[j].clone())).or_insert(0) += 1;
            }
        }
    }
    let mut pairs: Vec<((String, String), i64)> = counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let a: Vec<String> = pairs.iter().map(|((a, _), _)| a.clone()).collect();
    let b: Vec<String> = pairs.iter().map(|((_, b), _)| b.clone()).collect();
    let c: Vec<i64> = pairs.iter().map(|(_, n)| *n).collect();
    Ok(RtValue::Frame(DataFrame::new(vec![
        Column::from_strings("topic_a", a),
        Column::from_strings("topic_b", b),
        Column::from_i64s("count", &c),
    ])?))
}

/// `topic_correlation(frame, topics_col, ts_col)` — Pearson correlation of
/// each topic pair's *daily* frequency series, sorted descending.
fn topic_correlation(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "topic_correlation")?;
    let topics_col = arg_str(&args, 1, "topic_correlation")?;
    let ts_col = arg_str(&args, 2, "topic_correlation")?;
    let lists = frame.column(&topics_col)?.str_lists()?.to_vec();
    let times = frame.column(&ts_col)?.datetimes()?.to_vec();

    let mut days: Vec<i64> = Vec::new();
    let mut per_topic: HashMap<String, HashMap<i64, f64>> = HashMap::new();
    for (cell, ts) in lists.iter().zip(&times) {
        let (Some(topics), Some(ts)) = (cell, ts) else { continue };
        let day = ts.div_euclid(86_400);
        if !days.contains(&day) {
            days.push(day);
        }
        for t in topics {
            *per_topic.entry(t.clone()).or_default().entry(day).or_insert(0.0) += 1.0;
        }
    }
    days.sort_unstable();
    // Only correlate reasonably frequent topics (rare topics produce
    // spurious correlations).
    let mut names: Vec<String> = per_topic
        .iter()
        .filter(|(_, m)| m.values().sum::<f64>() >= 5.0)
        .map(|(n, _)| n.clone())
        .collect();
    names.sort();
    let series: Vec<Vec<f64>> = names
        .iter()
        .map(|n| {
            days.iter()
                .map(|d| per_topic[n].get(d).copied().unwrap_or(0.0))
                .collect()
        })
        .collect();
    let mut rows: Vec<(String, String, f64)> = Vec::new();
    for i in 0..names.len() {
        for j in i + 1..names.len() {
            if let Some(r) = pearson(&series[i], &series[j]) {
                rows.push((names[i].clone(), names[j].clone(), r));
            }
        }
    }
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let a: Vec<String> = rows.iter().map(|(a, _, _)| a.clone()).collect();
    let b: Vec<String> = rows.iter().map(|(_, b, _)| b.clone()).collect();
    let c: Vec<f64> = rows.iter().map(|(_, _, c)| *c).collect();
    Ok(RtValue::Frame(DataFrame::new(vec![
        Column::from_strings("topic_a", a),
        Column::from_strings("topic_b", b),
        Column::from_f64s("correlation", &c),
    ])?))
}

/// `emoji_stats(frame, text_col)` — frame of `(emoji, count)` descending.
fn emoji_stats(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "emoji_stats")?;
    let col = arg_str(&args, 1, "emoji_stats")?;
    let mut counts: HashMap<char, i64> = HashMap::new();
    for cell in frame.column(&col)?.strs()?.iter().flatten() {
        for e in allhands_text::extract_emoji(cell) {
            *counts.entry(e).or_insert(0) += 1;
        }
    }
    let mut pairs: Vec<(char, i64)> = counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let emoji: Vec<String> = pairs.iter().map(|(e, _)| e.to_string()).collect();
    let n: Vec<i64> = pairs.iter().map(|(_, n)| *n).collect();
    Ok(RtValue::Frame(DataFrame::new(vec![
        Column::from_strings("emoji", emoji),
        Column::from_i64s("count", &n),
    ])?))
}

/// `keyword_stats(frame, text_col)` — content-word frequencies (stopwords,
/// URLs, numbers, and emoji removed; words stemmed).
fn keyword_stats(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "keyword_stats")?;
    let col = arg_str(&args, 1, "keyword_stats")?;
    let mut counts: HashMap<String, i64> = HashMap::new();
    for cell in frame.column(&col)?.strs()?.iter().flatten() {
        for tok in allhands_text::preprocess(cell) {
            if tok.starts_with('<') || allhands_text::extract_emoji(&tok).len() == tok.chars().count() {
                continue;
            }
            *counts.entry(tok).or_insert(0) += 1;
        }
    }
    let mut pairs: Vec<(String, i64)> = counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let kw: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
    let n: Vec<i64> = pairs.iter().map(|(_, n)| *n).collect();
    Ok(RtValue::Frame(DataFrame::new(vec![
        Column::from_strings("keyword", kw),
        Column::from_i64s("count", &n),
    ])?))
}

/// `anomaly_detect(frame, label_col, value_col, threshold)` — rows whose
/// `value_col` z-score exceeds `threshold`, with the z-score attached.
fn anomaly_detect(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "anomaly_detect")?;
    let label_col = arg_str(&args, 1, "anomaly_detect")?;
    let value_col = arg_str(&args, 2, "anomaly_detect")?;
    let threshold = arg_num(&args, 3, "anomaly_detect")?;
    let values: Vec<f64> = frame
        .column(&value_col)?
        .f64_iter()
        .map(|v| v.unwrap_or(0.0))
        .collect();
    let anomalous = zscore_anomalies(&values, threshold);
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let std = {
        let n = values.len() as f64;
        if n < 2.0 {
            1.0
        } else {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        }
    };
    let out = frame.take(&anomalous);
    let zscores: Vec<f64> = anomalous
        .iter()
        .map(|&i| (values[i] - mean) / std.max(1e-12))
        .collect();
    let out = out
        .select(&[&label_col, &value_col])?
        .with_column(Column::from_f64s("zscore", &zscores))?;
    Ok(RtValue::Frame(out))
}

/// `lump_small(frame, label_col, count_col, threshold, other_label)` —
/// merge rows with `count_col < threshold` into one `other_label` row.
fn lump_small(args: Vec<RtValue>) -> Result<RtValue, QueryError> {
    let frame = arg_frame(&args, 0, "lump_small")?;
    let label_col = arg_str(&args, 1, "lump_small")?;
    let count_col = arg_str(&args, 2, "lump_small")?;
    let threshold = arg_num(&args, 3, "lump_small")?;
    let other_label = arg_str(&args, 4, "lump_small")?;
    let labels = frame.column(&label_col)?;
    let counts = frame.column(&count_col)?;
    let mut out_labels: Vec<String> = Vec::new();
    let mut out_counts: Vec<f64> = Vec::new();
    let mut lumped = 0.0;
    for i in 0..frame.n_rows() {
        let c = counts.get(i).as_f64().unwrap_or(0.0);
        if c < threshold {
            lumped += c;
        } else {
            out_labels.push(labels.get(i).to_string());
            out_counts.push(c);
        }
    }
    if lumped > 0.0 {
        out_labels.push(other_label);
        out_counts.push(lumped);
    }
    let count_ints: Vec<i64> = out_counts.iter().map(|&c| c as i64).collect();
    Ok(RtValue::Frame(DataFrame::new(vec![
        Column::from_strings(&label_col, out_labels),
        Column::from_i64s(&count_col, &count_ints),
    ])?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topics_frame() -> DataFrame {
        DataFrame::new(vec![
            Column::from_str_lists("topics", vec![
                vec!["bug".into(), "ui".into()],
                vec!["bug".into(), "ui".into()],
                vec!["bug".into(), "perf".into()],
                vec!["praise".into()],
            ]),
            Column::from_datetimes("ts", &[0, 86_400, 86_400 * 2, 86_400 * 8]),
            Column::from_strs("text", &[
                "crash 😡 bad",
                "crash again 😡",
                "slow loading",
                "love it 😍",
            ]),
        ])
        .unwrap()
    }

    #[test]
    fn co_occurrence_top_pair() {
        let out = co_occurrence(vec![
            RtValue::Frame(topics_frame()),
            RtValue::Scalar(Value::str("topics")),
        ])
        .unwrap()
        .into_frame()
        .unwrap();
        assert_eq!(out.cell(0, "topic_a").unwrap(), Value::str("bug"));
        assert_eq!(out.cell(0, "topic_b").unwrap(), Value::str("ui"));
        assert_eq!(out.cell(0, "count").unwrap(), Value::Int(2));
    }

    #[test]
    fn emoji_stats_counts() {
        let out = emoji_stats(vec![
            RtValue::Frame(topics_frame()),
            RtValue::Scalar(Value::str("text")),
        ])
        .unwrap()
        .into_frame()
        .unwrap();
        assert_eq!(out.cell(0, "emoji").unwrap(), Value::str("😡"));
        assert_eq!(out.cell(0, "count").unwrap(), Value::Int(2));
    }

    #[test]
    fn keyword_stats_removes_noise() {
        let out = keyword_stats(vec![
            RtValue::Frame(topics_frame()),
            RtValue::Scalar(Value::str("text")),
        ])
        .unwrap()
        .into_frame()
        .unwrap();
        let kws: Vec<String> = (0..out.n_rows())
            .map(|i| out.cell(i, "keyword").unwrap().to_string())
            .collect();
        assert!(kws.contains(&"crash".to_string()));
        assert!(!kws.iter().any(|k| k == "it" || k == "😡"));
    }

    #[test]
    fn issue_river_shapes() {
        let fig = issue_river(vec![
            RtValue::Frame(topics_frame()),
            RtValue::Scalar(Value::str("topics")),
            RtValue::Scalar(Value::str("ts")),
            RtValue::Scalar(Value::Int(2)),
        ])
        .unwrap();
        let RtValue::Figure(fig) = fig else { panic!("expected figure") };
        assert_eq!(fig.kind, FigureKind::IssueRiver);
        assert_eq!(fig.series.len(), 2);
        assert!(fig.series.iter().any(|s| s.name == "bug"));
    }

    #[test]
    fn lump_small_merges() {
        let counts = DataFrame::new(vec![
            Column::from_strs("tz", &["ET", "PT", "Quito", "Kathmandu"]),
            Column::from_i64s("count", &[100, 50, 3, 2]),
        ])
        .unwrap();
        let out = lump_small(vec![
            RtValue::Frame(counts),
            RtValue::Scalar(Value::str("tz")),
            RtValue::Scalar(Value::str("count")),
            RtValue::Scalar(Value::Int(30)),
            RtValue::Scalar(Value::str("Others")),
        ])
        .unwrap()
        .into_frame()
        .unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.cell(2, "tz").unwrap(), Value::str("Others"));
        assert_eq!(out.cell(2, "count").unwrap(), Value::Int(5));
    }

    #[test]
    fn anomaly_detect_finds_spike() {
        let mut counts = vec![10i64; 20];
        counts[7] = 90;
        let labels: Vec<String> = (0..20).map(|i| format!("day{i}")).collect();
        let df = DataFrame::new(vec![
            Column::from_strings("date", labels),
            Column::from_i64s("count", &counts),
        ])
        .unwrap();
        let out = anomaly_detect(vec![
            RtValue::Frame(df),
            RtValue::Scalar(Value::str("date")),
            RtValue::Scalar(Value::str("count")),
            RtValue::Scalar(Value::Float(3.0)),
        ])
        .unwrap()
        .into_frame()
        .unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.cell(0, "date").unwrap(), Value::str("day7"));
    }

    #[test]
    fn grouped_bar_chart_long_format() {
        let df = DataFrame::new(vec![
            Column::from_strs("week", &["W1", "W1", "W2"]),
            Column::from_strs("topic", &["bug", "perf", "bug"]),
            Column::from_i64s("count", &[5, 3, 7]),
        ])
        .unwrap();
        let fig = grouped_bar_chart(vec![
            RtValue::Frame(df),
            RtValue::Scalar(Value::str("week")),
            RtValue::Scalar(Value::str("count")),
            RtValue::Scalar(Value::str("topic")),
            RtValue::Scalar(Value::str("t")),
        ])
        .unwrap();
        let RtValue::Figure(fig) = fig else { panic!() };
        assert_eq!(fig.x_labels, vec!["W1", "W2"]);
        assert_eq!(fig.series.len(), 2);
        let bug = fig.series.iter().find(|s| s.name == "bug").unwrap();
        assert_eq!(bug.values, vec![5.0, 7.0]);
        // Missing (perf, W2) combination fills with 0.
        let perf = fig.series.iter().find(|s| s.name == "perf").unwrap();
        assert_eq!(perf.values, vec![3.0, 0.0]);
    }

    #[test]
    fn bad_args_error() {
        assert!(bar_chart(vec![RtValue::Scalar(Value::Int(1))]).is_err());
        assert!(word_cloud(vec![]).is_err());
    }

    #[test]
    fn registry_roundtrip() {
        let r = PluginRegistry::with_builtins();
        assert!(r.contains("issue_river"));
        assert!(!r.contains("bogus"));
        assert!(r.names().contains(&"word_cloud".to_string()));
    }
}
