//! AQL lexer.

use crate::error::QueryError;

/// Token classes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Str(String),
    Number(f64),
    /// `true` / `false`.
    Bool(bool),
    Let,
    // Punctuation / operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

/// One token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Streaming lexer over AQL source.
pub struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer { chars: source.chars().peekable(), line: 1 }
    }

    /// Lex the whole input (appends an `Eof` token).
    pub fn tokenize(mut self) -> Result<Vec<Token>, QueryError> {
        let mut tokens = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            tokens.push(tok);
            if done {
                return Ok(tokens);
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, QueryError> {
        // Skip whitespace and `#`/`//` comments.
        loop {
            match self.chars.peek() {
                Some('\n') => {
                    self.line += 1;
                    self.chars.next();
                }
                Some(c) if c.is_whitespace() => {
                    self.chars.next();
                }
                Some('#') => {
                    self.skip_line();
                }
                Some('/') => {
                    // Could be `//` comment or division; look ahead.
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'/') {
                        self.skip_line();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let line = self.line;
        let Some(&c) = self.chars.peek() else {
            return Ok(Token { kind: TokenKind::Eof, line });
        };

        let kind = match c {
            '(' => self.eat(TokenKind::LParen),
            ')' => self.eat(TokenKind::RParen),
            '[' => self.eat(TokenKind::LBracket),
            ']' => self.eat(TokenKind::RBracket),
            ',' => self.eat(TokenKind::Comma),
            ';' => self.eat(TokenKind::Semi),
            '.' => self.eat(TokenKind::Dot),
            '+' => self.eat(TokenKind::Plus),
            '-' => self.eat(TokenKind::Minus),
            '*' => self.eat(TokenKind::Star),
            '/' => self.eat(TokenKind::Slash),
            '=' => {
                self.chars.next();
                if self.chars.peek() == Some(&'=') {
                    self.chars.next();
                    TokenKind::Eq
                } else {
                    TokenKind::Assign
                }
            }
            '!' => {
                self.chars.next();
                if self.chars.peek() == Some(&'=') {
                    self.chars.next();
                    TokenKind::Ne
                } else {
                    TokenKind::Bang
                }
            }
            '<' => {
                self.chars.next();
                if self.chars.peek() == Some(&'=') {
                    self.chars.next();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                self.chars.next();
                if self.chars.peek() == Some(&'=') {
                    self.chars.next();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '&' => {
                self.chars.next();
                if self.chars.next() == Some('&') {
                    TokenKind::AndAnd
                } else {
                    return Err(QueryError::at(line, "expected '&&'"));
                }
            }
            '|' => {
                self.chars.next();
                if self.chars.next() == Some('|') {
                    TokenKind::OrOr
                } else {
                    return Err(QueryError::at(line, "expected '||'"));
                }
            }
            '"' => self.lex_string()?,
            c if c.is_ascii_digit() => self.lex_number()?,
            c if c.is_alphabetic() || c == '_' => self.lex_ident(),
            other => {
                return Err(QueryError::at(line, format!("unexpected character '{other}'")))
            }
        };
        Ok(Token { kind, line })
    }

    fn eat(&mut self, kind: TokenKind) -> TokenKind {
        self.chars.next();
        kind
    }

    fn skip_line(&mut self) {
        for c in self.chars.by_ref() {
            if c == '\n' {
                self.line += 1;
                break;
            }
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind, QueryError> {
        let line = self.line;
        self.chars.next(); // opening quote
        let mut s = String::new();
        loop {
            match self.chars.next() {
                None => return Err(QueryError::at(line, "unterminated string literal")),
                Some('"') => return Ok(TokenKind::Str(s)),
                Some('\\') => match self.chars.next() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    other => {
                        return Err(QueryError::at(
                            line,
                            format!("bad escape '\\{}'", other.map_or(String::new(), |c| c.to_string())),
                        ))
                    }
                },
                Some('\n') => {
                    self.line += 1;
                    s.push('\n');
                }
                Some(c) => s.push(c),
            }
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, QueryError> {
        let line = self.line;
        let mut s = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() || c == '.' || c == '_' {
                if c != '_' {
                    s.push(c);
                }
                self.chars.next();
            } else {
                break;
            }
        }
        // Exponent suffix: `e`/`E` with an optional sign and ≥1 digit
        // ("2.5e3", "1E-4"). Without this, "1e4" silently lexes as
        // Number(1) + Ident("e4").
        if matches!(self.chars.peek(), Some('e' | 'E')) {
            let mut lookahead = self.chars.clone();
            lookahead.next(); // e
            let mut exp = String::from("e");
            if matches!(lookahead.peek(), Some('+' | '-')) {
                exp.push(*lookahead.peek().expect("peeked"));
                lookahead.next();
            }
            let mut has_digit = false;
            while let Some(&c) = lookahead.peek() {
                if c.is_ascii_digit() {
                    exp.push(c);
                    lookahead.next();
                    has_digit = true;
                } else {
                    break;
                }
            }
            if has_digit {
                self.chars = lookahead;
                s.push_str(&exp);
            }
        }
        s.parse::<f64>()
            .map(TokenKind::Number)
            .map_err(|_| QueryError::at(line, format!("bad number literal '{s}'")))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        match s.as_str() {
            "let" => TokenKind::Let,
            "true" => TokenKind::Bool(true),
            "false" => TokenKind::Bool(false),
            _ => TokenKind::Ident(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds(r#"let x = df.filter(a == 4.5);"#);
        assert_eq!(
            k,
            vec![
                TokenKind::Let,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Ident("df".into()),
                TokenKind::Dot,
                TokenKind::Ident("filter".into()),
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Number(4.5),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""he said \"hi\"\n""#),
            vec![TokenKind::Str("he said \"hi\"\n".into()), TokenKind::Eof]
        );
        assert!(Lexer::new(r#""unterminated"#).tokenize().is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a != b && c || !d <= e >= f"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ne,
                TokenKind::Ident("b".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("c".into()),
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Ident("d".into()),
                TokenKind::Le,
                TokenKind::Ident("e".into()),
                TokenKind::Ge,
                TokenKind::Ident("f".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = Lexer::new("a # comment\n// another\nb").tokenize().unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn list_literal_tokens() {
        assert_eq!(
            kinds(r#"["a", "b"]"#),
            vec![
                TokenKind::LBracket,
                TokenKind::Str("a".into()),
                TokenKind::Comma,
                TokenKind::Str("b".into()),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn bad_chars_error_with_line() {
        let err = Lexer::new("a\n@").tokenize().unwrap_err();
        assert_eq!(err.line, 2);
    }
}
