//! AQL abstract syntax tree.

/// A full program: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub statements: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr`
    Let { name: String, expr: Expr, line: usize },
    /// A bare expression evaluated for effect (e.g. `show(...)`).
    Expr { expr: Expr, line: usize },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal (AQL numbers are f64; integral values display as ints).
    Number(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Identifier (column in row context, else a session binding).
    Ident(String),
    /// `[a, b, c]` list literal.
    List(Vec<Expr>),
    /// Free function call: `name(args…)`.
    Call { name: String, args: Vec<Expr>, line: usize },
    /// Method call: `recv.name(args…)`.
    Method { recv: Box<Expr>, name: String, args: Vec<Expr>, line: usize },
    /// Binary operation.
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Unary operation.
    Unary { op: UnOp, expr: Box<Expr> },
}

impl Expr {
    /// The source line of a call expression (0 for other node kinds);
    /// used for error attribution.
    pub fn line(&self) -> usize {
        match self {
            Expr::Call { line, .. } | Expr::Method { line, .. } => *line,
            _ => 0,
        }
    }
}
