//! AQL — the Analysis Query Language executed by the AllHands code executor.
//!
//! The paper's QA agent generates *Python* and runs it in a Jupyter kernel
//! (Sec. 3.4.3). In this reproduction the generated language is AQL: a
//! small, deterministic analysis language over the [`allhands_dataframe`]
//! engine. The executor semantics the paper relies on are all here:
//!
//! - a **stateful session kernel** ([`Session`]): bindings persist across
//!   cells, so follow-up questions build on earlier results;
//! - **rich results**: each cell returns logs, shown outputs (scalars,
//!   tables), and figure artifacts;
//! - **errors as data**: failed cells return the error message, which the
//!   agent's self-reflection loop feeds back into code regeneration;
//! - a **plugin registry**: native analysis functions (word clouds, issue
//!   rivers, anomaly detection, …) callable from generated code;
//! - **sandboxing**: step and row budgets bound runaway programs; the
//!   language has no I/O primitives at all.
//!
//! # Language sketch
//!
//! ```text
//! let wa = feedback.filter(contains(text, "WhatsApp"));
//! let g = wa.derive("weekend", is_weekend(timestamp))
//!           .group_by("weekend", mean("sentiment"), count());
//! show(g);
//! show(bar_chart(g, "weekend", "sentiment_mean", "Sentiment by day type"))
//! ```
//!
//! Statements are separated by `;` (a trailing `;` is optional). `let`
//! binds; bare expressions evaluate for effect. Inside `filter`/`derive`
//! expressions, identifiers resolve to the current row's columns first and
//! then to session bindings.

pub mod ast;
pub mod error;
mod exec;
pub mod figure;
pub mod interp;
pub mod lexer;
pub mod parser;
mod plan;
pub mod plugins;
mod rowfns;
pub mod session;

pub use ast::{BinOp, Expr, Program, Stmt, UnOp};
pub use error::QueryError;
pub use figure::{FigureKind, FigureSpec, Series};
pub use interp::{Interpreter, PlanCacheStats, QueryEngine, RtValue};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse_program;
pub use session::{CellResult, Session, SessionLimits};

/// Parse and pretty-check a program without executing it (used by tests and
/// the code generator's syntax validation).
pub fn check_syntax(source: &str) -> Result<Program, QueryError> {
    parse_program(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use allhands_dataframe::{Column, DataFrame};

    fn demo_frame() -> DataFrame {
        DataFrame::new(vec![
            Column::from_strs("product", &["A", "B", "A"]),
            Column::from_f64s("sentiment", &[0.5, -0.5, 1.0]),
        ])
        .unwrap()
    }

    #[test]
    fn end_to_end_smoke() {
        let mut session = Session::new(SessionLimits::default());
        session.bind_frame("feedback", demo_frame());
        let result = session.execute(
            r#"let a = feedback.filter(product == "A");
show(a.mean("sentiment"))"#,
        );
        assert!(result.error.is_none(), "{:?}", result.error);
        assert_eq!(result.shown.len(), 1);
        match &result.shown[0] {
            RtValue::Scalar(v) => assert_eq!(v.as_f64(), Some(0.75)),
            other => panic!("expected scalar, got {other:?}"),
        }
    }

    #[test]
    fn state_persists_across_cells() {
        let mut session = Session::new(SessionLimits::default());
        session.bind_frame("feedback", demo_frame());
        let r1 = session.execute("let n = feedback.count()");
        assert!(r1.error.is_none());
        let r2 = session.execute("show(n + 1)");
        assert!(r2.error.is_none());
        match &r2.shown[0] {
            RtValue::Scalar(v) => assert_eq!(v.as_f64(), Some(4.0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_values_not_panics() {
        let mut session = Session::new(SessionLimits::default());
        session.bind_frame("feedback", demo_frame());
        let r = session.execute("show(feedback.mean(\"no_such_column\"))");
        let err = r.error.expect("should fail");
        assert!(err.contains("no_such_column"), "unhelpful error: {err}");
    }
}
