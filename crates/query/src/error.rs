//! AQL error type.

/// A lex, parse, or runtime error. The message is written to be fed back to
/// the code generator's self-reflection loop, so it names the offending
/// construct and, where possible, suggests what to check.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryError {
    /// Human/agent-readable message.
    pub message: String,
    /// 1-based line where the error was detected (0 = unknown).
    pub line: usize,
}

impl QueryError {
    /// Error with a known source line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        QueryError { message: message.into(), line }
    }

    /// Error without location info (runtime errors on values).
    pub fn runtime(message: impl Into<String>) -> Self {
        QueryError { message: message.into(), line: 0 }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for QueryError {}

impl From<allhands_dataframe::FrameError> for QueryError {
    fn from(e: allhands_dataframe::FrameError) -> Self {
        QueryError::runtime(e.to_string())
    }
}
