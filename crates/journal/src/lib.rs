//! Crash-safe write-ahead journal for the AllHands pipeline.
//!
//! The pipeline (classification → topic modeling → QA) is a long batch job;
//! in production it dies — OOM kills, node preemption, deploys — and a run
//! over millions of feedback items cannot afford to start over. This crate
//! provides the durable run record that makes exact resume possible:
//!
//! - A [`Journal`] is an append-only JSONL file (`allhands.journal` inside a
//!   run directory). Each entry snapshots one completed unit of work — a
//!   stage boundary, one answered QA question, one quarantined document.
//! - Entries form a **hash chain**: every entry records the previous
//!   entry's content hash and its own, computed structurally over the
//!   payload. A reader verifies the chain front to back.
//! - **Torn-tail recovery**: a crash mid-append leaves a truncated or
//!   corrupt final line. [`Journal::open`] detects it (missing terminating
//!   newline, invalid UTF-8, parse failure, or hash mismatch), drops the
//!   invalid suffix, and physically truncates the file back to the last
//!   valid entry — the interrupted unit of work is simply replayed. A
//!   final line is torn even when its content parses: the fsync that
//!   acknowledges an entry covers its newline, so an unterminated line was
//!   never acknowledged, and keeping it would corrupt the *next* append. Corruption *before* the tail breaks the chain for
//!   everything after it and is handled the same way: the longest valid
//!   prefix survives.
//! - Appends are flushed and fsynced before returning, so an entry that
//!   [`Journal::append`] acknowledged survives process death.
//!
//! Determinism makes this journal sufficient for *byte-identical* resume:
//! stages are pure functions of (inputs, seed, resilience state), so a
//! snapshot of stage outputs plus the resilience counters is a complete
//! checkpoint. The crash-chaos suite in the umbrella crate kills the
//! pipeline at every seeded crash point and asserts resumed transcripts
//! equal uninterrupted ones.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};

/// The journal file name inside a run directory.
pub const JOURNAL_FILE: &str = "allhands.journal";

/// A journal failure. Torn tails are *not* errors (they are recovered
/// silently); these are genuine I/O or invariant problems.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// Filesystem failure (message carries the operation and path).
    Io(String),
    /// The journal belongs to a different run (header mismatch).
    RunMismatch { expected: String, found: String },
    /// Payload (de)serialization failed.
    Codec(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(m) => write!(f, "journal i/o error: {m}"),
            JournalError::RunMismatch { expected, found } => write!(
                f,
                "journal belongs to a different run (expected fingerprint {expected}, found {found})"
            ),
            JournalError::Codec(m) => write!(f, "journal codec error: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// One verified journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// 0-based position in the chain.
    pub seq: u64,
    /// Entry namespace: `"header"`, `"stage"`, `"qa"`, `"quarantine"`, …
    pub stage: String,
    /// Key within the namespace (e.g. `"classified"`, `"q0"`, a doc id).
    pub key: String,
    /// This entry's chain hash (hex).
    pub hash: String,
    /// The snapshot payload.
    pub payload: Value,
}

/// FNV-1a 64-bit over bytes — stable, dependency-free, fast enough for
/// checkpoint-sized payloads.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Structural hash of a JSON value: tag every node kind, hash scalars by
/// canonical byte form, recurse in order. Independent of JSON text
/// formatting, so a parse → hash round trip never disagrees with the
/// writer's hash because of printing differences.
fn hash_value(h: &mut u64, v: &Value) {
    match v {
        Value::Null => fnv1a(h, b"\x00"),
        Value::Bool(b) => fnv1a(h, if *b { b"\x01t" } else { b"\x01f" }),
        Value::I64(n) => {
            fnv1a(h, b"\x02");
            fnv1a(h, &n.to_le_bytes());
        }
        Value::U64(n) => {
            fnv1a(h, b"\x03");
            fnv1a(h, &n.to_le_bytes());
        }
        Value::F64(n) => {
            fnv1a(h, b"\x04");
            fnv1a(h, &n.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            fnv1a(h, b"\x05");
            fnv1a(h, &(s.len() as u64).to_le_bytes());
            fnv1a(h, s.as_bytes());
        }
        Value::Array(items) => {
            fnv1a(h, b"\x06");
            fnv1a(h, &(items.len() as u64).to_le_bytes());
            for item in items {
                hash_value(h, item);
            }
        }
        Value::Object(m) => {
            fnv1a(h, b"\x07");
            fnv1a(h, &(m.len() as u64).to_le_bytes());
            for (k, val) in m.iter() {
                fnv1a(h, &(k.len() as u64).to_le_bytes());
                fnv1a(h, k.as_bytes());
                hash_value(h, val);
            }
        }
    }
}

/// Chain hash for an entry: previous hash, position, namespace, key, and the
/// structural payload hash, all mixed through FNV-1a.
fn entry_hash(prev: u64, seq: u64, stage: &str, key: &str, payload: &Value) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
    fnv1a(&mut h, &prev.to_le_bytes());
    fnv1a(&mut h, &seq.to_le_bytes());
    fnv1a(&mut h, stage.as_bytes());
    fnv1a(&mut h, b"\x1F");
    fnv1a(&mut h, key.as_bytes());
    fnv1a(&mut h, b"\x1F");
    hash_value(&mut h, payload);
    h
}

/// The crash-safe journal for one pipeline run.
pub struct Journal {
    path: PathBuf,
    file: File,
    entries: Vec<Entry>,
    last_hash: u64,
    /// Entries dropped at open time because a crash tore the tail.
    recovered_torn_tail: usize,
    rec: allhands_obs::Recorder,
}

impl Journal {
    /// Open (or create) the journal for run directory `dir`, verifying the
    /// hash chain and truncating any torn tail left by a crash.
    pub fn open(dir: &Path) -> Result<Journal, JournalError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| JournalError::Io(format!("create {}: {e}", dir.display())))?;
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| JournalError::Io(format!("open {}: {e}", path.display())))?;
        // Raw bytes, not a String: a torn append can cut a multi-byte UTF-8
        // character mid-sequence, and that must recover like any other torn
        // tail rather than fail the whole open.
        let mut bytes = Vec::new();
        file.rewind()
            .and_then(|()| file.read_to_end(&mut bytes))
            .map_err(|e| JournalError::Io(format!("read {}: {e}", path.display())))?;

        let mut entries: Vec<Entry> = Vec::new();
        let mut last_hash = 0u64;
        let mut valid_bytes = 0usize;
        let mut dropped = 0usize;
        let mut offset = 0usize;
        while offset < bytes.len() {
            let rest = &bytes[offset..];
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                // Final line without its terminating '\n': torn mid-append.
                // The fsync that acknowledges an entry covers the newline
                // too, so this entry was never acknowledged — drop it even
                // if it happens to parse. Accepting it would let the next
                // append concatenate onto the same line, and a later open
                // would then discard BOTH entries, including an
                // acknowledged one.
                dropped = 1;
                break;
            };
            let line_bytes = &rest[..nl];
            if line_bytes.is_empty() {
                offset += nl + 1;
                continue;
            }
            // A line is valid iff it is UTF-8, parses, its seq continues
            // the chain, and its recorded hash matches the recomputed chain
            // hash. The first invalid line invalidates everything after it.
            let Some(entry) = std::str::from_utf8(line_bytes)
                .ok()
                .and_then(|line| Self::verify_line(line, entries.len() as u64, last_hash))
            else {
                dropped = 1; // at least the bad line; the rest of the file goes with it
                break;
            };
            last_hash = u64::from_str_radix(&entry.hash, 16).unwrap_or(0);
            entries.push(entry);
            offset += nl + 1;
            valid_bytes = offset;
        }
        if dropped > 0 || valid_bytes < bytes.len() {
            // Physically truncate back to the last valid entry so future
            // appends re-extend a clean chain.
            file.set_len(valid_bytes as u64)
                .map_err(|e| JournalError::Io(format!("truncate {}: {e}", path.display())))?;
            file.seek(std::io::SeekFrom::End(0))
                .map_err(|e| JournalError::Io(format!("seek {}: {e}", path.display())))?;
            dropped = dropped.max(1);
        }
        Ok(Journal {
            path,
            file,
            entries,
            last_hash,
            recovered_torn_tail: dropped,
            rec: allhands_obs::Recorder::disabled(),
        })
    }

    /// Attach a metrics recorder (counts appends, fsyncs, replay hits).
    pub fn set_recorder(&mut self, rec: allhands_obs::Recorder) {
        self.rec = rec;
    }

    fn verify_line(line: &str, expect_seq: u64, prev: u64) -> Option<Entry> {
        let v: Value = serde_json::from_str(line).ok()?;
        let Value::Object(obj) = &v else { return None };
        let seq = match obj.get("seq") {
            Some(Value::U64(n)) => *n,
            Some(Value::I64(n)) if *n >= 0 => *n as u64,
            _ => return None,
        };
        let stage = match obj.get("stage") {
            Some(Value::String(s)) => s.clone(),
            _ => return None,
        };
        let key = match obj.get("key") {
            Some(Value::String(s)) => s.clone(),
            _ => return None,
        };
        let hash = match obj.get("hash") {
            Some(Value::String(s)) => s.clone(),
            _ => return None,
        };
        let payload = obj.get("payload")?.clone();
        if seq != expect_seq {
            return None;
        }
        let recorded = u64::from_str_radix(&hash, 16).ok()?;
        if recorded != entry_hash(prev, seq, &stage, &key, &payload) {
            return None;
        }
        Some(Entry { seq, stage, key, hash, payload })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All verified entries, in chain order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of verified entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `open` had to drop a torn/corrupt tail (≥1 entries lost to a
    /// crash mid-append; the interrupted work will be replayed).
    pub fn recovered_torn_tail(&self) -> bool {
        self.recovered_torn_tail > 0
    }

    /// Append one snapshot entry and make it durable (flush + fsync) before
    /// returning. Once this returns `Ok`, the entry survives process death.
    pub fn append<T: Serialize>(
        &mut self,
        stage: &str,
        key: &str,
        payload: &T,
    ) -> Result<(), JournalError> {
        let payload: Value = serde_json::from_str(
            &serde_json::to_string(payload).map_err(|e| JournalError::Codec(e.to_string()))?,
        )
        .map_err(|e| JournalError::Codec(e.to_string()))?;
        let seq = self.entries.len() as u64;
        let hash = entry_hash(self.last_hash, seq, stage, key, &payload);
        let hash_hex = format!("{hash:016x}");
        let line = format!(
            "{{\"seq\":{seq},\"stage\":{},\"key\":{},\"hash\":\"{hash_hex}\",\"payload\":{}}}\n",
            serde_json::to_string(stage).map_err(|e| JournalError::Codec(e.to_string()))?,
            serde_json::to_string(key).map_err(|e| JournalError::Codec(e.to_string()))?,
            payload
        );
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.sync_all())
            .map_err(|e| JournalError::Io(format!("append {}: {e}", self.path.display())))?;
        self.rec.incr("journal.appends");
        self.rec.incr("journal.fsyncs");
        self.entries.push(Entry {
            seq,
            stage: stage.to_string(),
            key: key.to_string(),
            hash: hash_hex,
            payload,
        });
        self.last_hash = hash;
        Ok(())
    }

    /// The raw payload of the latest entry matching `(stage, key)`.
    pub fn find(&self, stage: &str, key: &str) -> Option<&Value> {
        self.rec.incr("journal.lookups");
        let hit = self
            .entries
            .iter()
            .rev()
            .find(|e| e.stage == stage && e.key == key)
            .map(|e| &e.payload);
        if hit.is_some() {
            self.rec.incr("journal.replay_hits");
        }
        hit
    }

    /// Keys of every entry in `stage`, in chain (append) order. The ingest
    /// path uses this to count committed batch delta records; duplicates
    /// appear if a key was appended more than once (latest wins on replay).
    pub fn stage_keys(&self, stage: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.key.as_str())
            .collect()
    }

    /// Decode the latest entry matching `(stage, key)` into `T`. Returns
    /// `None` when absent; decoding failures surface as errors (a present
    /// but undecodable snapshot is corruption, not a cache miss).
    pub fn lookup<T: Deserialize>(&self, stage: &str, key: &str) -> Result<Option<T>, JournalError> {
        match self.find(stage, key) {
            None => Ok(None),
            Some(v) => serde_json::from_value::<T>(v.clone())
                .map(Some)
                .map_err(|e| JournalError::Codec(format!("{stage}/{key}: {e}"))),
        }
    }

    /// Ensure the journal's header entry matches `fingerprint` — the
    /// caller's digest of run inputs (corpus, labels, configuration). A
    /// fresh journal records it; an existing journal must agree, otherwise
    /// resuming would silently mix two different runs.
    pub fn ensure_run(&mut self, fingerprint: &str) -> Result<(), JournalError> {
        match self.lookup::<String>("header", "run")? {
            None => self.append("header", "run", &fingerprint.to_string()),
            Some(found) if found == fingerprint => Ok(()),
            Some(found) => Err(JournalError::RunMismatch {
                expected: fingerprint.to_string(),
                found,
            }),
        }
    }
}

/// Convenience fingerprint helper: FNV-1a over an iterator of byte chunks,
/// rendered as fixed-width hex. Callers feed in everything that defines a
/// run (texts, labels, seeds) so [`Journal::ensure_run`] can refuse to
/// resume the wrong journal.
pub fn fingerprint<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> String {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for part in parts {
        fnv1a(&mut h, &(part.len() as u64).to_le_bytes());
        fnv1a(&mut h, part);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Snap {
        labels: Vec<String>,
        count: u64,
    }

    fn scratch(name: &str) -> PathBuf {
        // Under the workspace `target/` so interrupted tests never dirty
        // `git status`; successful tests clean up after themselves anyway.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-journals")
            .join(format!("journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_reload_roundtrip() {
        let dir = scratch("roundtrip");
        let snap = Snap { labels: vec!["a".into(), "b".into()], count: 7 };
        {
            let mut j = Journal::open(&dir).unwrap();
            assert!(j.is_empty());
            j.ensure_run("f00d").unwrap();
            j.append("stage", "classified", &snap).unwrap();
            j.append("qa", "q0", &"answer text".to_string()).unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 3);
        assert!(!j.recovered_torn_tail());
        assert_eq!(j.lookup::<Snap>("stage", "classified").unwrap(), Some(snap));
        assert_eq!(j.lookup::<String>("qa", "q0").unwrap(), Some("answer text".into()));
        assert_eq!(j.lookup::<Snap>("stage", "missing").unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stage_keys_in_append_order() {
        let dir = scratch("stage-keys");
        let mut j = Journal::open(&dir).unwrap();
        j.ensure_run("cafe").unwrap();
        j.append("ingest", "b00000:aa", &1u64).unwrap();
        j.append("qa", "q000:bb", &2u64).unwrap();
        j.append("ingest", "b00001:cc", &3u64).unwrap();
        assert_eq!(j.stage_keys("ingest"), vec!["b00000:aa", "b00001:cc"]);
        assert_eq!(j.stage_keys("qa"), vec!["q000:bb"]);
        assert!(j.stage_keys("absent").is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn later_entries_shadow_earlier_ones() {
        let dir = scratch("shadow");
        let mut j = Journal::open(&dir).unwrap();
        j.append("stage", "k", &1u64).unwrap();
        j.append("stage", "k", &2u64).unwrap();
        assert_eq!(j.lookup::<u64>("stage", "k").unwrap(), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_replayable() {
        let dir = scratch("torn");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.append("stage", "one", &1u64).unwrap();
            j.append("stage", "two", &2u64).unwrap();
        }
        // Simulate a crash mid-append: half a line at the tail.
        let path = dir.join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":2,\"stage\":\"stage\",\"key\":\"three\",\"ha").unwrap();
        drop(f);
        let mut j = Journal::open(&dir).unwrap();
        assert!(j.recovered_torn_tail());
        assert_eq!(j.len(), 2);
        assert_eq!(j.lookup::<u64>("stage", "two").unwrap(), Some(2));
        // The chain re-extends cleanly after recovery.
        j.append("stage", "three", &3u64).unwrap();
        let j2 = Journal::open(&dir).unwrap();
        assert!(!j2.recovered_torn_tail());
        assert_eq!(j2.lookup::<u64>("stage", "three").unwrap(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unterminated_final_line_is_torn_even_if_it_parses() {
        let dir = scratch("noeol");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.append("stage", "one", &1u64).unwrap();
            j.append("stage", "two", &2u64).unwrap();
        }
        // Simulate a crash that tore off only the trailing newline: the
        // final line is complete, valid JSON with a matching hash — but
        // unterminated. It must be treated as torn, otherwise the next
        // append concatenates onto it and a later open drops both lines.
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped = text.strip_suffix('\n').unwrap();
        std::fs::write(&path, stripped).unwrap();
        {
            let mut j = Journal::open(&dir).unwrap();
            assert!(j.recovered_torn_tail());
            assert_eq!(j.len(), 1);
            // Replay the dropped unit of work, then add a genuinely new
            // entry — the acknowledged append must survive the next open.
            j.append("stage", "two", &2u64).unwrap();
            j.append("stage", "three", &3u64).unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        assert!(!j.recovered_torn_tail());
        assert_eq!(j.len(), 3);
        assert_eq!(j.lookup::<u64>("stage", "two").unwrap(), Some(2));
        assert_eq!(j.lookup::<u64>("stage", "three").unwrap(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_utf8_tail_is_recovered_not_fatal() {
        let dir = scratch("utf8");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.append("stage", "one", &"naïve café".to_string()).unwrap();
            j.append("stage", "two", &2u64).unwrap();
        }
        // Simulate a crash that cut a multi-byte UTF-8 character in half:
        // the tail is not valid UTF-8, but open() must still recover the
        // valid prefix rather than fail with an I/O error. The bad line is
        // newline-terminated here so the UTF-8 check (not the torn-newline
        // check) is what rejects it.
        let path = dir.join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":2,\"stage\":\"stage\",\"key\":\"caf\xC3\n").unwrap();
        drop(f);
        let mut j = Journal::open(&dir).unwrap();
        assert!(j.recovered_torn_tail());
        assert_eq!(j.len(), 2);
        assert_eq!(j.lookup::<String>("stage", "one").unwrap(), Some("naïve café".into()));
        // The file is physically clean again: appends extend a valid chain.
        j.append("stage", "three", &3u64).unwrap();
        let j2 = Journal::open(&dir).unwrap();
        assert!(!j2.recovered_torn_tail());
        assert_eq!(j2.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_drops_suffix() {
        let dir = scratch("midcorrupt");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.append("stage", "one", &1u64).unwrap();
            j.append("stage", "two", &2u64).unwrap();
            j.append("stage", "three", &3u64).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a payload byte in the *second* entry: its hash no longer
        // matches, so it and entry three are both dropped.
        let corrupted = text.replacen("\"payload\":2", "\"payload\":9", 1);
        assert_ne!(text, corrupted);
        std::fs::write(&path, corrupted).unwrap();
        let j = Journal::open(&dir).unwrap();
        assert!(j.recovered_torn_tail());
        assert_eq!(j.len(), 1);
        assert_eq!(j.lookup::<u64>("stage", "one").unwrap(), Some(1));
        assert_eq!(j.lookup::<u64>("stage", "three").unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_fingerprint_mismatch_is_refused() {
        let dir = scratch("fingerprint");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.ensure_run("aaaa").unwrap();
        }
        let mut j = Journal::open(&dir).unwrap();
        assert!(j.ensure_run("aaaa").is_ok());
        let err = j.ensure_run("bbbb").unwrap_err();
        assert!(matches!(err, JournalError::RunMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let a = fingerprint([b"alpha".as_slice(), b"beta".as_slice()]);
        let b = fingerprint([b"alpha".as_slice(), b"beta".as_slice()]);
        assert_eq!(a, b);
        // Chunk boundaries matter (length-prefixed): "al"+"phabeta" differs.
        let c = fingerprint([b"al".as_slice(), b"phabeta".as_slice()]);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn structural_hash_ignores_formatting_but_not_content() {
        let a: Value = serde_json::from_str("{\"x\": [1, 2.5, \"s\"], \"y\": null}").unwrap();
        let b: Value = serde_json::from_str("{\"x\":[1,2.5,\"s\"],\"y\":null}").unwrap();
        let mut ha = 0u64;
        let mut hb = 0u64;
        hash_value(&mut ha, &a);
        hash_value(&mut hb, &b);
        assert_eq!(ha, hb);
        let c: Value = serde_json::from_str("{\"x\":[1,2.5,\"s\"],\"y\":0}").unwrap();
        let mut hc = 0u64;
        hash_value(&mut hc, &c);
        assert_ne!(ha, hc);
    }
}
